#include "policy/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "exp/codec.h"

namespace skyferry::policy {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

const io::Json& need(const io::Json& j, const char* key) {
  const io::Json* v = j.find(key);
  if (v == nullptr) throw TableError(std::string("policy table: missing key '") + key + "'");
  return *v;
}

double need_double(const io::Json& j, const char* key) {
  try {
    return exp::field<double>(j, key);
  } catch (const exp::CodecError& e) {
    throw TableError(std::string("policy table: ") + e.what());
  }
}

int need_int(const io::Json& j, const char* key) {
  try {
    return exp::field<int>(j, key);
  } catch (const exp::CodecError& e) {
    throw TableError(std::string("policy table: ") + e.what());
  }
}

}  // namespace

double Axis::knot(int i) const noexcept {
  const double t = n > 1 ? static_cast<double>(i) / (n - 1) : 0.0;
  if (log10_spaced) {
    const double u = std::log10(lo) + t * (std::log10(hi) - std::log10(lo));
    return std::pow(10.0, u);
  }
  return lo + t * (hi - lo);
}

void Axis::locate(double x, int* i, double* frac) const noexcept {
  double t;
  if (log10_spaced) {
    const double ulo = std::log10(lo);
    t = (std::log10(x) - ulo) / (std::log10(hi) - ulo);
  } else {
    t = (x - lo) / (hi - lo);
  }
  if (!(t > 0.0)) t = 0.0;  // also catches NaN from degenerate axes
  if (t > 1.0) t = 1.0;
  const double pos = t * (n - 1);
  int idx = static_cast<int>(pos);
  if (idx > n - 2) idx = n - 2;
  *i = idx;
  *frac = pos - idx;
}

PolicyTable::PolicyTable(std::array<Axis, 4> axes, TableModelSpec model, double min_distance_m,
                         core::OptimizeOptions compiled_with, std::vector<double> d_opt,
                         std::vector<double> utility)
    : axes_(std::move(axes)),
      model_(std::move(model)),
      min_distance_m_(min_distance_m),
      opt_(compiled_with),
      d_opt_(std::move(d_opt)),
      utility_(std::move(utility)) {
  std::size_t total = 1;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const Axis& ax = axes_[a];
    if (ax.n < 2) throw TableError("policy table: axis '" + ax.name + "' needs >= 2 knots");
    if (!(ax.lo < ax.hi))
      throw TableError("policy table: axis '" + ax.name + "' needs lo < hi");
    if (ax.log10_spaced && !(ax.lo > 0.0))
      throw TableError("policy table: log axis '" + ax.name + "' needs lo > 0");
    if (ax.name != kAxisNames[a])
      throw TableError("policy table: axis " + std::to_string(a) + " must be '" +
                       kAxisNames[a] + "', got '" + ax.name + "'");
    total *= static_cast<std::size_t>(ax.n);
  }
  if (d_opt_.size() != total || utility_.size() != total)
    throw TableError("policy table: grid has " + std::to_string(total) + " knots but " +
                     std::to_string(d_opt_.size()) + " d_opt / " +
                     std::to_string(utility_.size()) + " utility values");
  for (std::size_t k = 0; k < total; ++k) {
    if (!std::isfinite(d_opt_[k]) || !std::isfinite(utility_[k]))
      throw TableError("policy table: non-finite knot at flat index " + std::to_string(k));
  }
}

std::size_t PolicyTable::index(int i0, int i1, int i2, int i3) const noexcept {
  return ((static_cast<std::size_t>(i0) * axes_[1].n + i1) * axes_[2].n + i2) * axes_[3].n + i3;
}

bool PolicyTable::covers(double d0_m, double speed_mps, double mdata_bytes,
                         double rho_per_m) const noexcept {
  return axes_[0].contains(d0_m) && axes_[1].contains(speed_mps) &&
         axes_[2].contains(mdata_bytes) && axes_[3].contains(rho_per_m);
}

namespace {

/// 16-corner multilinear blend over one knot array. A weight-zero
/// corner (query exactly on a knot plane) is skipped, so knot queries
/// reproduce the stored value exactly.
double interp4(const double* data, const std::array<Axis, 4>& axes, double x0, double x1,
               double x2, double x3) {
  int i[4];
  double f[4];
  const double x[4] = {x0, x1, x2, x3};
  for (int a = 0; a < 4; ++a) axes[a].locate(x[a], &i[a], &f[a]);
  const std::size_t s3 = 1;
  const std::size_t s2 = s3 * static_cast<std::size_t>(axes[3].n);
  const std::size_t s1 = s2 * static_cast<std::size_t>(axes[2].n);
  const std::size_t s0 = s1 * static_cast<std::size_t>(axes[1].n);
  const std::size_t base =
      static_cast<std::size_t>(i[0]) * s0 + static_cast<std::size_t>(i[1]) * s1 +
      static_cast<std::size_t>(i[2]) * s2 + static_cast<std::size_t>(i[3]) * s3;
  double acc = 0.0;
  for (int c = 0; c < 16; ++c) {
    const int b0 = c & 1, b1 = (c >> 1) & 1, b2 = (c >> 2) & 1, b3 = (c >> 3) & 1;
    const double w = (b0 ? f[0] : 1.0 - f[0]) * (b1 ? f[1] : 1.0 - f[1]) *
                     (b2 ? f[2] : 1.0 - f[2]) * (b3 ? f[3] : 1.0 - f[3]);
    if (w == 0.0) continue;
    acc += w * data[base + b0 * s0 + b1 * s1 + b2 * s2 + b3 * s3];
  }
  return acc;
}

}  // namespace

double PolicyTable::lookup_d_opt(double d0_m, double speed_mps, double mdata_bytes,
                                 double rho_per_m) const noexcept {
  return interp4(d_opt_.data(), axes_, d0_m, speed_mps, mdata_bytes, rho_per_m);
}

PolicyTable::DOptCandidates PolicyTable::lookup_d_opt_candidates(
    double d0_m, double speed_mps, double mdata_bytes, double rho_per_m) const noexcept {
  int i[4];
  double f[4];
  const double x[4] = {d0_m, speed_mps, mdata_bytes, rho_per_m};
  for (int a = 0; a < 4; ++a) axes_[a].locate(x[a], &i[a], &f[a]);
  const std::size_t s3 = 1;
  const std::size_t s2 = s3 * static_cast<std::size_t>(axes_[3].n);
  const std::size_t s1 = s2 * static_cast<std::size_t>(axes_[2].n);
  const std::size_t s0 = s1 * static_cast<std::size_t>(axes_[1].n);
  const std::size_t base =
      static_cast<std::size_t>(i[0]) * s0 + static_cast<std::size_t>(i[1]) * s1 +
      static_cast<std::size_t>(i[2]) * s2 + static_cast<std::size_t>(i[3]) * s3;
  DOptCandidates out;
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (int c = 0; c < 16; ++c) {
    const int b0 = c & 1, b1 = (c >> 1) & 1, b2 = (c >> 2) & 1, b3 = (c >> 3) & 1;
    const double w = (b0 ? f[0] : 1.0 - f[0]) * (b1 ? f[1] : 1.0 - f[1]) *
                     (b2 ? f[2] : 1.0 - f[2]) * (b3 ? f[3] : 1.0 - f[3]);
    if (w == 0.0) continue;
    const double v = d_opt_[base + b0 * s0 + b1 * s1 + b2 * s2 + b3 * s3];
    out.blend += w * v;
    lo = first ? v : std::min(lo, v);
    hi = first ? v : std::max(hi, v);
    first = false;
  }
  out.lo = lo;
  out.hi = hi;
  return out;
}

double PolicyTable::lookup_utility(double d0_m, double speed_mps, double mdata_bytes,
                                   double rho_per_m) const noexcept {
  return interp4(utility_.data(), axes_, d0_m, speed_mps, mdata_bytes, rho_per_m);
}

std::string PolicyTable::checksum() const {
  // Exact-encoded knot arrays are the content; hashing their compact
  // dumps makes the tag independent of file whitespace but sensitive to
  // any single-bit knot change (the exact codec never rounds).
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, exp::encode_range(d_opt_.data(), d_opt_.size()).dump());
  h = fnv1a(h, "|");
  h = fnv1a(h, exp::encode_range(utility_.data(), utility_.size()).dump());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

io::Json PolicyTable::to_json() const {
  io::Json j = io::Json::object();
  j.set("skyferry_policy_table", kFormatVersion);
  io::Json model = io::Json::object();
  model.set("kind", "paper-log");
  model.set("a", exp::Codec<double>::encode(model_.a));
  model.set("b", exp::Codec<double>::encode(model_.b));
  model.set("scale", exp::Codec<double>::encode(model_.scale));
  model.set("min_distance_m", exp::Codec<double>::encode(model_.min_distance_m));
  model.set("name", model_.name);
  j.set("model", std::move(model));
  j.set("min_distance_m", exp::Codec<double>::encode(min_distance_m_));
  io::Json opt = io::Json::object();
  opt.set("grid_points", opt_.grid_points);
  opt.set("tolerance_m", exp::Codec<double>::encode(opt_.tolerance_m));
  opt.set("max_refine_iters", opt_.max_refine_iters);
  j.set("optimize", std::move(opt));
  io::Json axes = io::Json::array();
  for (const Axis& ax : axes_) {
    io::Json a = io::Json::object();
    a.set("name", ax.name);
    a.set("lo", exp::Codec<double>::encode(ax.lo));
    a.set("hi", exp::Codec<double>::encode(ax.hi));
    a.set("n", ax.n);
    a.set("log10", ax.log10_spaced);
    axes.push_back(std::move(a));
  }
  j.set("axes", std::move(axes));
  j.set("d_opt", exp::encode_range(d_opt_.data(), d_opt_.size()));
  j.set("utility", exp::encode_range(utility_.data(), utility_.size()));
  j.set("checksum", checksum());
  return j;
}

PolicyTable PolicyTable::from_json(const io::Json& j) {
  if (!j.is_object()) throw TableError("policy table: expected a JSON object");
  const io::Json& version = need(j, "skyferry_policy_table");
  if (!version.is_number() || static_cast<int>(version.as_number()) != kFormatVersion)
    throw TableError("policy table: unsupported format version (want " +
                     std::to_string(kFormatVersion) + ")");

  const io::Json& mj = need(j, "model");
  if (!mj.is_object()) throw TableError("policy table: 'model' must be an object");
  if (need(mj, "kind").as_string() != "paper-log")
    throw TableError("policy table: unsupported model kind '" + need(mj, "kind").as_string() +
                     "'");
  TableModelSpec model;
  model.a = need_double(mj, "a");
  model.b = need_double(mj, "b");
  model.scale = need_double(mj, "scale");
  model.min_distance_m = need_double(mj, "min_distance_m");
  model.name = need(mj, "name").as_string();

  const double min_distance = need_double(j, "min_distance_m");

  const io::Json& oj = need(j, "optimize");
  if (!oj.is_object()) throw TableError("policy table: 'optimize' must be an object");
  core::OptimizeOptions opt;
  opt.grid_points = need_int(oj, "grid_points");
  opt.tolerance_m = need_double(oj, "tolerance_m");
  opt.max_refine_iters = need_int(oj, "max_refine_iters");

  const io::Json& axesj = need(j, "axes");
  if (!axesj.is_array() || axesj.items().size() != 4)
    throw TableError("policy table: 'axes' must be an array of 4 axes");
  std::array<Axis, 4> axes;
  std::size_t total = 1;
  for (std::size_t a = 0; a < 4; ++a) {
    const io::Json& aj = axesj.items()[a];
    if (!aj.is_object()) throw TableError("policy table: axis record must be an object");
    axes[a].name = need(aj, "name").as_string();
    axes[a].lo = need_double(aj, "lo");
    axes[a].hi = need_double(aj, "hi");
    axes[a].n = need_int(aj, "n");
    const io::Json& logj = need(aj, "log10");
    if (!logj.is_bool()) throw TableError("policy table: axis 'log10' must be a bool");
    axes[a].log10_spaced = logj.as_bool();
    if (axes[a].n < 2) throw TableError("policy table: axis '" + axes[a].name + "' needs n >= 2");
    total *= static_cast<std::size_t>(axes[a].n);
  }

  std::vector<double> d_opt(total), utility(total);
  try {
    exp::decode_range(need(j, "d_opt"), d_opt.data(), total);
    exp::decode_range(need(j, "utility"), utility.data(), total);
  } catch (const exp::CodecError& e) {
    throw TableError(std::string("policy table: ") + e.what());
  }

  PolicyTable t(std::move(axes), std::move(model), min_distance, opt, std::move(d_opt),
                std::move(utility));
  const std::string want = need(j, "checksum").as_string();
  const std::string have = t.checksum();
  if (want != have)
    throw TableError("policy table: checksum mismatch (file says " + want + ", content hashes to " +
                     have + ") — the table was tampered with or corrupted");
  return t;
}

void PolicyTable::save_atomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) throw TableError("policy table: cannot open " + tmp + " for writing");
  const std::string text = to_json().dump(1);
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), fp) == text.size() && std::fflush(fp) == 0;
#ifndef _WIN32
  // fsync before rename: the rename must never land ahead of the data.
  const bool synced = wrote && ::fsync(::fileno(fp)) == 0;
#else
  const bool synced = wrote;
#endif
  std::fclose(fp);
  if (!synced) {
    std::remove(tmp.c_str());
    throw TableError("policy table: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw TableError("policy table: cannot rename " + tmp + " -> " + path);
  }
}

PolicyTable PolicyTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TableError("policy table: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto j = io::Json::parse(buf.str(), &error);
  if (!j)
    throw TableError("policy table: " + path + " is truncated or not valid JSON (" + error + ")");
  try {
    return from_json(*j);
  } catch (const TableError& e) {
    throw TableError(std::string(e.what()) + " [" + path + "]");
  }
}

}  // namespace skyferry::policy
