// The compiled "now or later?" policy: optimal transmit distances d* on
// a dense 4-D grid over (d0, v, Mdata, ρ), served by multilinear
// interpolation in O(1). The grid idiom follows src/phy/per_table.h —
// values at knots are *exact* solver outputs, everything between is
// interpolated — but where the PER table fills lazily at query time,
// this table is compiled offline (policy::Compiler) and shipped as a
// file, because one knot costs an optimize() call, not an expression.
//
// Interpolating the *argmax* instead of the utility surface is what
// keeps the answers accurate: U is stationary at d* (∂U/∂d = 0), so a
// first-order error in the interpolated d* costs only second-order
// utility. The DecisionService re-evaluates U/Cdelay/δ exactly at the
// interpolated d*, so every served decomposition is self-consistent.
//
// On-disk format: versioned JSON with exp::Codec exact doubles (knots
// round-trip bit-identically) and an FNV-1a content checksum. load() is
// strict — version mismatch, missing fields, wrong knot counts,
// non-finite knots, or a checksum mismatch all throw TableError rather
// than serving a silently corrupted policy.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "io/json.h"

namespace skyferry::policy {

/// Thrown on any malformed, tampered, or version-mismatched table file.
struct TableError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One uniformly spaced axis, linear or log10. Knot i sits at
/// coord(lo) + i/(n-1) · (coord(hi) − coord(lo)) in coordinate space.
struct Axis {
  std::string name;
  double lo{0.0};
  double hi{0.0};
  int n{2};
  bool log10_spaced{false};

  [[nodiscard]] double knot(int i) const noexcept;
  /// True when x lies within [lo, hi] (closed, exact — no extrapolation).
  [[nodiscard]] bool contains(double x) const noexcept { return x >= lo && x <= hi; }
  /// Lower knot index and fractional offset for x ∈ [lo, hi].
  void locate(double x, int* i, double* frac) const noexcept;
};

/// The throughput model the table was compiled against (v1 supports the
/// paper's log2 fit only — the model every scenario preset uses).
struct TableModelSpec {
  double a{0.0};
  double b{0.0};
  double scale{1e6};
  double min_distance_m{20.0};
  std::string name;
};

class PolicyTable {
 public:
  static constexpr int kFormatVersion = 1;
  /// Axis order (and flattened-index order, first axis slowest) — the
  /// same order exp::Sweep::cartesian() enumerates the compile sweep in.
  static constexpr std::array<const char*, 4> kAxisNames = {"d0_m", "speed_mps", "mdata_bytes",
                                                            "rho_per_m"};

  PolicyTable() = default;
  /// Axes in kAxisNames order; knot vectors sized to the grid product.
  /// Throws TableError if shapes disagree.
  PolicyTable(std::array<Axis, 4> axes, TableModelSpec model, double min_distance_m,
              core::OptimizeOptions compiled_with, std::vector<double> d_opt,
              std::vector<double> utility);

  [[nodiscard]] const std::array<Axis, 4>& axes() const noexcept { return axes_; }
  [[nodiscard]] const TableModelSpec& model() const noexcept { return model_; }
  [[nodiscard]] double min_distance_m() const noexcept { return min_distance_m_; }
  [[nodiscard]] const core::OptimizeOptions& compiled_with() const noexcept { return opt_; }
  [[nodiscard]] std::size_t knots() const noexcept { return d_opt_.size(); }

  /// Flattened knot index, first axis slowest:
  /// ((i0·N1 + i1)·N2 + i2)·N3 + i3.
  [[nodiscard]] std::size_t index(int i0, int i1, int i2, int i3) const noexcept;
  [[nodiscard]] double d_opt_at(std::size_t flat) const noexcept { return d_opt_[flat]; }
  [[nodiscard]] double utility_at(std::size_t flat) const noexcept { return utility_[flat]; }

  /// True when (d0, v, mdata, rho) lies inside every axis range, so a
  /// lookup interpolates instead of extrapolating.
  [[nodiscard]] bool covers(double d0_m, double speed_mps, double mdata_bytes,
                            double rho_per_m) const noexcept;

  /// Multilinear 16-corner interpolation of d*. The caller is expected
  /// to have checked covers(); out-of-range coordinates clamp to the
  /// boundary knots. Never allocates.
  [[nodiscard]] double lookup_d_opt(double d0_m, double speed_mps, double mdata_bytes,
                                    double rho_per_m) const noexcept;

  /// The interpolation cell's d* candidates: the multilinear blend plus
  /// the min/max corner d* among the contributing corners. In a cell
  /// where two utility modes tie (interior optimum vs an interval end)
  /// the blend lands in the valley between them, but `lo`/`hi` still
  /// carry each mode's own optimum — the serving path evaluates U
  /// exactly at all three and keeps the best.
  struct DOptCandidates {
    double blend{0.0};
    double lo{0.0};
    double hi{0.0};
  };
  [[nodiscard]] DOptCandidates lookup_d_opt_candidates(double d0_m, double speed_mps,
                                                       double mdata_bytes,
                                                       double rho_per_m) const noexcept;
  /// Same interpolation over the compiled U* knots (diagnostic surface;
  /// the DecisionService serves the exact re-evaluation instead).
  [[nodiscard]] double lookup_utility(double d0_m, double speed_mps, double mdata_bytes,
                                      double rho_per_m) const noexcept;

  // ---- on-disk format -------------------------------------------------------
  [[nodiscard]] io::Json to_json() const;
  /// Strict decode; throws TableError on any structural, range, or
  /// checksum problem.
  [[nodiscard]] static PolicyTable from_json(const io::Json& j);
  /// tmp + fsync + rename, same crash-safety contract as exp::Checkpoint.
  void save_atomic(const std::string& path) const;
  [[nodiscard]] static PolicyTable load(const std::string& path);

  /// FNV-1a over the exact-encoded knot arrays — the integrity tag
  /// embedded in the file and re-derived on load.
  [[nodiscard]] std::string checksum() const;

 private:
  std::array<Axis, 4> axes_{};
  TableModelSpec model_{};
  double min_distance_m_{20.0};
  core::OptimizeOptions opt_{};
  std::vector<double> d_opt_;
  std::vector<double> utility_;
};

}  // namespace skyferry::policy
