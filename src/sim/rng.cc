#include "sim/rng.h"

#include <cmath>

namespace skyferry::sim {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four words via splitmix64 as recommended by the authors;
  // guards against an all-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method for unbiased bounded ints.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box-Muller; u1 in (0,1] so log is finite.
  const double u1 = (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  spare_ = r * std::sin(kTwoPi * u2);
  has_spare_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::gaussian(double mean, double sigma) noexcept { return mean + sigma * gaussian(); }

double Rng::exponential(double lambda) noexcept {
  const double u = (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;  // (0,1]
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  // Work with the smaller tail so the inversion walk stays short and the
  // pmf recurrence stays well-conditioned.
  const bool flip = p > 0.5;
  const double q = flip ? 1.0 - p : p;
  std::uint64_t k = 0;
  if (n <= 64) {
    // CDF inversion via the pmf recurrence
    //   pmf(k+1) = pmf(k) * (n-k)/(k+1) * q/(1-q).
    // One uniform draw per call; pmf(0) = (1-q)^n >= 2^-64 > 0, so the
    // walk always starts on a representable mass.
    const double r = q / (1.0 - q);
    // exp(n*log1p(-q)) == (1-q)^n but ~2x cheaper than pow on glibc.
    double pmf = std::exp(static_cast<double>(n) * std::log1p(-q));
    double cdf = pmf;
    const double u = uniform();
    while (u >= cdf && k < n) {
      pmf *= r * static_cast<double>(n - k) / static_cast<double>(k + 1);
      cdf += pmf;
      ++k;
    }
  } else {
    // Normal-tail fallback with continuity correction, clamped to [0,n].
    const double mean = static_cast<double>(n) * q;
    const double sd = std::sqrt(mean * (1.0 - q));
    const double draw = std::floor(mean + sd * gaussian() + 0.5);
    const double hi = static_cast<double>(n);
    k = static_cast<std::uint64_t>(draw < 0.0 ? 0.0 : (draw > hi ? hi : draw));
  }
  return flip ? n - k : k;
}

double Rng::rician_envelope(double k_factor) noexcept {
  // Complex gaussian with LoS component: normalize so E[r^2] = 1.
  // LoS amplitude nu and scatter sigma per component:
  //   nu^2 = K/(K+1),  2*sigma^2 = 1/(K+1).
  const double k = (k_factor < 0.0) ? 0.0 : k_factor;
  const double nu = std::sqrt(k / (k + 1.0));
  const double sigma = std::sqrt(1.0 / (2.0 * (k + 1.0)));
  const double i = nu + sigma * gaussian();
  const double q = sigma * gaussian();
  return std::sqrt(i * i + q * q);
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view component) noexcept {
  // FNV-1a over the component name, mixed with the master seed.
  std::uint64_t h = 1469598103934665603ULL ^ master;
  for (char c : component) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // Final avalanche so adjacent names give unrelated streams.
  std::uint64_t x = h;
  return splitmix64(x);
}

std::uint64_t fork(std::uint64_t master, std::uint64_t point, std::uint64_t trial) noexcept {
  // Three rounds of splitmix64 keyed by master, point and trial. Each
  // input fully avalanches before the next is folded in, so adjacent
  // (point, trial) indices yield unrelated seeds — rng_test checks the
  // first 1e4 draws of neighboring trial streams for overlap.
  std::uint64_t x = master ^ 0xa0761d6478bd642fULL;
  std::uint64_t s = splitmix64(x);
  x = s ^ point;
  s = splitmix64(x);
  x = s ^ trial;
  return splitmix64(x);
}

}  // namespace skyferry::sim
