// Deterministic random-number streams. Every stochastic component
// (fading, rate control, GPS noise, failure draws) pulls from its own
// named stream derived from one master seed, so figures regenerate
// bit-identically and components can be re-seeded independently.
#pragma once

#include <cstdint>
#include <string_view>

namespace skyferry::sim {

/// xoshiro256++ generator — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (cached spare).
  double gaussian() noexcept;
  double gaussian(double mean, double sigma) noexcept;

  /// Exponential with rate lambda (mean 1/lambda). Precondition: lambda > 0.
  double exponential(double lambda) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Binomial(n, p) draw: the number of successes in n independent
  /// Bernoulli(p) trials, in one call. Exact CDF inversion for n <= 64
  /// (one uniform draw — this is the aggregate-sampling fast path of the
  /// link simulator, where n is the A-MPDU subframe count), a
  /// continuity-corrected normal tail fallback for larger n. p is
  /// clamped to [0, 1].
  std::uint64_t binomial(std::uint64_t n, double p) noexcept;

  /// Magnitude of a Rician-fading envelope with K-factor (linear, not dB)
  /// normalized to unit mean *power* (E[r^2] = 1). K=0 degenerates to
  /// Rayleigh. Used by the PHY fading model.
  double rician_envelope(double k_factor) noexcept;

 private:
  std::uint64_t s_[4];
  bool has_spare_{false};
  double spare_{0.0};
};

/// Derive a child seed from a master seed and a component name, so that
/// e.g. "fading/link0" and "gps/uav1" draw independent streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::string_view component) noexcept;

/// Derive the seed of trial `trial` at sweep point `point` from one
/// master seed. This is the experiment engine's seeding discipline:
/// every (point, trial) pair gets its own statistically independent
/// stream, computed from indices alone, so results are bit-identical no
/// matter how trials are scheduled across threads.
[[nodiscard]] std::uint64_t fork(std::uint64_t master, std::uint64_t point,
                                 std::uint64_t trial) noexcept;

}  // namespace skyferry::sim
