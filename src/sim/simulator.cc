#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

namespace skyferry::sim {

void Simulator::reserve(std::size_t events) {
  heap_.reserve(events);
  if (slots_.size() < events) {
    const std::uint32_t old = static_cast<std::uint32_t>(slots_.size());
    slots_.resize(events);
    free_slots_.reserve(events);
    // Hand out low indices first: push the new tail in reverse.
    for (std::uint32_t i = static_cast<std::uint32_t>(events); i > old; --i) {
      free_slots_.push_back(i - 1);
    }
  }
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  ++s.gen;
  free_slots_.push_back(slot);
}

EventId Simulator::schedule(double delay_s, EventFn fn) {
  if (!std::isfinite(delay_s)) {
    ++rejected_nonfinite_;
    return 0;
  }
  return schedule_at(now_ + std::max(delay_s, 0.0), std::move(fn));
}

EventId Simulator::schedule_at(double t_s, EventFn fn) {
  if (!std::isfinite(t_s)) {
    ++rejected_nonfinite_;
    return 0;
  }
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(HeapEntry{std::max(t_s, now_), next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return encode(slot, s.gen);
}

bool Simulator::cancel(EventId id) {
  if (id == 0) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu) - 1u;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  if (slots_[slot].gen != gen) return false;  // executed, cancelled, or recycled
  // The heap placeholder stays behind and is skipped when it surfaces;
  // the slot itself is recycled immediately (the bumped generation keeps
  // the stale placeholder from matching the slot's next tenant).
  release_slot(slot);
  assert(live_count_ > 0);
  --live_count_;
  return true;
}

bool Simulator::execute_top() {
  const HeapEntry ev = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Slot& s = slots_[ev.slot];
  if (s.gen != ev.gen) return false;  // cancelled placeholder
  assert(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  --live_count_;
  // Vacate the slot before running: the callable may schedule new events
  // (which may legitimately reuse this slot under its new generation).
  EventFn fn = std::move(s.fn);
  release_slot(ev.slot);
  fn();
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    if (execute_top()) return true;
  }
  return false;
}

void Simulator::run_until(double t_end_s) {
  while (!heap_.empty() && heap_.front().t <= t_end_s) execute_top();
  if (now_ < t_end_s) now_ = t_end_s;
}

void Simulator::run() {
  while (!heap_.empty()) execute_top();
}

void Simulator::reset() {
  heap_.clear();
  free_slots_.clear();
  free_slots_.reserve(slots_.size());
  // Retire every slot's current generation so EventIds issued before the
  // reset can never cancel a post-reset tenant.
  for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i > 0; --i) {
    Slot& s = slots_[i - 1];
    s.fn = nullptr;
    ++s.gen;
    free_slots_.push_back(i - 1);
  }
  live_count_ = 0;
  now_ = 0.0;
  executed_ = 0;
  rejected_nonfinite_ = 0;
}

EventId schedule_periodic(Simulator& sim, double period_s, std::function<bool()> fn) {
  // Self-rescheduling tick; each scheduled copy owns a reference to fn, so
  // the chain frees itself when fn() returns false (no shared_ptr cycle).
  struct Tick {
    Simulator* sim;
    double period;
    std::shared_ptr<std::function<bool()>> fn;
    void operator()() const {
      if ((*fn)()) sim->schedule(period, Tick{sim, period, fn});
    }
  };
  return sim.schedule(period_s,
                      Tick{&sim, period_s, std::make_shared<std::function<bool()>>(std::move(fn))});
}

}  // namespace skyferry::sim
