#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

namespace skyferry::sim {

EventId Simulator::schedule(double delay_s, EventFn fn) {
  if (!std::isfinite(delay_s)) {
    ++rejected_nonfinite_;
    return 0;
  }
  return schedule_at(now_ + std::max(delay_s, 0.0), std::move(fn));
}

EventId Simulator::schedule_at(double t_s, EventFn fn) {
  if (!std::isfinite(t_s)) {
    ++rejected_nonfinite_;
    return 0;
  }
  const EventId id = next_id_++;
  queue_.push(Event{std::max(t_s, now_), id, std::move(fn)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (is_cancelled(id)) return false;
  // We cannot remove from the middle of a priority_queue; remember the id
  // and skip the event when it surfaces.
  cancelled_.push_back(id);
  ++cancelled_count_;
  return true;
}

bool Simulator::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end();
}

void Simulator::execute_next() {
  Event ev = queue_.top();
  queue_.pop();
  if (is_cancelled(ev.id)) {
    cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), ev.id));
    --cancelled_count_;
    return;
  }
  assert(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  ev.fn();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const bool was_cancelled = is_cancelled(queue_.top().id);
    execute_next();
    if (!was_cancelled) return true;
  }
  return false;
}

void Simulator::run_until(double t_end_s) {
  while (!queue_.empty() && queue_.top().t <= t_end_s) execute_next();
  if (now_ < t_end_s) now_ = t_end_s;
}

void Simulator::run() {
  while (!queue_.empty()) execute_next();
}

void Simulator::reset() {
  queue_ = {};
  cancelled_.clear();
  cancelled_count_ = 0;
  now_ = 0.0;
  executed_ = 0;
  rejected_nonfinite_ = 0;
}

EventId schedule_periodic(Simulator& sim, double period_s, std::function<bool()> fn) {
  // Self-rescheduling tick; each scheduled copy owns a reference to fn, so
  // the chain frees itself when fn() returns false (no shared_ptr cycle).
  struct Tick {
    Simulator* sim;
    double period;
    std::shared_ptr<std::function<bool()>> fn;
    void operator()() const {
      if ((*fn)()) sim->schedule(period, Tick{sim, period, fn});
    }
  };
  return sim.schedule(period_s,
                      Tick{&sim, period_s, std::make_shared<std::function<bool()>>(std::move(fn))});
}

}  // namespace skyferry::sim
