// Discrete-event simulation engine: a clock plus a time-ordered event
// queue with stable FIFO ordering for simultaneous events. Flight,
// link and mission simulations all run on this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace skyferry::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator.
///
/// Events scheduled for the same time fire in scheduling order. Events
/// may schedule further events and may cancel pending ones. Time never
/// goes backwards.
class Simulator {
 public:
  /// Current simulation time [s].
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events still pending (including cancelled placeholders).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size() - cancelled_count_; }

  /// Schedule `fn` to run `delay_s` seconds from now (delay clamped to >= 0).
  /// A NaN/Inf delay is rejected: the event is dropped, the rejection is
  /// counted, and the invalid id 0 is returned.
  EventId schedule(double delay_s, EventFn fn);

  /// Schedule `fn` at absolute time `t_s` (clamped to >= now()). A NaN/Inf
  /// time is rejected (counted, returns the invalid id 0) so a corrupted
  /// sample cannot wedge the queue with an event that never surfaces.
  EventId schedule_at(double t_s, EventFn fn);

  /// Number of schedule calls rejected for non-finite times.
  [[nodiscard]] std::uint64_t rejected_nonfinite() const noexcept { return rejected_nonfinite_; }

  /// Cancel a pending event. Returns false if already executed/cancelled.
  bool cancel(EventId id);

  /// Run until the queue empties or `t_end_s` is reached, whichever is
  /// first. The clock is left at min(t_end_s, last event time).
  void run_until(double t_end_s);

  /// Run until the queue empties.
  void run();

  /// Execute the single next event, if any. Returns false when idle.
  bool step();

  /// Drop all pending events and reset the clock to zero.
  void reset();

 private:
  struct Event {
    double t;
    EventId id;  // also provides FIFO tie-break: ids are monotonically increasing
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  [[nodiscard]] bool is_cancelled(EventId id) const;
  void execute_next();

  double now_{0.0};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::uint64_t rejected_nonfinite_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;  // small, sorted-on-demand set
  std::size_t cancelled_count_{0};
};

/// Helper: schedule `fn` every `period_s` seconds starting at now+period,
/// until it returns false. Returns the first event's id.
EventId schedule_periodic(Simulator& sim, double period_s, std::function<bool()> fn);

}  // namespace skyferry::sim
