// Discrete-event simulation engine: a clock plus a time-ordered event
// queue with stable FIFO ordering for simultaneous events. Flight,
// link and mission simulations all run on this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace skyferry::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator.
///
/// Events scheduled for the same time fire in scheduling order. Events
/// may schedule further events and may cancel pending ones. Time never
/// goes backwards.
///
/// Storage: callables live in a pooled slot array that recycles
/// std::function capacity across events, and the heap orders 24-byte
/// POD entries {time, seq, slot, gen} — sift operations move no
/// std::function state, which is what makes dense event churn (the
/// fleet engine's spawn/fault bridge, kinematics ticks) cheap.
class Simulator {
 public:
  /// Current simulation time [s].
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Number of events still pending. Cancelled events leave the count
  /// immediately (their heap placeholder is skipped when it surfaces).
  [[nodiscard]] std::size_t pending() const noexcept { return live_count_; }

  /// Pre-size the slot pool and heap for `events` concurrent events.
  void reserve(std::size_t events);

  /// Schedule `fn` to run `delay_s` seconds from now (delay clamped to >= 0).
  /// A NaN/Inf delay is rejected: the event is dropped, the rejection is
  /// counted, and the invalid id 0 is returned.
  EventId schedule(double delay_s, EventFn fn);

  /// Schedule `fn` at absolute time `t_s` (clamped to >= now()). A NaN/Inf
  /// time is rejected (counted, returns the invalid id 0) so a corrupted
  /// sample cannot wedge the queue with an event that never surfaces.
  EventId schedule_at(double t_s, EventFn fn);

  /// Number of schedule calls rejected for non-finite times.
  [[nodiscard]] std::uint64_t rejected_nonfinite() const noexcept { return rejected_nonfinite_; }

  /// Cancel a pending event. Returns false if already executed/cancelled
  /// (ids are generation-checked, so cancelling a stale id — even one
  /// whose slot was recycled — is a safe no-op).
  bool cancel(EventId id);

  /// Run until the queue empties or `t_end_s` is reached, whichever is
  /// first. The clock is left at min(t_end_s, last event time).
  void run_until(double t_end_s);

  /// Run until the queue empties.
  void run();

  /// Execute the single next event, if any. Returns false when idle.
  bool step();

  /// Drop all pending events and reset the clock to zero. Ids issued
  /// before the reset stay dead: their generations are retired, so a
  /// stale cancel() after reset() cannot touch a recycled slot.
  void reset();

 private:
  /// Heap entry: plain data, ordered by (t, seq). `seq` is monotonically
  /// increasing, providing the FIFO tie-break for simultaneous events.
  struct HeapEntry {
    double t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  /// Pooled callable storage. `gen` is bumped every time the slot is
  /// vacated (execute/cancel/reset), which both invalidates outstanding
  /// EventIds and marks heap placeholders stale.
  struct Slot {
    EventFn fn;
    std::uint32_t gen{0};
  };

  static EventId encode(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) | (slot + 1u);
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  /// Pop the heap top; runs it if live. Returns false for a stale
  /// (cancelled) placeholder, which neither advances the clock nor
  /// counts as executed.
  bool execute_top();

  double now_{0.0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::uint64_t rejected_nonfinite_{0};
  std::size_t live_count_{0};
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

/// Helper: schedule `fn` every `period_s` seconds starting at now+period,
/// until it returns false. Returns the first event's id.
EventId schedule_periodic(Simulator& sim, double period_s, std::function<bool()> fn);

}  // namespace skyferry::sim
