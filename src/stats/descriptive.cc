#include "stats/descriptive.h"

#include <cmath>

namespace skyferry::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.mean();
}

double variance(std::span<const double> xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.variance();
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double correlation(std::span<const double> xs, std::span<const double> ys) noexcept {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace skyferry::stats
