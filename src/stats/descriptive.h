// Descriptive statistics: one-pass Welford accumulator and helpers over
// sample vectors. All figure benches reduce raw simulator output through
// this module before printing.
#pragma once

#include <cstddef>
#include <span>

namespace skyferry::stats {

/// Numerically stable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (parallel-combinable, Chan et al.).
  void merge(const RunningStats& o) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;  ///< unbiased
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Pearson correlation coefficient; 0 if either side is constant.
/// Precondition: xs.size() == ys.size().
[[nodiscard]] double correlation(std::span<const double> xs, std::span<const double> ys) noexcept;

}  // namespace skyferry::stats
