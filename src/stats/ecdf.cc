#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/rng.h"
#include "stats/descriptive.h"
#include "stats/quantile.h"

namespace skyferry::stats {

Ecdf::Ecdf(std::span<const double> xs) {
  // Non-finite samples would break the sorted invariant upper_bound
  // relies on (NaN compares unordered); the ECDF is over finite draws.
  sorted_.reserve(xs.size());
  for (double x : xs) {
    if (std::isfinite(x)) sorted_.push_back(x);
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const noexcept {
  if (std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  if (sorted_.empty()) return 0.0;
  const double qc = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(qc * static_cast<double>(sorted_.size())));
  return sorted_[idx == 0 ? 0 : std::min(idx - 1, sorted_.size() - 1)];
}

double Ecdf::ks_distance(const Ecdf& other) const noexcept {
  double d = 0.0;
  for (double x : sorted_) d = std::max(d, std::abs((*this)(x) - other(x)));
  for (double x : other.sorted_) d = std::max(d, std::abs((*this)(x) - other(x)));
  return d;
}

namespace {

template <typename Stat>
BootstrapCi bootstrap_ci(std::span<const double> xs, double level, int resamples,
                         std::uint64_t seed, Stat stat) {
  BootstrapCi ci;
  ci.resamples = resamples;
  if (xs.empty()) return ci;
  ci.point = stat(xs);

  sim::Rng rng(seed);
  std::vector<double> resample(xs.size());
  std::vector<double> stats_v;
  stats_v.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (auto& v : resample) v = xs[rng.uniform_int(xs.size())];
    stats_v.push_back(stat(std::span<const double>(resample)));
  }
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile(stats_v, alpha);
  ci.hi = quantile(stats_v, 1.0 - alpha);
  return ci;
}

}  // namespace

BootstrapCi bootstrap_median_ci(std::span<const double> xs, double level, int resamples,
                                std::uint64_t seed) {
  return bootstrap_ci(xs, level, resamples, seed,
                      [](std::span<const double> s) { return median(s); });
}

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, double level, int resamples,
                              std::uint64_t seed) {
  return bootstrap_ci(xs, level, resamples, seed,
                      [](std::span<const double> s) { return mean(s); });
}

}  // namespace skyferry::stats
