// Empirical CDFs and bootstrap confidence intervals — the tools needed
// to report measured throughput distributions with honest uncertainty
// (the paper shows boxplots; downstream users often want CDFs and CIs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace skyferry::stats {

/// Empirical cumulative distribution function over a sample.
/// Non-finite inputs are dropped at construction (`size()` counts the
/// kept samples).
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> xs);

  /// F(x) = fraction of samples <= x.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Generalized inverse: smallest sample x with F(x) >= q, q in (0,1]
  /// (clamped; q=0 returns the minimum, NaN q returns NaN).
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

  /// Kolmogorov-Smirnov distance to another ECDF.
  [[nodiscard]] double ks_distance(const Ecdf& other) const noexcept;

 private:
  std::vector<double> sorted_;
};

/// Percentile-bootstrap confidence interval for a statistic of a sample.
struct BootstrapCi {
  double point{0.0};  ///< statistic on the original sample
  double lo{0.0};
  double hi{0.0};
  int resamples{0};
};

/// Bootstrap CI for the *median* at confidence `level` (e.g. 0.95).
[[nodiscard]] BootstrapCi bootstrap_median_ci(std::span<const double> xs, double level = 0.95,
                                              int resamples = 1000, std::uint64_t seed = 1);

/// Bootstrap CI for the *mean*.
[[nodiscard]] BootstrapCi bootstrap_mean_ci(std::span<const double> xs, double level = 0.95,
                                            int resamples = 1000, std::uint64_t seed = 1);

}  // namespace skyferry::stats
