#include "stats/histogram.h"

#include <cassert>
#include <cmath>

namespace skyferry::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(bins >= 1);
  assert(hi > lo);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // guard FP edge at hi_
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const noexcept {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const noexcept {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(in_range);
}

std::size_t Histogram::mode_bin() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[best]) best = i;
  }
  return best;
}

}  // namespace skyferry::stats
