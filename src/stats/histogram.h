// Fixed-bin histogram used by the benches to summarise sample
// distributions (throughput spread, transfer-time distributions).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace skyferry::stats {

/// Equal-width histogram over [lo, hi). Samples outside the range are
/// counted in underflow/overflow, never silently dropped.
class Histogram {
 public:
  /// Precondition: bins >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const noexcept;

  /// Fraction of in-range samples in `bin` (0 if histogram is empty).
  [[nodiscard]] double density(std::size_t bin) const noexcept;

  /// Bin index with the highest count (ties resolved to the lowest index).
  [[nodiscard]] std::size_t mode_bin() const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

}  // namespace skyferry::stats
