#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

namespace skyferry::stats {

double quantile_sorted(std::span<const double> xs, double q) noexcept {
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs[0];
  const double qc = std::clamp(q, 0.0, 1.0);
  const double h = qc * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double w = h - static_cast<double>(lo);
  return xs[lo] + w * (xs[hi] - xs[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

BoxplotSummary boxplot(std::span<const double> xs) {
  BoxplotSummary b;
  b.n = xs.size();
  if (xs.empty()) return b;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  b.min = sorted.front();
  b.max = sorted.back();
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.50);
  b.q3 = quantile_sorted(sorted, 0.75);

  const double fence_lo = b.q1 - 1.5 * b.iqr();
  const double fence_hi = b.q3 + 1.5 * b.iqr();

  b.whisker_low = b.min;
  b.whisker_high = b.max;
  for (double x : sorted) {
    if (x >= fence_lo) {
      b.whisker_low = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= fence_hi) {
      b.whisker_high = *it;
      break;
    }
  }
  for (double x : sorted) {
    if (x < fence_lo || x > fence_hi) b.outliers.push_back(x);
  }
  return b;
}

}  // namespace skyferry::stats
