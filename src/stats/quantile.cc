#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skyferry::stats {

double quantile_sorted(std::span<const double> xs, double q) noexcept {
  // A NaN q would flow through clamp/floor into an undefined
  // float->size_t cast; reject it explicitly instead.
  if (std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs[0];
  const double qc = std::clamp(q, 0.0, 1.0);
  // The boundaries must be exact, not interpolated: q=0 is the sample
  // minimum and q=1 the maximum even when qc*(n-1) rounds badly.
  if (qc == 0.0) return xs.front();
  if (qc == 1.0) return xs.back();
  const double h = qc * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double w = h - static_cast<double>(lo);
  return xs[lo] + w * (xs[hi] - xs[lo]);
}

double quantile(std::span<const double> xs, double q) {
  // Non-finite samples break the sort invariant (NaN comparisons are
  // unordered) and poison every interpolated value; drop them.
  std::vector<double> sorted;
  sorted.reserve(xs.size());
  for (double x : xs) {
    if (std::isfinite(x)) sorted.push_back(x);
  }
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

BoxplotSummary boxplot(std::span<const double> xs) {
  BoxplotSummary b;
  std::vector<double> sorted;
  sorted.reserve(xs.size());
  for (double x : xs) {
    if (std::isfinite(x)) sorted.push_back(x);
  }
  std::sort(sorted.begin(), sorted.end());
  b.n = sorted.size();
  if (sorted.empty()) return b;

  b.min = sorted.front();
  b.max = sorted.back();
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.50);
  b.q3 = quantile_sorted(sorted, 0.75);

  const double fence_lo = b.q1 - 1.5 * b.iqr();
  const double fence_hi = b.q3 + 1.5 * b.iqr();

  b.whisker_low = b.min;
  b.whisker_high = b.max;
  for (double x : sorted) {
    if (x >= fence_lo) {
      b.whisker_low = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= fence_hi) {
      b.whisker_high = *it;
      break;
    }
  }
  for (double x : sorted) {
    if (x < fence_lo || x > fence_hi) b.outliers.push_back(x);
  }
  return b;
}

}  // namespace skyferry::stats
