// Quantiles and boxplot summaries. Figures 5 and 7 of the paper are
// throughput-vs-distance boxplots; BoxplotSummary carries the exact
// five-number-plus-whiskers data needed to redraw them.
#pragma once

#include <span>
#include <vector>

namespace skyferry::stats {

/// Linear-interpolation quantile (type-7, the default of R/NumPy/Matlab).
/// `q` in [0,1] (clamped; NaN q returns NaN). Returns 0 for an empty
/// sample; q=0/q=1 return the exact min/max. Non-finite samples are
/// dropped. Does not require `xs` to be sorted (copies internally); use
/// quantile_sorted to avoid the copy.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Same, but `xs` must already be ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> xs, double q) noexcept;

[[nodiscard]] double median(std::span<const double> xs);

/// Matplotlib/Tukey-style boxplot statistics: quartiles, whiskers at the
/// most extreme data points within 1.5*IQR of the box, and the outliers
/// beyond them. Non-finite samples are dropped (`n` counts the kept ones).
struct BoxplotSummary {
  std::size_t n{0};
  double min{0.0};
  double q1{0.0};
  double median{0.0};
  double q3{0.0};
  double max{0.0};
  double whisker_low{0.0};   ///< smallest sample >= q1 - 1.5*IQR
  double whisker_high{0.0};  ///< largest sample <= q3 + 1.5*IQR
  std::vector<double> outliers;

  [[nodiscard]] double iqr() const noexcept { return q3 - q1; }
};

[[nodiscard]] BoxplotSummary boxplot(std::span<const double> xs);

}  // namespace skyferry::stats
