#include "stats/regression.h"

#include <cmath>
#include <vector>

#include "stats/descriptive.h"

namespace skyferry::stats {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) noexcept {
  LinearFit f;
  f.n = xs.size();
  if (xs.size() != ys.size() || xs.empty()) return f;

  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    sxx += dx * dx;
    sxy += dx * (ys[i] - my);
  }
  if (sxx == 0.0) {
    f.intercept = my;
    return f;
  }
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;

  // R^2 = 1 - SSres/SStot.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  f.r_squared = (ss_tot == 0.0) ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

double Log2Fit::operator()(double x) const noexcept { return a * std::log2(x) + b; }

Log2Fit log2_fit(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx;
  lx.reserve(xs.size());
  for (double x : xs) lx.push_back(std::log2(x));
  const LinearFit lin = linear_fit(lx, ys);
  Log2Fit f;
  f.a = lin.slope;
  f.b = lin.intercept;
  f.r_squared = lin.r_squared;
  f.n = lin.n;
  return f;
}

double r_squared(std::span<const double> observed, std::span<const double> predicted) noexcept {
  if (observed.size() != predicted.size() || observed.empty()) return 0.0;
  const double my = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - my) * (observed[i] - my);
  }
  return (ss_tot == 0.0) ? 1.0 : 1.0 - ss_res / ss_tot;
}

}  // namespace skyferry::stats
