// Least-squares fitting. The paper fits a logarithmic throughput model
// s(d) = a*log2(d) + b to median throughput per distance bin and reports
// the coefficient of determination R^2 (Sec. 4). LogFit reproduces exactly
// that pipeline so our simulated links can be validated against the
// paper's published coefficients.
#pragma once

#include <span>

namespace skyferry::stats {

/// Result of a univariate linear least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope{0.0};
  double intercept{0.0};
  double r_squared{0.0};
  std::size_t n{0};

  [[nodiscard]] double operator()(double x) const noexcept { return slope * x + intercept; }
};

/// Ordinary least squares on (xs, ys). Sizes must match; fewer than two
/// distinct x values yields slope 0 and intercept = mean(y).
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Fit y = a*log2(x) + b (the paper's throughput model shape).
/// All xs must be > 0.
struct Log2Fit {
  double a{0.0};  ///< slope against log2(x)
  double b{0.0};  ///< intercept
  double r_squared{0.0};
  std::size_t n{0};

  [[nodiscard]] double operator()(double x) const noexcept;
};

[[nodiscard]] Log2Fit log2_fit(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination of predictions vs observations.
[[nodiscard]] double r_squared(std::span<const double> observed,
                               std::span<const double> predicted) noexcept;

}  // namespace skyferry::stats
