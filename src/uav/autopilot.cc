#include "uav/autopilot.h"

#include <cmath>

namespace skyferry::uav {

Autopilot::Autopilot(const PlatformSpec& spec) noexcept : spec_(spec) {}

void Autopilot::add_waypoint(const Waypoint& wp) {
  plan_.push_back(wp);
  if (phase_ == AutopilotPhase::kIdle) {
    current_ = plan_.front();
    plan_.pop_front();
    phase_ = AutopilotPhase::kEnroute;
  }
}

void Autopilot::set_plan(std::deque<Waypoint> plan) {
  plan_ = std::move(plan);
  current_.reset();
  phase_ = AutopilotPhase::kIdle;
  if (!plan_.empty()) {
    current_ = plan_.front();
    plan_.pop_front();
    phase_ = AutopilotPhase::kEnroute;
  }
}

void Autopilot::clear() noexcept {
  plan_.clear();
  current_.reset();
  phase_ = AutopilotPhase::kIdle;
}

VelocityCommand Autopilot::command_towards(const KinematicState& s,
                                           const Waypoint& wp) const noexcept {
  const geo::Vec3 to_wp = wp.pos - s.pos;
  const double dist = to_wp.norm();
  double speed = wp.speed_mps > 0.0 ? wp.speed_mps : spec_.cruise_speed_mps;
  // Rotorcraft decelerate into the waypoint; fixed-wing keep speed up.
  if (spec_.can_hover && dist < 2.0 * speed) speed = std::max(dist / 2.0, 0.5);
  if (dist < 1e-9) return {geo::Vec3{}};
  return {to_wp.normalized() * speed};
}

VelocityCommand Autopilot::loiter_command(const KinematicState& s,
                                          const Waypoint& wp) const noexcept {
  if (spec_.can_hover) {
    // Position hold: proportional station-keeping so wind and drift are
    // actively rejected rather than integrated.
    const geo::Vec3 err = wp.pos - s.pos;
    return {err * 0.5};
  }

  // Fixed-wing loiter: fly a circle of the minimum turn radius around the
  // waypoint. Command the tangential direction, with a radial correction
  // to converge onto the circle.
  const double r = std::max(spec_.min_turn_radius_m, 1.0);
  geo::Vec3 radial = s.pos - wp.pos;
  radial.z = 0.0;
  const double rho = radial.horizontal_norm();
  const double speed = spec_.cruise_speed_mps;
  geo::Vec3 rad_dir = (rho > 1e-6) ? radial / rho : geo::Vec3{1.0, 0.0, 0.0};
  // Tangent (counter-clockwise) + proportional radial convergence.
  const geo::Vec3 tangent{-rad_dir.y, rad_dir.x, 0.0};
  const double radial_err = r - rho;  // >0: too close, push outwards
  geo::Vec3 dir = tangent + rad_dir * (radial_err * 0.1);
  dir.z = (wp.pos.z - s.pos.z) * 0.2;
  return {dir.normalized() * speed};
}

VelocityCommand Autopilot::update(const KinematicState& s, double t_s, double dt_s) {
  (void)dt_s;
  if (!current_) {
    phase_ = AutopilotPhase::kIdle;
    // Fixed-wing cannot stop even with no plan: keep flying straight.
    if (!spec_.can_hover && s.vel.norm() > 1e-6) {
      return {s.vel.normalized() * spec_.cruise_speed_mps};
    }
    return {geo::Vec3{}};
  }

  const Waypoint& wp = *current_;
  const double dist = geo::distance(s.pos, wp.pos);
  // Airplanes count a waypoint reached when inside the loiter circle.
  const double accept = spec_.can_hover
                            ? wp.accept_radius_m
                            : std::max(wp.accept_radius_m, spec_.min_turn_radius_m * 1.2);

  switch (phase_) {
    case AutopilotPhase::kEnroute:
      if (dist <= accept) {
        phase_ = AutopilotPhase::kHolding;
        hold_forever_ = wp.hold_s < 0.0;
        hold_until_ = t_s + wp.hold_s;
        return loiter_command(s, wp);
      }
      return command_towards(s, wp);

    case AutopilotPhase::kHolding:
      if (!hold_forever_ && t_s >= hold_until_) {
        current_.reset();
        if (!plan_.empty()) {
          current_ = plan_.front();
          plan_.pop_front();
          phase_ = AutopilotPhase::kEnroute;
          return command_towards(s, *current_);
        }
        phase_ = AutopilotPhase::kIdle;
        if (!spec_.can_hover) return loiter_command(s, wp);
        return {geo::Vec3{}};
      }
      return loiter_command(s, wp);

    case AutopilotPhase::kIdle:
      break;
  }
  return {geo::Vec3{}};
}

}  // namespace skyferry::uav
