// Waypoint autopilot. Mirrors the paper's field configuration: airplanes
// shuttle between waypoints and "circle with a radius of at least 20 m"
// to mimic hovering; quadrocopters fly to a waypoint and hold position.
#pragma once

#include <deque>
#include <optional>

#include "geo/vec3.h"
#include "uav/kinematics.h"
#include "uav/platform.h"

namespace skyferry::uav {

/// A navigation target with an arrival tolerance and an optional hold.
struct Waypoint {
  geo::Vec3 pos;
  double speed_mps{0.0};      ///< 0 = platform cruise speed
  double accept_radius_m{5.0};
  double hold_s{0.0};         ///< loiter/hover duration after arrival
};

enum class AutopilotPhase { kIdle, kEnroute, kHolding };

/// Generates velocity commands to fly a waypoint queue.
class Autopilot {
 public:
  explicit Autopilot(const PlatformSpec& spec) noexcept;

  /// Append a waypoint to the flight plan.
  void add_waypoint(const Waypoint& wp);

  /// Replace the flight plan (drops any current hold).
  void set_plan(std::deque<Waypoint> plan);

  void clear() noexcept;

  /// Compute the command for the current state at time t; advances the
  /// internal phase machine (arrival detection, hold timers).
  [[nodiscard]] VelocityCommand update(const KinematicState& s, double t_s, double dt_s);

  [[nodiscard]] AutopilotPhase phase() const noexcept { return phase_; }
  [[nodiscard]] std::size_t waypoints_left() const noexcept { return plan_.size(); }
  [[nodiscard]] const std::optional<Waypoint>& current() const noexcept { return current_; }

  /// True while the platform is "at" its waypoint: hovering for quads,
  /// loitering on the minimum circle for airplanes.
  [[nodiscard]] bool is_holding() const noexcept { return phase_ == AutopilotPhase::kHolding; }

 private:
  [[nodiscard]] VelocityCommand command_towards(const KinematicState& s,
                                                const Waypoint& wp) const noexcept;
  [[nodiscard]] VelocityCommand loiter_command(const KinematicState& s,
                                               const Waypoint& wp) const noexcept;

  PlatformSpec spec_;
  std::deque<Waypoint> plan_;
  std::optional<Waypoint> current_;
  AutopilotPhase phase_{AutopilotPhase::kIdle};
  double hold_until_{0.0};
  bool hold_forever_{false};
};

}  // namespace skyferry::uav
