#include "uav/battery.h"

#include <algorithm>
#include <cmath>

namespace skyferry::uav {

Battery::Battery(const PlatformSpec& spec) noexcept : spec_(spec) {}

double Battery::drain_factor(double speed_mps) const noexcept {
  const double cruise = std::max(spec_.cruise_speed_mps, 0.1);
  const double rel = speed_mps / cruise;
  if (spec_.kind == PlatformKind::kQuadrocopter) {
    // Rotorcraft: induced power dominates at hover (baseline 0.8 of
    // cruise drain) and parasitic drag grows with v^2.
    return 0.8 + 0.2 * rel * rel;
  }
  // Fixed-wing: near-constant around cruise, rising with v^2 above it.
  return 0.6 + 0.4 * rel * rel;
}

void Battery::drain(double dt_s, double speed_mps) noexcept {
  const double rate = drain_factor(speed_mps) / std::max(spec_.battery_autonomy_s, 1.0);
  soc_ = std::max(0.0, soc_ - rate * dt_s);
}

double Battery::remaining_endurance_s() const noexcept {
  return soc_ * spec_.battery_autonomy_s;
}

double Battery::remaining_range_m() const noexcept {
  return remaining_endurance_s() * spec_.cruise_speed_mps;
}

}  // namespace skyferry::uav
