// Battery / endurance model. Table 1 gives autonomy at cruise; drain
// scales with commanded speed (quadratic aerodynamic term) and hovering
// still burns power on rotorcraft.
#pragma once

#include "uav/platform.h"

namespace skyferry::uav {

class Battery {
 public:
  explicit Battery(const PlatformSpec& spec) noexcept;

  /// Drain for `dt_s` seconds at `speed_mps`. State of charge saturates at 0.
  void drain(double dt_s, double speed_mps) noexcept;

  /// Remaining state of charge in [0,1].
  [[nodiscard]] double soc() const noexcept { return soc_; }
  [[nodiscard]] bool depleted() const noexcept { return soc_ <= 0.0; }

  /// Estimated remaining flight time [s] at cruise speed.
  [[nodiscard]] double remaining_endurance_s() const noexcept;

  /// Estimated remaining range [m] at cruise speed.
  [[nodiscard]] double remaining_range_m() const noexcept;

  /// Relative drain rate at a speed (1.0 at cruise).
  [[nodiscard]] double drain_factor(double speed_mps) const noexcept;

 private:
  PlatformSpec spec_;
  double soc_{1.0};
};

}  // namespace skyferry::uav
