#include "uav/failure.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skyferry::uav {

FailureModel::FailureModel(double rho, FailureLaw law, double weibull_shape) noexcept
    : rho_(std::max(rho, 0.0)), law_(law), shape_(std::max(weibull_shape, 0.1)) {}

FailureModel FailureModel::from_battery(const PlatformSpec& spec) noexcept {
  const double range = spec.range_m();
  return FailureModel(range > 0.0 ? 1.0 / range : 0.0);
}

double FailureModel::survival(double distance_m) const noexcept {
  const double d = std::max(distance_m, 0.0);
  switch (law_) {
    case FailureLaw::kExponential:
      return std::exp(-rho_ * d);
    case FailureLaw::kLinear:
      return std::max(0.0, 1.0 - rho_ * d);
    case FailureLaw::kWeibull: {
      // Scale chosen so the mean distance-to-failure matches 1/rho.
      if (rho_ <= 0.0) return 1.0;
      const double lambda = 1.0 / (rho_ * std::tgamma(1.0 + 1.0 / shape_));
      return std::exp(-std::pow(d / lambda, shape_));
    }
  }
  return 1.0;
}

double FailureModel::discount(double d0_m, double d_m) const noexcept {
  return survival(d0_m - d_m);
}

double FailureModel::sample_failure_distance(sim::Rng& rng) const noexcept {
  if (rho_ <= 0.0) return std::numeric_limits<double>::infinity();
  switch (law_) {
    case FailureLaw::kExponential:
      return rng.exponential(rho_);
    case FailureLaw::kLinear:
      // Inverse CDF of F(d)=rho*d on [0, 1/rho].
      return rng.uniform() / rho_;
    case FailureLaw::kWeibull: {
      const double lambda = 1.0 / (rho_ * std::tgamma(1.0 + 1.0 / shape_));
      const double u = std::max(rng.uniform(), 1e-300);
      return lambda * std::pow(-std::log(u), 1.0 / shape_);
    }
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace skyferry::uav
