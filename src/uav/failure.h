// Operational failure models.
//
// The paper assumes the probability of remaining functional while moving
// a distance Δd is exp(-ρ·Δd), with ρ "the inverse of the distance the
// UAV could travel before the battery is depleted" (Sec. 2 / Sec. 4).
// Exponential is the default; linear and Weibull variants support the
// failure-model ablation called out in the paper's conclusion.
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "uav/platform.h"

namespace skyferry::uav {

enum class FailureLaw { kExponential, kLinear, kWeibull };

class FailureModel {
 public:
  /// Exponential-with-distance model with rate `rho` [1/m].
  explicit FailureModel(double rho, FailureLaw law = FailureLaw::kExponential,
                        double weibull_shape = 2.0) noexcept;

  /// Paper's ρ derivation: inverse of the battery-limited range.
  static FailureModel from_battery(const PlatformSpec& spec) noexcept;

  /// Paper's quoted baseline values (Sec. 4): 1.11e-4 (airplane),
  /// 2.46e-4 (quadrocopter).
  static FailureModel paper_airplane() noexcept { return FailureModel(1.11e-4); }
  static FailureModel paper_quadrocopter() noexcept { return FailureModel(2.46e-4); }

  /// Probability of still being functional after traveling `distance_m`.
  [[nodiscard]] double survival(double distance_m) const noexcept;

  /// The paper's discount function δ(d) = survival(d0 - d).
  [[nodiscard]] double discount(double d0_m, double d_m) const noexcept;

  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] FailureLaw law() const noexcept { return law_; }
  [[nodiscard]] double weibull_shape() const noexcept { return shape_; }

  /// Draw the distance-to-failure for a flight leg (for event-driven
  /// failure injection in mission simulations).
  [[nodiscard]] double sample_failure_distance(sim::Rng& rng) const noexcept;

 private:
  double rho_;
  FailureLaw law_;
  double shape_;
};

}  // namespace skyferry::uav
