#include "uav/kinematics.h"

#include <algorithm>
#include <cmath>

#include "geo/geodesy.h"

namespace skyferry::uav {

double KinematicState::heading_rad() const noexcept { return std::atan2(vel.x, vel.y); }

KinematicLimits KinematicLimits::for_platform(const PlatformSpec& spec) noexcept {
  KinematicLimits lim;
  lim.max_speed_mps = spec.max_speed_mps;
  lim.min_speed_mps = spec.min_speed_mps;
  if (spec.kind == PlatformKind::kAirplane) {
    lim.max_accel_mps2 = 2.0;
    // Coordinated-turn rate at cruise bounded by the minimum turn radius:
    // omega = v / r.
    lim.max_turn_rate_rad_s =
        spec.min_turn_radius_m > 0.0 ? spec.cruise_speed_mps / spec.min_turn_radius_m : 0.5;
    lim.max_climb_rate_mps = 3.0;
  } else {
    lim.max_accel_mps2 = 4.0;
    lim.max_turn_rate_rad_s = 2.0;
    lim.max_climb_rate_mps = 2.5;
  }
  return lim;
}

KinematicState step(const KinematicState& s, const VelocityCommand& cmd,
                    const KinematicLimits& lim, double dt_s) noexcept {
  KinematicState out = s;

  // Clamp the commanded speed into the platform envelope.
  geo::Vec3 want = cmd.desired_vel;
  double want_speed = want.norm();
  if (want_speed > lim.max_speed_mps) {
    want = want.normalized() * lim.max_speed_mps;
    want_speed = lim.max_speed_mps;
  }
  if (want_speed < lim.min_speed_mps && lim.min_speed_mps > 0.0) {
    // Fixed-wing: cannot slow below stall. Keep direction (or current
    // heading if the command is "stop") at stall speed.
    geo::Vec3 dir = (want_speed > 1e-9) ? want.normalized() : s.vel.normalized();
    if (dir.norm() < 1e-9) dir = {1.0, 0.0, 0.0};
    want = dir * lim.min_speed_mps;
  }

  // Turn-rate limit on the horizontal heading change.
  const double cur_speed = s.vel.norm();
  if (cur_speed > 1e-6 && want.horizontal_norm() > 1e-6 && s.vel.horizontal_norm() > 1e-6) {
    const double cur_hdg = std::atan2(s.vel.x, s.vel.y);
    const double want_hdg = std::atan2(want.x, want.y);
    double dh = want_hdg - cur_hdg;
    while (dh > geo::kPi) dh -= 2.0 * geo::kPi;
    while (dh < -geo::kPi) dh += 2.0 * geo::kPi;
    const double max_dh = lim.max_turn_rate_rad_s * dt_s;
    if (std::abs(dh) > max_dh) {
      const double new_hdg = cur_hdg + std::copysign(max_dh, dh);
      const double hspeed = want.horizontal_norm();
      want.x = hspeed * std::sin(new_hdg);
      want.y = hspeed * std::cos(new_hdg);
    }
  }

  // Climb-rate limit.
  want.z = std::clamp(want.z, -lim.max_climb_rate_mps, lim.max_climb_rate_mps);

  // Acceleration limit toward the (possibly adjusted) target velocity.
  const geo::Vec3 dv = want - s.vel;
  const double dv_n = dv.norm();
  const double max_dv = lim.max_accel_mps2 * dt_s;
  out.vel = (dv_n <= max_dv || dv_n < 1e-12) ? want : s.vel + dv.normalized() * max_dv;

  out.pos = s.pos + out.vel * dt_s;
  return out;
}

}  // namespace skyferry::uav
