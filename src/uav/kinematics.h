// Point-mass kinematics with platform constraints: speed envelope, bounded
// acceleration and turn rate. Fixed-wing platforms never drop below stall
// speed; rotorcraft can decelerate to hover.
#pragma once

#include "geo/vec3.h"
#include "uav/platform.h"

namespace skyferry::uav {

struct KinematicState {
  geo::Vec3 pos;         ///< ENU [m]
  geo::Vec3 vel;         ///< ENU [m/s]

  [[nodiscard]] double speed() const noexcept { return vel.norm(); }
  [[nodiscard]] double heading_rad() const noexcept;  ///< atan2(east, north)
};

struct KinematicLimits {
  double max_speed_mps{15.0};
  double min_speed_mps{0.0};
  double max_accel_mps2{3.0};
  double max_turn_rate_rad_s{0.8};
  double max_climb_rate_mps{3.0};

  static KinematicLimits for_platform(const PlatformSpec& spec) noexcept;
};

/// Commanded motion for one integration step.
struct VelocityCommand {
  geo::Vec3 desired_vel;  ///< target velocity vector [m/s]
};

/// Integrate one step of dt seconds toward the commanded velocity,
/// respecting acceleration, turn-rate and speed-envelope limits.
[[nodiscard]] KinematicState step(const KinematicState& s, const VelocityCommand& cmd,
                                  const KinematicLimits& lim, double dt_s) noexcept;

}  // namespace skyferry::uav
