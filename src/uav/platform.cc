#include "uav/platform.h"

namespace skyferry::uav {

PlatformSpec PlatformSpec::swinglet() {
  PlatformSpec s;
  s.name = "Swinglet (airplane)";
  s.kind = PlatformKind::kAirplane;
  s.can_hover = false;
  s.size_m = 0.80;           // wingspan 80 cm
  s.weight_kg = 0.5;
  s.battery_autonomy_s = 30.0 * 60.0;
  s.cruise_speed_mps = 10.0;
  s.max_safe_altitude_m = 300.0;
  s.min_turn_radius_m = 20.0;
  s.min_speed_mps = 7.0;
  s.max_speed_mps = 20.0;
  return s;
}

PlatformSpec PlatformSpec::arducopter() {
  PlatformSpec s;
  s.name = "Arducopter (quadrocopter)";
  s.kind = PlatformKind::kQuadrocopter;
  s.can_hover = true;
  s.size_m = 0.64;           // 64 cm x 64 cm frame
  s.weight_kg = 1.7;
  s.battery_autonomy_s = 20.0 * 60.0;
  s.cruise_speed_mps = 4.5;  // auto mode
  s.max_safe_altitude_m = 100.0;
  s.min_turn_radius_m = 0.0;
  s.min_speed_mps = 0.0;
  s.max_speed_mps = 15.0;
  return s;
}

}  // namespace skyferry::uav
