// Flying-platform characteristics — Table 1 of the paper, plus the
// dynamics limits the autopilot needs (turn radius, speed envelope).
#pragma once

#include <string>

namespace skyferry::uav {

enum class PlatformKind { kAirplane, kQuadrocopter };

struct PlatformSpec {
  std::string name;
  PlatformKind kind{PlatformKind::kQuadrocopter};
  bool can_hover{true};
  /// Characteristic size: wingspan for airplanes, frame edge for quads [m].
  double size_m{0.0};
  double weight_kg{0.0};
  double battery_autonomy_s{0.0};
  double cruise_speed_mps{0.0};
  double max_safe_altitude_m{0.0};
  /// Fixed-wing aircraft cannot stop: they loiter on a circle of at least
  /// this radius (paper: >= 20 m). Zero for hovering platforms.
  double min_turn_radius_m{0.0};
  /// Minimum sustainable airspeed (stall limit); zero for quads.
  double min_speed_mps{0.0};
  double max_speed_mps{0.0};

  /// Distance the platform can cover at cruise on one battery [m].
  [[nodiscard]] double range_m() const noexcept { return cruise_speed_mps * battery_autonomy_s; }

  /// Swinglet fixed-wing airplane (Table 1).
  static PlatformSpec swinglet();
  /// Arducopter quadrocopter (Table 1).
  static PlatformSpec arducopter();
};

}  // namespace skyferry::uav
