#include "uav/uav.h"

#include <limits>

#include "sim/rng.h"
#include "uav/failure.h"

namespace skyferry::uav {

Uav::Uav(UavConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      state_{cfg.start_pos, cfg.start_vel},
      limits_(KinematicLimits::for_platform(cfg.platform)),
      autopilot_(cfg.platform),
      battery_(cfg.platform),
      gps_(cfg.gps, sim::derive_seed(seed, "gps/" + cfg.id)),
      last_fix_(cfg.start_pos) {
  trace_.push({0.0, state_.pos, state_.vel});
  last_trace_t_ = 0.0;
  failure_at_m_ = std::numeric_limits<double>::infinity();
  if (cfg_.failure_rho_per_m > 0.0) {
    sim::Rng rng(sim::derive_seed(seed, "failure/" + cfg_.id));
    failure_at_m_ = FailureModel(cfg_.failure_rho_per_m).sample_failure_distance(rng);
  }
}

bool Uav::failed() const noexcept {
  return battery_.depleted() || odometer_m_ >= failure_at_m_;
}

void Uav::tick(double t_s, double dt_s) {
  if (failed()) return;  // vehicle is down

  const VelocityCommand cmd = autopilot_.update(state_, t_s, dt_s);
  KinematicState next = step(state_, cmd, limits_, dt_s);
  if (cfg_.wind) next.pos += cfg_.wind(t_s) * dt_s;  // airmass drift
  odometer_m_ += geo::distance(state_.pos, next.pos);
  state_ = next;
  battery_.drain(dt_s, state_.speed());
  last_fix_ = gps_.measure(state_.pos, dt_s);

  if (t_s - last_trace_t_ >= cfg_.trace_sample_period_s) {
    trace_.push({t_s, state_.pos, state_.vel});
    last_trace_t_ = t_s;
  }
}

void Uav::goto_and_hold(const geo::Vec3& pos, double speed_mps, double hold_s,
                        double accept_radius_m) {
  Waypoint wp;
  wp.pos = pos;
  wp.speed_mps = speed_mps;
  wp.hold_s = hold_s;
  wp.accept_radius_m = accept_radius_m;
  autopilot_.add_waypoint(wp);
}

}  // namespace skyferry::uav
