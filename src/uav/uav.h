// The UAV entity: platform + kinematics + autopilot + battery + GPS,
// advanced by fixed-step ticks and recording its own flight trace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "geo/gps.h"
#include "geo/trajectory.h"
#include "uav/autopilot.h"
#include "uav/battery.h"
#include "uav/kinematics.h"
#include "uav/platform.h"

namespace skyferry::uav {

struct UavConfig {
  std::string id{"uav"};
  PlatformSpec platform{PlatformSpec::arducopter()};
  geo::Vec3 start_pos{};
  geo::Vec3 start_vel{};
  geo::GpsNoiseConfig gps{};
  double trace_sample_period_s{0.5};
  /// Optional wind field: world-frame wind vector at time t. The vehicle
  /// flies in the airmass, so its ground track drifts with the wind and
  /// the autopilot has to keep re-aiming (see uav/wind.h for models).
  std::function<geo::Vec3(double t_s)> wind;
  /// In-flight failure rate [1/m]; 0 disables random failures. When set,
  /// a distance-to-failure is drawn at spawn (exponential, the paper's
  /// model) and the vehicle goes down once the odometer crosses it.
  double failure_rho_per_m{0.0};
};

class Uav {
 public:
  Uav(UavConfig cfg, std::uint64_t seed);

  /// Advance the vehicle by dt (autopilot -> kinematics -> battery -> GPS).
  void tick(double t_s, double dt_s);

  [[nodiscard]] const std::string& id() const noexcept { return cfg_.id; }
  [[nodiscard]] const PlatformSpec& platform() const noexcept { return cfg_.platform; }
  [[nodiscard]] const KinematicState& state() const noexcept { return state_; }
  [[nodiscard]] const geo::Vec3& position() const noexcept { return state_.pos; }
  [[nodiscard]] double speed() const noexcept { return state_.vel.norm(); }
  [[nodiscard]] Autopilot& autopilot() noexcept { return autopilot_; }
  [[nodiscard]] const Autopilot& autopilot() const noexcept { return autopilot_; }
  [[nodiscard]] Battery& battery() noexcept { return battery_; }
  [[nodiscard]] const Battery& battery() const noexcept { return battery_; }
  [[nodiscard]] const geo::Trajectory& trace() const noexcept { return trace_; }
  [[nodiscard]] const geo::Vec3& gps_fix() const noexcept { return last_fix_; }

  /// Odometer: total distance flown [m].
  [[nodiscard]] double distance_flown_m() const noexcept { return odometer_m_; }

  /// True once the vehicle is down: battery depleted or an in-flight
  /// failure struck (odometer crossed the drawn distance-to-failure).
  [[nodiscard]] bool failed() const noexcept;

  /// The drawn distance-to-failure [m] (infinity when failures are off).
  [[nodiscard]] double failure_distance_m() const noexcept { return failure_at_m_; }

  /// Convenience: command a flight to `pos` then hold (hover/loiter)
  /// there. `accept_radius_m` is the arrival tolerance (rendezvous
  /// positioning wants it tight; transit waypoints can be loose).
  void goto_and_hold(const geo::Vec3& pos, double speed_mps = 0.0, double hold_s = -1.0,
                     double accept_radius_m = 3.0);

 private:
  UavConfig cfg_;
  KinematicState state_;
  KinematicLimits limits_;
  Autopilot autopilot_;
  Battery battery_;
  geo::GpsReceiver gps_;
  geo::Trajectory trace_;
  geo::Vec3 last_fix_;
  double odometer_m_{0.0};
  double last_trace_t_{-1e9};
  double failure_at_m_{0.0};
};

}  // namespace skyferry::uav
