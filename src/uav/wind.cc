#include "uav/wind.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skyferry::uav {

WindModel::WindModel(WindConfig cfg, std::uint64_t seed) noexcept
    : cfg_(cfg), rng_(seed) {}

geo::Vec3 WindModel::sample(double t_s) noexcept {
  const double dt = std::max(t_s - last_t_, 0.0);
  last_t_ = t_s;
  const double a = std::exp(-dt / cfg_.gust_tau_s);
  const double drive = cfg_.gust_sigma_mps * std::sqrt(std::max(1.0 - a * a, 0.0));
  gust_.x = a * gust_.x + drive * rng_.gaussian();
  gust_.y = a * gust_.y + drive * rng_.gaussian();
  gust_.z = 0.5 * (a * gust_.z + drive * rng_.gaussian());  // vertical gusts weaker
  return cfg_.mean_mps + gust_;
}

double ground_speed_along_track(double airspeed_mps, const geo::Vec3& wind,
                                const geo::Vec3& track_dir) noexcept {
  const geo::Vec3 dir = track_dir.normalized();
  if (dir.norm() < 0.5) return airspeed_mps;
  // Crab solution: the cross-track wind component must be cancelled by
  // the airspeed vector; what remains goes along-track.
  const double w_along = dot(wind, dir);
  const geo::Vec3 w_cross = wind - dir * w_along;
  const double cross2 = w_cross.norm_sq();
  const double a2 = airspeed_mps * airspeed_mps;
  if (cross2 >= a2) return 0.0;  // cannot hold the track
  const double v_along = std::sqrt(a2 - cross2) + w_along;
  return std::max(v_along, 0.0);
}

double wind_adjusted_tship_s(double distance_m, double airspeed_mps, const geo::Vec3& wind,
                             const geo::Vec3& track_dir) noexcept {
  const double v = ground_speed_along_track(airspeed_mps, wind, track_dir);
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  return distance_m / v;
}

}  // namespace skyferry::uav
