// Wind model: steady wind plus Ornstein-Uhlenbeck gusts. The paper's
// shipping-time model assumes still air; wind skews Tship (head/tail
// wind changes ground speed) and is the dominant outdoor disturbance for
// sub-kilogram airframes like the Swinglet.
#pragma once

#include <cstdint>

#include "geo/vec3.h"
#include "sim/rng.h"

namespace skyferry::uav {

struct WindConfig {
  geo::Vec3 mean_mps{};          ///< steady wind vector (ENU)
  double gust_sigma_mps{1.0};    ///< 1-sigma gust magnitude per axis
  double gust_tau_s{3.0};        ///< gust decorrelation time
};

/// Time-correlated wind sampler. Call with nondecreasing time.
class WindModel {
 public:
  WindModel(WindConfig cfg, std::uint64_t seed) noexcept;

  /// Wind vector [m/s] at time t.
  [[nodiscard]] geo::Vec3 sample(double t_s) noexcept;

  [[nodiscard]] const WindConfig& config() const noexcept { return cfg_; }

 private:
  WindConfig cfg_;
  sim::Rng rng_;
  geo::Vec3 gust_{};
  double last_t_{0.0};
};

/// Ground speed along a track toward a target when flying at `airspeed`
/// through `wind`: the along-track component of airspeed+wind, assuming
/// the autopilot crabs to stay on track. Returns 0 when the wind is too
/// strong to make progress.
[[nodiscard]] double ground_speed_along_track(double airspeed_mps, const geo::Vec3& wind,
                                              const geo::Vec3& track_dir) noexcept;

/// Shipping time over `distance_m` with head/tail wind folded in.
[[nodiscard]] double wind_adjusted_tship_s(double distance_m, double airspeed_mps,
                                           const geo::Vec3& wind,
                                           const geo::Vec3& track_dir) noexcept;

}  // namespace skyferry::uav
