#include "airnet/network.h"

#include <gtest/gtest.h>

namespace skyferry::airnet {
namespace {

uav::UavConfig quad(const std::string& id, const geo::Vec3& pos) {
  uav::UavConfig cfg;
  cfg.id = id;
  cfg.platform = uav::PlatformSpec::arducopter();
  cfg.start_pos = pos;
  return cfg;
}

TEST(AerialNetwork, NodesFlyUnderNetworkClock) {
  AerialNetwork net(NetworkConfig{}, 1);
  const NodeId a = net.add_node(quad("a", {0.0, 0.0, 10.0}));
  net.node(a).goto_and_hold({30.0, 0.0, 10.0});
  net.run_until(30.0);
  EXPECT_NEAR(net.node(a).position().x, 30.0, 4.0);
  EXPECT_DOUBLE_EQ(net.now(), 30.0);
}

TEST(AerialNetwork, TransferCompletesBetweenHoveringNodes) {
  AerialNetwork net(NetworkConfig{}, 2);
  const NodeId a = net.add_node(quad("tx", {0.0, 0.0, 10.0}));
  const NodeId b = net.add_node(quad("rx", {40.0, 0.0, 10.0}));
  net.node(a).goto_and_hold({0.0, 0.0, 10.0});
  net.node(b).goto_and_hold({40.0, 0.0, 10.0});

  bool done = false;
  double done_t = 0.0;
  const TransferId id =
      net.start_transfer(a, b, net::DataBatch{10, 1.0e6}, [&](const TransferStats& s) {
        done = true;
        done_t = s.completed_t_s;
      });
  net.run_until(120.0);
  EXPECT_TRUE(done);
  EXPECT_GT(done_t, 0.0);
  const TransferStats& st = net.transfer(id);
  EXPECT_TRUE(st.completed);
  EXPECT_GE(st.payload_bytes_delivered, 10'000'000u);
  EXPECT_GT(st.mpdus_attempted, st.mpdus_delivered);  // some loss existed
}

TEST(AerialNetwork, CloserTransferFinishesFaster) {
  auto time_at = [](double d) {
    AerialNetwork net(NetworkConfig{}, 3);
    const NodeId a = net.add_node(quad("tx", {0.0, 0.0, 10.0}));
    const NodeId b = net.add_node(quad("rx", {d, 0.0, 10.0}));
    net.node(a).goto_and_hold({0.0, 0.0, 10.0});
    net.node(b).goto_and_hold({d, 0.0, 10.0});
    net.start_transfer(a, b, net::DataBatch{20, 1.0e6});
    net.run_until(600.0);
    return net.transfer(0).completed ? net.transfer(0).completed_t_s : 1e9;
  };
  EXPECT_LT(time_at(25.0), time_at(70.0));
}

TEST(AerialNetwork, FerryApproachSpeedsUpDelivery) {
  // The delayed-gratification maneuver on the live network: the ferry
  // flies from 90 m to 25 m while the transfer runs; it must finish
  // sooner than a ferry parked at 90 m.
  auto run = [](bool approach) {
    AerialNetwork net(NetworkConfig{}, 4);
    const NodeId ferry = net.add_node(quad("ferry", {90.0, 0.0, 10.0}));
    const NodeId relay = net.add_node(quad("relay", {0.0, 0.0, 10.0}));
    net.node(relay).goto_and_hold({0.0, 0.0, 10.0});
    net.node(ferry).goto_and_hold(approach ? geo::Vec3{25.0, 0.0, 10.0}
                                           : geo::Vec3{90.0, 0.0, 10.0});
    net.start_transfer(ferry, relay, net::DataBatch{30, 1.0e6});
    net.run_until(900.0);
    return net.transfer(0).completed ? net.transfer(0).completed_t_s : 1e9;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(AerialNetwork, ContentionSlowsParallelTransfers) {
  auto total_time = [](bool parallel) {
    AerialNetwork net(NetworkConfig{}, 5);
    const NodeId a1 = net.add_node(quad("a1", {0.0, 0.0, 10.0}));
    const NodeId b1 = net.add_node(quad("b1", {30.0, 0.0, 10.0}));
    const NodeId a2 = net.add_node(quad("a2", {0.0, 50.0, 10.0}));
    const NodeId b2 = net.add_node(quad("b2", {30.0, 50.0, 10.0}));
    for (NodeId n : {a1, b1, a2, b2}) {
      net.node(n).goto_and_hold(net.node(n).position());
    }
    const net::DataBatch batch{15, 1.0e6};
    if (parallel) {
      net.start_transfer(a1, b1, batch);
      net.start_transfer(a2, b2, batch);
      net.run_until(900.0);
      return std::max(net.transfer(0).completed_t_s, net.transfer(1).completed_t_s);
    }
    net.start_transfer(a1, b1, batch);
    net.run_until(900.0);
    return net.transfer(0).completed_t_s;
  };
  const double alone = total_time(false);
  const double shared = total_time(true);
  EXPECT_GT(shared, alone * 1.5);  // DCF sharing costs more than fair split
}

TEST(AerialNetwork, OutOfRangeTransferStallsWithoutCompleting) {
  AerialNetwork net(NetworkConfig{}, 6);
  const NodeId a = net.add_node(quad("tx", {0.0, 0.0, 10.0}));
  const NodeId b = net.add_node(quad("rx", {400.0, 0.0, 10.0}));
  net.node(a).goto_and_hold({0.0, 0.0, 10.0});
  net.node(b).goto_and_hold({400.0, 0.0, 10.0});
  net.start_transfer(a, b, net::DataBatch{5, 1.0e6});
  net.run_until(30.0);
  EXPECT_FALSE(net.transfer(0).completed);
  EXPECT_LT(net.transfer(0).progress(), 0.2);
  // The stall backoff keeps the event count sane (no busy spinning).
  EXPECT_LT(net.simulator().events_executed(), 100000u);
}

TEST(AerialNetwork, DeterministicForSeed) {
  auto run = [] {
    AerialNetwork net(NetworkConfig{}, 77);
    const NodeId a = net.add_node(quad("tx", {0.0, 0.0, 10.0}));
    const NodeId b = net.add_node(quad("rx", {50.0, 0.0, 10.0}));
    net.node(a).goto_and_hold({0.0, 0.0, 10.0});
    net.node(b).goto_and_hold({50.0, 0.0, 10.0});
    net.start_transfer(a, b, net::DataBatch{8, 1.0e6});
    net.run_until(300.0);
    return net.transfer(0).completed_t_s;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace skyferry::airnet
