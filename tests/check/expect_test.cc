#include "check/expect.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::check {
namespace {

TEST(Tolerance, MarginIsMaxOfComponents) {
  Tolerance t;
  t.abs = 0.5;
  t.rel = 0.1;
  t.sigma = 2.0;
  t.sd = 0.4;
  EXPECT_DOUBLE_EQ(t.margin(100.0), 10.0);  // rel dominates
  EXPECT_DOUBLE_EQ(t.margin(1.0), 0.8);     // sigma*sd dominates
  EXPECT_DOUBLE_EQ(t.margin(0.0), 0.8);
  EXPECT_DOUBLE_EQ(Tolerance::absolute(0.25).margin(1e9), 0.25);
}

TEST(Tolerance, ExactDetection) {
  EXPECT_TRUE(Tolerance::exact().is_exact());
  EXPECT_FALSE(Tolerance::absolute(0.1).is_exact());
  EXPECT_FALSE(Tolerance::relative(0.1).is_exact());
  EXPECT_FALSE(Tolerance::sigmas(3.0, 0.2).is_exact());
  EXPECT_TRUE(Tolerance::sigmas(3.0, 0.0).is_exact());  // zero noise scale
}

TEST(Expect, ExactPassAndFail) {
  const Expect e("flag", 1.0, Tolerance::exact());
  EXPECT_TRUE(e.check(1.0).ok);
  const auto r = e.check(0.0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.name, "flag");
  EXPECT_NE(r.message.find("exact"), std::string::npos);
}

TEST(Expect, RelativeTolerance) {
  const Expect e("delay", 18.2, Tolerance::relative(0.10));
  EXPECT_TRUE(e.check(18.2).ok);
  EXPECT_TRUE(e.check(19.9).ok);
  EXPECT_FALSE(e.check(20.1).ok);
  EXPECT_FALSE(e.check(16.0).ok);
}

TEST(Expect, SigmaTolerance) {
  // Binomial-style: p=0.73 over n=1000 trials, 3 sigma.
  const double sd = std::sqrt(0.73 * 0.27 / 1000.0);
  const Expect e("p_deliver", 0.73, Tolerance::sigmas(3.0, sd));
  EXPECT_TRUE(e.check(0.73 + 2.9 * sd).ok);
  EXPECT_FALSE(e.check(0.73 + 3.1 * sd).ok);
}

TEST(Expect, NonFiniteActualFails) {
  const Expect e("x", 1.0, Tolerance::relative(0.5));
  EXPECT_FALSE(e.check(std::nan("")).ok);
  EXPECT_FALSE(e.check(INFINITY).ok);
}

TEST(OrderingExpect, RanksAscendingByDefault) {
  const OrderingExpect o("strategies", {"ship", "mixed", "now"});
  EXPECT_TRUE(o.check({{"now", 24.2}, {"ship", 18.2}, {"mixed", 20.0}}).ok);
  const auto r = o.check({{"now", 10.0}, {"ship", 18.2}, {"mixed", 20.0}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("order flipped"), std::string::npos);
  EXPECT_NE(r.message.find("expected [ship < mixed < now]"), std::string::npos);
}

TEST(OrderingExpect, DescendingMode) {
  const OrderingExpect o("ev", {"d20", "d60", "d100"});
  EXPECT_TRUE(o.check({{"d100", 0.0072}, {"d20", 0.0154}, {"d60", 0.0146}}, false).ok);
}

TEST(OrderingExpect, CheckRanked) {
  const OrderingExpect o("rank", {"a", "b"});
  EXPECT_TRUE(o.check_ranked({"a", "b"}).ok);
  EXPECT_FALSE(o.check_ranked({"b", "a"}).ok);
  EXPECT_FALSE(o.check_ranked({"a"}).ok);
}

TEST(CurveExpect, Monotone) {
  const CurveExpect up("u", {1, 2, 3, 4}, {1.0, 2.0, 2.0, 5.0});
  EXPECT_TRUE(up.monotone(CurveExpect::Direction::kIncreasing).ok);
  EXPECT_FALSE(up.monotone(CurveExpect::Direction::kDecreasing).ok);

  const CurveExpect noisy("n", {1, 2, 3}, {1.0, 0.95, 2.0});
  EXPECT_FALSE(noisy.monotone(CurveExpect::Direction::kIncreasing).ok);
  EXPECT_TRUE(noisy.monotone(CurveExpect::Direction::kIncreasing, 0.1).ok);
}

TEST(CurveExpect, ArgminWindow) {
  // Fig.1 shape: completion time minimized at d=40, window {40, 60}.
  const CurveExpect c("total", {20, 40, 60, 80, 100}, {21.0, 18.2, 18.9, 20.5, 24.0});
  EXPECT_TRUE(c.argmin_in(40.0, 60.0).ok);
  EXPECT_FALSE(c.argmin_in(60.0, 100.0).ok);
  EXPECT_TRUE(c.argmax_in(90.0, 100.0).ok);
}

TEST(CurveExpect, CrossoverInterpolates) {
  const CurveExpect a("a", {0, 10, 20}, {0.0, 10.0, 20.0});
  const CurveExpect b("b", {0, 10, 20}, {12.0, 12.0, 12.0});
  // a - b changes sign between x=10 and x=20, crossing at x=12.
  EXPECT_TRUE(a.crossover_in(b, 11.0, 13.0).ok);
  EXPECT_FALSE(a.crossover_in(b, 0.0, 11.0).ok);
  const CurveExpect c("c", {0, 10, 20}, {100.0, 100.0, 100.0});
  EXPECT_FALSE(a.crossover_in(c, 0.0, 20.0).ok);  // never cross
}

TEST(CurveExpect, MismatchedGridsFail) {
  const CurveExpect a("a", {0, 1}, {0.0, 1.0});
  const CurveExpect b("b", {0, 2}, {1.0, 0.0});
  EXPECT_FALSE(a.crossover_in(b, 0.0, 2.0).ok);
  EXPECT_FALSE(CurveExpect("e", {}, {}).argmin_in(0.0, 1.0).ok);
  EXPECT_FALSE(CurveExpect("one", {0}, {1.0}).monotone(CurveExpect::Direction::kIncreasing).ok);
}

std::vector<double> normal_draws(std::uint64_t seed, int n, double mean, double sd) {
  sim::Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(rng.gaussian(mean, sd));
  return v;
}

TEST(DistributionExpect, KsAcceptsSameDistribution) {
  const DistributionExpect d("thr", normal_draws(1, 800, 10.0, 2.0));
  const auto same = normal_draws(2, 400, 10.0, 2.0);
  EXPECT_TRUE(d.ks(same).ok);
}

TEST(DistributionExpect, KsRejectsShiftedDistribution) {
  const DistributionExpect d("thr", normal_draws(1, 800, 10.0, 2.0));
  const auto shifted = normal_draws(2, 400, 13.0, 2.0);
  EXPECT_FALSE(d.ks(shifted).ok);
}

TEST(DistributionExpect, ChiSquareAcceptsAndRejects) {
  const DistributionExpect d("thr", normal_draws(1, 2000, 10.0, 2.0));
  EXPECT_TRUE(d.chi_square(normal_draws(2, 1000, 10.0, 2.0)).ok);
  EXPECT_FALSE(d.chi_square(normal_draws(2, 1000, 14.0, 2.0)).ok);
  EXPECT_FALSE(d.chi_square(normal_draws(2, 1000, 10.0, 2.0), 1).ok);  // < 2 bins
}

TEST(DistributionExpect, EmptyInputsFail) {
  const DistributionExpect d("thr", {});
  EXPECT_FALSE(d.ks(std::vector<double>{1.0}).ok);
  const DistributionExpect e("thr", {1.0, 2.0});
  EXPECT_FALSE(e.ks(std::vector<double>{}).ok);
}

TEST(StatHelpers, NormalQuantile) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232, 1e-5);
  EXPECT_TRUE(std::isnan(normal_quantile(0.0)));
  EXPECT_TRUE(std::isnan(normal_quantile(1.0)));
}

TEST(StatHelpers, ChiSquareCritical) {
  // Reference values: chi2inv(0.95, k).
  EXPECT_NEAR(chi_square_critical(0.05, 7), 14.067, 0.15);
  EXPECT_NEAR(chi_square_critical(0.01, 10), 23.209, 0.25);
  EXPECT_TRUE(std::isnan(chi_square_critical(0.05, 0)));
}

TEST(StatHelpers, KsCritical) {
  // c(0.05) = 1.358 -> D_crit for n=m=100 is 1.358*sqrt(2/100).
  EXPECT_NEAR(ks_critical(0.05, 100, 100), 1.358 * std::sqrt(0.02), 1e-3);
  EXPECT_TRUE(std::isnan(ks_critical(0.05, 0, 10)));
}

}  // namespace
}  // namespace skyferry::check
