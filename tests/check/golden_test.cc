#include "check/golden.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/json.h"

namespace skyferry::check {
namespace {

GoldenFile sample_golden() {
  GoldenFile g("fig1_strategy_curves");
  g.set_replay("fig1_strategy_curves --seed 42", {{"seed", "42"}});
  g.add_metric("total_d40_s", 18.2, Tolerance::relative(0.10), "paper Fig.1");
  g.add_metric("now_slowest", 1.0, Tolerance::exact());
  g.add_ordering("hover_totals", {"ship", "mixed", "now"}, "ascending total");
  g.add_samples("mbps_d60", {8.0, 9.0, 10.0, 11.0}, 1e-3);
  return g;
}

TEST(GoldenFile, JsonRoundTrip) {
  const GoldenFile g = sample_golden();
  GoldenFile back;
  std::string error;
  ASSERT_TRUE(GoldenFile::from_json(g.to_json(), &back, &error)) << error;
  EXPECT_EQ(back.schema(), GoldenFile::kSchemaVersion);
  EXPECT_EQ(back.bench(), "fig1_strategy_curves");
  EXPECT_EQ(back.replay_command(), "fig1_strategy_curves --seed 42");
  ASSERT_EQ(back.replay_flags().size(), 1u);
  EXPECT_EQ(back.replay_flags()[0].first, "seed");

  const GoldenMetric* m = back.find_metric("total_d40_s");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 18.2);
  EXPECT_DOUBLE_EQ(m->tol.rel, 0.10);
  EXPECT_EQ(m->note, "paper Fig.1");

  const GoldenMetric* exact = back.find_metric("now_slowest");
  ASSERT_NE(exact, nullptr);
  EXPECT_TRUE(exact->tol.is_exact());

  const GoldenOrdering* o = back.find_ordering("hover_totals");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->ranked, (std::vector<std::string>{"ship", "mixed", "now"}));

  const GoldenSamples* s = back.find_samples("mbps_d60");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->values.size(), 4u);
  EXPECT_DOUBLE_EQ(s->ks_alpha, 1e-3);
}

TEST(GoldenFile, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/skyferry_golden_test.json";
  ASSERT_TRUE(sample_golden().save(path));
  GoldenFile back;
  std::string error;
  ASSERT_TRUE(GoldenFile::load(path, &back, &error)) << error;
  EXPECT_EQ(back.bench(), "fig1_strategy_curves");
  EXPECT_EQ(back.metrics().size(), 2u);
  std::remove(path.c_str());
}

TEST(GoldenFile, LoadReportsMissingFile) {
  GoldenFile g;
  std::string error;
  EXPECT_FALSE(GoldenFile::load("/nonexistent/golden.json", &g, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(GoldenFile, RejectsNewerSchema) {
  io::Json j = sample_golden().to_json();
  j.set("schema", GoldenFile::kSchemaVersion + 1);
  GoldenFile g;
  std::string error;
  EXPECT_FALSE(GoldenFile::from_json(j, &g, &error));
  EXPECT_NE(error.find("newer"), std::string::npos);
}

TEST(GoldenFile, RejectsMalformedEntries) {
  GoldenFile g;
  std::string error;
  const auto no_schema = io::Json::parse(R"({"bench":"x"})");
  ASSERT_TRUE(no_schema.has_value());
  EXPECT_FALSE(GoldenFile::from_json(*no_schema, &g, &error));

  const auto bad_metric = io::Json::parse(R"({"schema":1,"metrics":{"m":{"rel":0.1}}})");
  ASSERT_TRUE(bad_metric.has_value());
  EXPECT_FALSE(GoldenFile::from_json(*bad_metric, &g, &error));
  EXPECT_NE(error.find("'m'"), std::string::npos);

  EXPECT_FALSE(GoldenFile::from_json(io::Json(3.0), &g, &error));
}

int count_failures(const std::vector<CheckResult>& results) {
  int n = 0;
  for (const auto& r : results)
    if (!r.ok) ++n;
  return n;
}

TEST(CompareGolden, IdenticalRunPasses) {
  const GoldenFile g = sample_golden();
  const auto results = compare_golden(g, g);
  EXPECT_EQ(count_failures(results), 0) << [&] {
    std::string all;
    for (const auto& r : results)
      if (!r.ok) all += r.name + ": " + r.message + "\n";
    return all;
  }();
}

TEST(CompareGolden, UsesGoldenTolerances) {
  const GoldenFile g = sample_golden();
  GoldenFile candidate("fig1_strategy_curves");
  candidate.add_metric("total_d40_s", 19.5);  // within 10% of 18.2
  candidate.add_metric("now_slowest", 1.0);
  candidate.add_ordering("hover_totals", {"ship", "mixed", "now"});
  candidate.add_samples("mbps_d60", {8.0, 9.0, 10.0, 11.0});
  EXPECT_EQ(count_failures(compare_golden(g, candidate)), 0);

  GoldenFile out_of_tol("fig1_strategy_curves");
  out_of_tol.add_metric("total_d40_s", 25.0);  // > 10% off
  out_of_tol.add_metric("now_slowest", 0.0);   // exact claim flipped
  out_of_tol.add_ordering("hover_totals", {"now", "mixed", "ship"});
  out_of_tol.add_samples("mbps_d60", {8.0, 9.0, 10.0, 11.0});
  EXPECT_EQ(count_failures(compare_golden(g, out_of_tol)), 3);
}

TEST(CompareGolden, MissingAndStaleEntriesFail) {
  const GoldenFile g = sample_golden();
  GoldenFile candidate("fig1_strategy_curves");
  candidate.add_metric("total_d40_s", 18.2);
  candidate.add_metric("brand_new_metric", 1.0);  // not pinned in golden
  const auto results = compare_golden(g, candidate);
  // Missing: now_slowest, hover_totals, mbps_d60. Stale: brand_new_metric.
  EXPECT_EQ(count_failures(results), 4);
  bool saw_stale = false;
  for (const auto& r : results)
    if (r.name == "brand_new_metric") {
      saw_stale = true;
      EXPECT_NE(r.message.find("--update"), std::string::npos);
    }
  EXPECT_TRUE(saw_stale);
}

TEST(CompareGolden, BenchMismatchFails) {
  const GoldenFile g = sample_golden();
  GoldenFile other("fig2_failure_tradeoff");
  const auto results = compare_golden(g, other);
  bool saw_bench = false;
  for (const auto& r : results)
    if (r.name == "bench" && !r.ok) saw_bench = true;
  EXPECT_TRUE(saw_bench);
}

}  // namespace
}  // namespace skyferry::check
