// bench::Report — the shared --json plumbing every figure/table bench
// uses: flag registration on the Cli, no-op without --json, golden
// emission with the replay header embedded when --json is passed.
#include "bench_util.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/golden.h"
#include "exp/cli.h"

namespace skyferry {
namespace {

class Args {
 public:
  explicit Args(std::vector<std::string> args) : store_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("bench"));
    for (auto& s : store_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> store_;
  std::vector<char*> ptrs_;
};

TEST(BenchReport, NoJsonFlagMeansNoOutput) {
  exp::Cli cli("some_bench");
  bench::Report report(cli);
  Args a({});
  cli.parse(a.argc(), a.argv());
  EXPECT_FALSE(report.requested());
  EXPECT_TRUE(report.emit());  // no-op succeeds
}

TEST(BenchReport, JsonFlagParsesBothArgvForms) {
  {
    exp::Cli cli("some_bench");
    bench::Report report(cli);
    Args a({"--json", "/tmp/x.json"});
    cli.parse(a.argc(), a.argv());
    EXPECT_TRUE(report.requested());
  }
  {
    exp::Cli cli("some_bench");
    bench::Report report(cli);
    Args a({"--json=/tmp/x.json"});
    cli.parse(a.argc(), a.argv());
    EXPECT_TRUE(report.requested());
  }
}

TEST(BenchReport, EmitWritesGoldenWithReplayHeader) {
  const std::string path = ::testing::TempDir() + "report_test_golden.json";
  std::uint64_t seed = 5;
  exp::Cli cli("some_bench");
  cli.flag("--seed", &seed, "master seed");
  bench::Report report(cli);
  Args a({"--seed", "99", "--json", path});
  cli.parse(a.argc(), a.argv());

  report.metric("answer", 42.0, check::Tolerance::relative(0.1), "a note");
  report.claim("sky_is_up", true);
  report.ordering("ranked", {"a", "b"});
  report.samples("draws", {1.0, 2.0, 3.0});
  ASSERT_TRUE(report.emit());

  check::GoldenFile g;
  std::string error;
  ASSERT_TRUE(check::GoldenFile::load(path, &g, &error)) << error;
  std::remove(path.c_str());
  EXPECT_EQ(g.bench(), "some_bench");
  // The replay header must carry the parsed seed so the golden records
  // exactly what produced it.
  EXPECT_NE(g.replay_command().find("--seed 99"), std::string::npos) << g.replay_command();
  ASSERT_NE(g.find_metric("answer"), nullptr);
  EXPECT_DOUBLE_EQ(g.find_metric("answer")->value, 42.0);
  // Boolean claims are exact-tolerance 0/1 metrics.
  ASSERT_NE(g.find_metric("sky_is_up"), nullptr);
  EXPECT_TRUE(g.find_metric("sky_is_up")->tol.is_exact());
  EXPECT_NE(g.find_ordering("ranked"), nullptr);
  EXPECT_NE(g.find_samples("draws"), nullptr);
}

}  // namespace
}  // namespace skyferry
