#include "core/delay.h"

#include <gtest/gtest.h>

namespace skyferry::core {
namespace {

TEST(CommDelay, ShippingTime) {
  const auto m = PaperLogThroughput::quadrocopter();
  CommDelayModel delay(m, {100.0, 4.5, 56.2e6, 20.0});
  EXPECT_NEAR(delay.tship_s(60.0), 40.0 / 4.5, 1e-12);
  EXPECT_DOUBLE_EQ(delay.tship_s(100.0), 0.0);
  // d beyond d0 never happens (paper footnote 2) but must be harmless.
  EXPECT_DOUBLE_EQ(delay.tship_s(150.0), 0.0);
}

TEST(CommDelay, TransmissionTime) {
  const auto m = PaperLogThroughput::quadrocopter();
  CommDelayModel delay(m, {100.0, 4.5, 56.2e6, 20.0});
  // Ttx = Mdata / s(d).
  EXPECT_NEAR(delay.ttx_s(60.0), 56.2e6 * 8.0 / m.throughput_bps(60.0), 1e-9);
  // Below the floor, throughput saturates at s(20 m).
  EXPECT_DOUBLE_EQ(delay.ttx_s(5.0), delay.ttx_s(20.0));
}

TEST(CommDelay, InfiniteWhenOutOfRange) {
  const auto m = PaperLogThroughput::quadrocopter();  // range ~124 m
  CommDelayModel delay(m, {200.0, 4.5, 10e6, 20.0});
  EXPECT_EQ(delay.ttx_s(200.0), CommDelayModel::kInfiniteDelay);
  EXPECT_EQ(delay.cdelay_s(200.0), CommDelayModel::kInfiniteDelay);
  // Moving into range fixes it.
  EXPECT_LT(delay.cdelay_s(60.0), CommDelayModel::kInfiniteDelay);
}

TEST(CommDelay, TradeoffShape) {
  // Moving closer trades shipping time against transmission time: Tship
  // grows, Ttx shrinks.
  const auto m = PaperLogThroughput::airplane();
  CommDelayModel delay(m, {300.0, 10.0, 28e6, 20.0});
  EXPECT_GT(delay.tship_s(100.0), delay.tship_s(200.0));
  EXPECT_LT(delay.ttx_s(100.0), delay.ttx_s(200.0));
}

TEST(CommDelay, AirplaneScenarioNumbers) {
  // Sanity-pin the baseline scenario: transmitting immediately at 300 m
  // moves 28 MB at 3.25 Mb/s -> ~69 s.
  const auto m = PaperLogThroughput::airplane();
  CommDelayModel delay(m, {300.0, 10.0, 28e6, 20.0});
  EXPECT_NEAR(delay.cdelay_s(300.0), 28e6 * 8.0 / 3.25e6, 1.5);
  // At 100 m: 20 s flight + 28 MB at 12.06 Mb/s ~ 38.6 s. Much better.
  EXPECT_NEAR(delay.cdelay_s(100.0), 20.0 + 224.0 / 12.06, 1.0);
  EXPECT_LT(delay.cdelay_s(100.0), delay.cdelay_s(300.0));
}

TEST(CommDelay, FasterUavShipsCheaper) {
  const auto m = PaperLogThroughput::airplane();
  CommDelayModel slow(m, {300.0, 5.0, 28e6, 20.0});
  CommDelayModel fast(m, {300.0, 20.0, 28e6, 20.0});
  EXPECT_GT(slow.cdelay_s(50.0), fast.cdelay_s(50.0));
  // Transmission time itself is speed-independent.
  EXPECT_DOUBLE_EQ(slow.ttx_s(50.0), fast.ttx_s(50.0));
}

}  // namespace
}  // namespace skyferry::core
