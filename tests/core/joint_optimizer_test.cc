#include "core/joint_optimizer.h"

#include <gtest/gtest.h>

#include "core/scenario.h"

namespace skyferry::core {
namespace {

TEST(RhoForSpeed, CruiseMatchesBatteryRange) {
  const auto quad = uav::PlatformSpec::arducopter();
  // At cruise the drain factor is 1, so rho = 1/(v*T).
  EXPECT_NEAR(rho_for_speed(quad, quad.cruise_speed_mps), 1.0 / quad.range_m(), 1e-9);
}

TEST(RhoForSpeed, CrawlingIsRiskyForQuads) {
  // Hover-ish speeds still burn battery (induced power), so the range
  // collapses and rho explodes as v -> 0.
  const auto quad = uav::PlatformSpec::arducopter();
  EXPECT_GT(rho_for_speed(quad, 0.2), 5.0 * rho_for_speed(quad, quad.cruise_speed_mps));
}

TEST(RhoForSpeed, SpeedingCostsRange) {
  const auto quad = uav::PlatformSpec::arducopter();
  // Far above cruise, the v^2 drain term beats the linear speed gain.
  EXPECT_GT(rho_for_speed(quad, 15.0), rho_for_speed(quad, 6.0));
}

TEST(JointOptimizer, BeatsOrMatchesCruiseBaseline) {
  for (const auto& scen : {Scenario::airplane(), Scenario::quadrocopter()}) {
    const auto model = scen.paper_throughput();
    const auto r = optimize_joint(model, scen.platform, scen.delivery_params());
    EXPECT_GE(r.utility, r.cruise_baseline.utility - 1e-12) << scen.name;
    EXPECT_GT(r.v_opt_mps, 0.0);
    EXPECT_LE(r.v_opt_mps, scen.platform.max_speed_mps + 1e-9);
    EXPECT_GE(r.v_opt_mps, scen.platform.min_speed_mps - 1e-9);
  }
}

TEST(JointOptimizer, FliesFasterThanCruiseForBigBatches) {
  // Large Mdata at long d0: shipping dominates, so the joint optimizer
  // picks a speed above cruise despite the battery cost.
  const auto scen = Scenario::airplane();
  const auto model = scen.paper_throughput();
  DeliveryParams p = scen.delivery_params();
  p.mdata_bytes = 45e6;
  const auto r = optimize_joint(model, scen.platform, p);
  EXPECT_GT(r.v_opt_mps, scen.platform.cruise_speed_mps);
}

TEST(JointOptimizer, RespectsStallSpeed) {
  const auto scen = Scenario::airplane();
  const auto model = scen.paper_throughput();
  DeliveryParams p = scen.delivery_params();
  p.mdata_bytes = 100e3;  // tiny batch: speed hardly matters
  const auto r = optimize_joint(model, scen.platform, p);
  EXPECT_GE(r.v_opt_mps, scen.platform.min_speed_mps - 1e-9);
}

TEST(JointOptimizer, ReportsConsistentRho) {
  const auto scen = Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const auto r = optimize_joint(model, scen.platform, scen.delivery_params());
  EXPECT_NEAR(r.rho_at_v, rho_for_speed(scen.platform, r.v_opt_mps), 1e-12);
}

TEST(JointOptimizer, UtilityMatchesManualEvaluation) {
  const auto scen = Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const auto r = optimize_joint(model, scen.platform, scen.delivery_params());
  DeliveryParams p = scen.delivery_params();
  p.speed_mps = r.v_opt_mps;
  const uav::FailureModel failure(r.rho_at_v);
  const CommDelayModel delay(model, p);
  const UtilityFunction u(delay, failure);
  EXPECT_NEAR(u(r.d_opt_m), r.utility, r.utility * 1e-6);
}

}  // namespace
}  // namespace skyferry::core
