#include "core/mission.h"

#include <gtest/gtest.h>

namespace skyferry::core {
namespace {

MissionConfig quad_mission() {
  MissionConfig cfg;
  cfg.area_width_m = 200.0;
  cfg.area_height_m = 100.0;
  cfg.uav_count = 2;
  cfg.survey_altitude_m = 10.0;
  cfg.platform = uav::PlatformSpec::arducopter();
  cfg.rho_per_m = 2.46e-4;
  cfg.rendezvous_d0_m = 100.0;
  return cfg;
}

TEST(MissionPlanner, SplitsAreaAcrossUavs) {
  const auto model = PaperLogThroughput::quadrocopter();
  MissionPlanner planner(model, quad_mission());
  const MissionPlan plan = planner.plan();
  ASSERT_EQ(plan.sectors.size(), 2u);
  // Two 100x100 sectors of ~56 MB each.
  EXPECT_NEAR(plan.total_data_mb, 2.0 * 56.5, 3.0);
}

TEST(MissionPlanner, FeasibleWithinBattery) {
  const auto model = PaperLogThroughput::quadrocopter();
  MissionPlanner planner(model, quad_mission());
  const MissionPlan plan = planner.plan();
  EXPECT_TRUE(plan.feasible);
  for (const auto& s : plan.sectors) {
    EXPECT_LE(s.total_time_s, s.battery_time_budget_s);
    EXPECT_GT(s.total_time_s, 0.0);
  }
  EXPECT_GT(plan.makespan_s, 0.0);
}

TEST(MissionPlanner, InfeasibleWhenAreaTooLarge) {
  MissionConfig cfg = quad_mission();
  cfg.area_width_m = 2000.0;
  cfg.area_height_m = 2000.0;
  const auto model = PaperLogThroughput::quadrocopter();
  MissionPlanner planner(model, cfg);
  const MissionPlan plan = planner.plan();
  EXPECT_FALSE(plan.feasible);
}

TEST(MissionPlanner, MoreRoundsDeliverEarlierButCostTravel) {
  const auto model = PaperLogThroughput::quadrocopter();
  MissionConfig one = quad_mission();
  MissionConfig four = quad_mission();
  four.delivery_rounds_per_sector = 4;
  const MissionPlan p1 = MissionPlanner(model, one).plan();
  const MissionPlan p4 = MissionPlanner(model, four).plan();
  ASSERT_EQ(p4.sectors[0].rounds.size(), 4u);
  // Splitting adds ferry round trips: total time grows.
  EXPECT_GE(p4.makespan_s, p1.makespan_s);
  // But each round risks less data: per-round delivery probability is
  // the same (same d0), while the data-at-risk per failure shrinks.
  EXPECT_NEAR(p4.sectors[0].rounds[0].batch_bytes * 4.0,
              p1.sectors[0].rounds[0].batch_bytes, 1.0);
}

TEST(MissionPlanner, DeliveryProbabilityCompounds) {
  const auto model = PaperLogThroughput::quadrocopter();
  MissionConfig cfg = quad_mission();
  cfg.delivery_rounds_per_sector = 3;
  const MissionPlan plan = MissionPlanner(model, cfg).plan();
  const auto& s = plan.sectors[0];
  double expected = 1.0;
  for (const auto& r : s.rounds) expected *= r.decision.delivery_probability;
  EXPECT_NEAR(s.mission_delivery_probability, expected, 1e-12);
  EXPECT_LT(s.mission_delivery_probability, 1.0);
}

TEST(MissionPlanner, RendezvousUsesDelayedGratification) {
  const auto model = PaperLogThroughput::quadrocopter();
  const MissionPlan plan = MissionPlanner(model, quad_mission()).plan();
  const auto& dec = plan.sectors[0].rounds[0].decision;
  // A 56 MB batch at d0=100 m must ship closer, not transmit now.
  EXPECT_EQ(dec.strategy.kind, StrategyKind::kShipThenTransmit);
  EXPECT_LT(dec.strategy.target_distance_m, 100.0);
}

TEST(MissionPlanner, AirplaneMissionScales) {
  MissionConfig cfg;
  cfg.area_width_m = 1000.0;
  cfg.area_height_m = 500.0;
  cfg.uav_count = 2;
  cfg.survey_altitude_m = 70.0;
  cfg.platform = uav::PlatformSpec::swinglet();
  cfg.rho_per_m = 1.11e-4;
  cfg.rendezvous_d0_m = 300.0;
  const auto model = PaperLogThroughput::airplane();
  const MissionPlan plan = MissionPlanner(model, cfg).plan();
  ASSERT_EQ(plan.sectors.size(), 2u);
  EXPECT_TRUE(plan.feasible);
  // Each 500x500 sector carries the paper's 28 MB batch.
  EXPECT_NEAR(plan.sectors[0].rounds[0].batch_bytes / 1e6, 28.0, 1.5);
}

}  // namespace
}  // namespace skyferry::core
