#include "core/nonstationary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/scenario.h"

namespace skyferry::core {
namespace {

struct Fixture {
  Scenario scen = Scenario::quadrocopter();
  PaperLogThroughput model = scen.paper_throughput();
  CommDelayModel delay{model, scen.delivery_params()};
};

TEST(PathSurvival, ConstantProfileMatchesClosedForm) {
  const auto rho = constant_rho(2.46e-4);
  for (double d : {20.0, 50.0, 80.0}) {
    EXPECT_NEAR(path_survival(rho, 100.0, d), std::exp(-2.46e-4 * (100.0 - d)), 1e-6) << d;
  }
}

TEST(PathSurvival, NoMovementNoRisk) {
  const auto rho = constant_rho(0.01);
  EXPECT_DOUBLE_EQ(path_survival(rho, 100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(path_survival(rho, 100.0, 150.0), 1.0);
}

TEST(PathSurvival, TwoZoneIntegratesPiecewise) {
  // rho = 1e-3 beyond 50 m, 1e-2 inside. Leg 100 -> 20 m crosses both.
  const auto rho = two_zone_rho(1e-3, 1e-2, 50.0);
  const double expected = std::exp(-(1e-3 * 50.0 + 1e-2 * 30.0));
  EXPECT_NEAR(path_survival(rho, 100.0, 20.0), expected, 1e-4);
}

TEST(PathSurvival, LinearProfileClosedForm) {
  // rho(x) = b*x: integral over [d, d0] = b(d0^2 - d^2)/2.
  const double b = 1e-6;
  const auto rho = linear_rho(0.0, b);
  const double expected = std::exp(-b * (100.0 * 100.0 - 20.0 * 20.0) / 2.0);
  EXPECT_NEAR(path_survival(rho, 100.0, 20.0), expected, 1e-5);
}

TEST(Nonstationary, ConstantProfileMatchesStationaryOptimizer) {
  Fixture f;
  const auto r = optimize_nonstationary(f.delay, constant_rho(f.scen.rho_per_m));
  const uav::FailureModel failure(f.scen.rho_per_m);
  const UtilityFunction u(f.delay, failure);
  const auto base = optimize(u);
  EXPECT_NEAR(r.d_opt_m, base.d_opt_m, 0.5);
  EXPECT_NEAR(r.utility, base.utility, base.utility * 1e-3);
}

TEST(Nonstationary, HazardousCloseZonePushesOptimumOut) {
  // The paper's flagged case: when the close approach is dangerous, the
  // stationary optimum (the 20 m floor for the quad baseline) is no
  // longer optimal — the UAV should stop at the hazard boundary.
  Fixture f;
  const auto base = optimize_nonstationary(f.delay, constant_rho(f.scen.rho_per_m));
  ASSERT_NEAR(base.d_opt_m, 20.0, 1.0);  // stationary: go all the way in

  const auto hazardous = two_zone_rho(f.scen.rho_per_m, 0.05, 40.0);
  const auto r = optimize_nonstationary(f.delay, hazardous);
  EXPECT_GT(r.d_opt_m, 38.0);
  EXPECT_LT(r.d_opt_m, 60.0);  // stops at/near the hazard boundary
}

TEST(Nonstationary, RisingRhoTowardPeerKeepsDistance) {
  Fixture f;
  // rho grows sharply toward the peer (x small -> rho large): 0.05/m at
  // the peer falling to 0.002/m at 100 m — a genuinely dangerous close
  // approach (downwash, obstacles).
  const auto rho = linear_rho(0.05, -4.8e-4);
  const auto r = optimize_nonstationary(f.delay, rho);
  const auto base = optimize_nonstationary(f.delay, constant_rho(f.scen.rho_per_m));
  EXPECT_GT(r.d_opt_m, base.d_opt_m + 20.0);
  EXPECT_LT(r.d_opt_m, 100.0);  // but still worth approaching somewhat
}

TEST(Nonstationary, UtilityZeroOutOfRange) {
  const PaperLogThroughput model = PaperLogThroughput::quadrocopter();
  const CommDelayModel delay(model, {200.0, 4.5, 10e6, 150.0});
  EXPECT_DOUBLE_EQ(nonstationary_utility(delay, constant_rho(1e-3), 200.0), 0.0);
}

}  // namespace
}  // namespace skyferry::core
