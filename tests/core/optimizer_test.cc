#include "core/optimizer.h"

#include <gtest/gtest.h>

namespace skyferry::core {
namespace {

TEST(Optimizer, QuadBaselineOptimumAtFloor) {
  // Quad baseline: 56 MB is so much data relative to the link that the
  // best plan is to fly all the way to the 20 m anti-collision floor.
  const auto model = PaperLogThroughput::quadrocopter();
  const DeliveryParams params{100.0, 4.5, 56.2e6, 20.0};
  const uav::FailureModel failure(2.46e-4);
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  EXPECT_EQ(r.boundary, Boundary::kAtFloor);
  EXPECT_NEAR(r.d_opt_m, 20.0, 0.5);
  EXPECT_GT(r.utility, 0.0);
  EXPECT_GT(r.evaluations, 0);
}

TEST(Optimizer, ModerateRiskGivesInteriorOptimum) {
  // With a clearly elevated failure rate, the airplane scenario trades
  // off to an interior transmit distance (Fig. 8's moving maxima).
  const auto model = PaperLogThroughput::airplane();
  const DeliveryParams params{300.0, 10.0, 28e6, 20.0};
  const uav::FailureModel failure(2e-3);
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  EXPECT_EQ(r.boundary, Boundary::kInterior) << r.d_opt_m;
  EXPECT_GT(r.d_opt_m, 50.0);
  EXPECT_LT(r.d_opt_m, 295.0);
}

TEST(Optimizer, MatchesBruteForce) {
  const auto model = PaperLogThroughput::airplane();
  for (double rho : {1.11e-4, 1e-3, 5e-3, 1e-2}) {
    const DeliveryParams params{300.0, 10.0, 28e6, 20.0};
    const uav::FailureModel failure(rho);
    const CommDelayModel delay(model, params);
    const UtilityFunction u(delay, failure);
    const OptimizeResult fast = optimize(u);
    const OptimizeResult slow = optimize_brute_force(u);
    EXPECT_NEAR(fast.d_opt_m, slow.d_opt_m, 0.5) << "rho=" << rho;
    EXPECT_GE(fast.utility, slow.utility - 1e-9) << "rho=" << rho;
  }
}

TEST(Optimizer, DoptIncreasesWithRho) {
  // Paper Fig. 8: "the optimal distance d_opt increases with the failure
  // rate rho" — risk pushes the UAV to transmit sooner (farther away).
  const auto model = PaperLogThroughput::airplane();
  const DeliveryParams params{300.0, 10.0, 28e6, 20.0};
  double prev = 0.0;
  for (double rho : {1.11e-4, 1e-3, 2e-3, 5e-3, 1e-2}) {
    const uav::FailureModel failure(rho);
    const CommDelayModel delay(model, params);
    const UtilityFunction u(delay, failure);
    const OptimizeResult r = optimize(u);
    EXPECT_GE(r.d_opt_m, prev - 0.5) << "rho=" << rho;
    prev = r.d_opt_m;
  }
}

TEST(Optimizer, HugeRhoTransmitsImmediately) {
  const auto model = PaperLogThroughput::airplane();
  const DeliveryParams params{300.0, 10.0, 28e6, 20.0};
  const uav::FailureModel failure(1.0);  // certain death if it moves
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  EXPECT_EQ(r.boundary, Boundary::kTransmitNow);
  EXPECT_NEAR(r.d_opt_m, 300.0, 0.5);
}

TEST(Optimizer, TinyDataTransmitsImmediately) {
  // Shipping can never pay off for a few kilobytes.
  const auto model = PaperLogThroughput::airplane();
  const DeliveryParams params{300.0, 10.0, 1e3, 20.0};
  const uav::FailureModel failure(1.11e-4);
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  EXPECT_EQ(r.boundary, Boundary::kTransmitNow);
}

TEST(Optimizer, OutOfRangeForcesApproach) {
  // d0 beyond the link range: transmit-now yields zero utility, so the
  // optimizer must move the UAV into range.
  const auto model = PaperLogThroughput::quadrocopter();  // range ~124 m
  const DeliveryParams params{200.0, 4.5, 10e6, 20.0};
  const uav::FailureModel failure(2.46e-4);
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  EXPECT_LT(r.d_opt_m, 124.0);
  EXPECT_GT(r.utility, 0.0);
}

TEST(Optimizer, DegenerateIntervalD0AtFloor) {
  const auto model = PaperLogThroughput::quadrocopter();
  const DeliveryParams params{20.0, 4.5, 10e6, 20.0};
  const uav::FailureModel failure(2.46e-4);
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  EXPECT_NEAR(r.d_opt_m, 20.0, 1e-6);
  // Both ends coincide; classified as transmit-now (the planner's old
  // flag precedence), never as two flags at once like the bool API.
  EXPECT_EQ(r.boundary, Boundary::kTransmitNow);
}

TEST(Optimizer, BoundaryToStringCoversAllStates) {
  EXPECT_STREQ(to_string(Boundary::kInterior), "interior");
  EXPECT_STREQ(to_string(Boundary::kTransmitNow), "transmit-now");
  EXPECT_STREQ(to_string(Boundary::kAtFloor), "at-floor");
}

TEST(Optimizer, BoundaryIsExactlyOneState) {
  // The Boundary enum replaced three mutually exclusive bools (the
  // deprecated interior()/transmit_now()/at_floor() shims, now removed);
  // an enum value is exactly one state by construction, so the only
  // thing left to pin is that the classifier lands on a named value.
  const auto model = PaperLogThroughput::quadrocopter();
  const DeliveryParams params{100.0, 4.5, 56.2e6, 20.0};
  const uav::FailureModel failure(2.46e-4);
  const CommDelayModel delay(model, params);
  const UtilityFunction u(delay, failure);
  const OptimizeResult r = optimize(u);
  EXPECT_TRUE(r.boundary == Boundary::kInterior || r.boundary == Boundary::kTransmitNow ||
              r.boundary == Boundary::kAtFloor);
  EXPECT_STRNE(to_string(r.boundary), "?");
}

}  // namespace
}  // namespace skyferry::core
