#include "core/planner.h"

#include <gtest/gtest.h>

namespace skyferry::core {
namespace {

TEST(Planner, QuadScenarioRecommendsShipping) {
  const Scenario s = Scenario::quadrocopter();
  const auto model = s.paper_throughput();
  const DelayedGratificationPlanner planner(model, s.failure_model());
  const Decision dec = planner.decide(s);
  EXPECT_EQ(dec.strategy.kind, StrategyKind::kShipThenTransmit);
  EXPECT_LT(dec.strategy.target_distance_m, 100.0);
  EXPECT_GT(dec.strategy.target_distance_m, 20.0 - 1e-6);
  EXPECT_GT(dec.delay_saving_fraction, 0.2);  // shipping pays off a lot
  EXPECT_GT(dec.delivery_probability, 0.95);  // baseline rho is small
  EXPECT_LT(dec.expected_delay_s, dec.transmit_now_delay_s);
}

TEST(Planner, TinyBatchTransmitsNow) {
  const Scenario s = Scenario::airplane();
  const auto model = s.paper_throughput();
  const DelayedGratificationPlanner planner(model, s.failure_model());
  DeliveryParams p = s.delivery_params();
  p.mdata_bytes = 10e3;
  const Decision dec = planner.decide(p);
  EXPECT_EQ(dec.strategy.kind, StrategyKind::kTransmitNow);
  EXPECT_DOUBLE_EQ(dec.delivery_probability, 1.0);
  EXPECT_NEAR(dec.delay_saving_fraction, 0.0, 1e-9);
}

TEST(Planner, OutOfRangePeerStillPlanned) {
  const auto model = PaperLogThroughput::quadrocopter();
  const DelayedGratificationPlanner planner(model, uav::FailureModel(2.46e-4));
  const DeliveryParams p{200.0, 4.5, 10e6, 20.0};
  const Decision dec = planner.decide(p);
  EXPECT_EQ(dec.strategy.kind, StrategyKind::kShipThenTransmit);
  EXPECT_LT(dec.strategy.target_distance_m, 124.0);
  // Against an impossible transmit-now, the plan saves "everything".
  EXPECT_DOUBLE_EQ(dec.delay_saving_fraction, 1.0);
}

TEST(Planner, RiskierWorldShortensTheDetour) {
  const Scenario s = Scenario::airplane();
  const auto model = s.paper_throughput();
  const DelayedGratificationPlanner safe(model, uav::FailureModel(1.11e-4));
  const DelayedGratificationPlanner risky(model, uav::FailureModel(5e-3));
  const Decision d_safe = safe.decide(s);
  const Decision d_risky = risky.decide(s);
  EXPECT_GT(d_risky.strategy.target_distance_m, d_safe.strategy.target_distance_m);
}

TEST(Planner, DecisionInternallyConsistent) {
  const Scenario s = Scenario::quadrocopter();
  const auto model = s.paper_throughput();
  const DelayedGratificationPlanner planner(model, s.failure_model());
  const Decision dec = planner.decide(s);
  EXPECT_DOUBLE_EQ(dec.strategy.target_distance_m, dec.opt.d_opt_m);
  EXPECT_DOUBLE_EQ(dec.delivery_probability, dec.opt.discount);
  EXPECT_DOUBLE_EQ(dec.expected_delay_s, dec.opt.cdelay_s);
}

}  // namespace
}  // namespace skyferry::core
