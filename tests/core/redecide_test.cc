#include "core/redecide.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/scenario.h"

namespace skyferry::core {
namespace {

const PaperLogThroughput kNominal = PaperLogThroughput::quadrocopter();

ctrl::ChannelEstimate nominal_estimate() {
  ctrl::ChannelEstimate e;
  e.a = kNominal.a();
  e.b = kNominal.b();
  e.gain = 1.0;
  e.r_squared = 0.99;
  e.samples = 32;
  e.confidence = 0.8;
  return e;
}

ReDecisionInput base_input(const core::Scenario& scen) {
  ReDecisionInput in;
  in.current_d_m = scen.d0_m;
  in.target_d_m = 58.0;  // roughly the quadrocopter d*
  in.min_distance_m = scen.min_distance_m;
  in.speed_mps = scen.speed_mps;
  in.mdata_bytes = scen.mdata_bytes;
  in.nominal_rho = scen.rho_per_m;
  return in;
}

TEST(ReDecision, NoTriggerNeverRunsTheOptimizer) {
  // The zero-mismatch bit-identity invariant: without a tripped
  // divergence the policy holds the static plan, always.
  ReDecisionPolicy policy({}, kNominal);
  auto in = base_input(core::Scenario::quadrocopter());
  in.channel = nominal_estimate();
  for (int i = 0; i < 50; ++i) {
    const auto rd = policy.consider(in);
    EXPECT_FALSE(rd.redecided);
    EXPECT_STREQ(rd.reason, "no-trigger");
    EXPECT_EQ(rd.target_d_m, in.target_d_m);
  }
  EXPECT_EQ(policy.redecisions(), 0);
}

TEST(ReDecision, CommitPointGuardHoldsNearTheTarget) {
  ReDecisionConfig cfg;
  cfg.commit_margin_m = 10.0;
  ReDecisionPolicy policy(cfg, kNominal);
  auto in = base_input(core::Scenario::quadrocopter());
  in.current_d_m = in.target_d_m + 8.0;  // inside the commit margin
  in.divergence = 100.0;                 // even with a screaming trigger
  in.channel = nominal_estimate();
  const auto rd = policy.consider(in);
  EXPECT_FALSE(rd.redecided);
  EXPECT_STREQ(rd.reason, "committed");
}

TEST(ReDecision, LowConfidenceChannelTripHolds) {
  ReDecisionPolicy policy({}, kNominal);
  auto in = base_input(core::Scenario::quadrocopter());
  in.divergence = 100.0;
  in.channel = std::nullopt;  // tagged no-estimate
  EXPECT_STREQ(policy.consider(in).reason, "low-confidence");
  auto weak = nominal_estimate();
  weak.confidence = 0.05;
  in.channel = weak;
  EXPECT_STREQ(policy.consider(in).reason, "low-confidence");
  EXPECT_EQ(policy.redecisions(), 0);
}

TEST(ReDecision, RhoTripWithoutEstimateHolds) {
  ReDecisionPolicy policy({}, kNominal);
  auto in = base_input(core::Scenario::quadrocopter());
  in.rho_rel_error = 0.5;
  in.rho_hat = std::nullopt;  // hazard estimator below min_samples
  EXPECT_STREQ(policy.consider(in).reason, "no-rho-estimate");
}

TEST(ReDecision, NominalReEstimateFailsTheImprovementGate) {
  // Divergence tripped but the re-estimate equals the nominal model: the
  // re-optimized target matches the current plan, so the gate holds it.
  ReDecisionPolicy policy({}, kNominal);
  const auto scen = core::Scenario::quadrocopter();
  const DelayedGratificationPlanner planner(kNominal, scen.failure_model());
  auto in = base_input(scen);
  in.target_d_m = planner.decide(scen.delivery_params()).strategy.target_distance_m;
  in.divergence = 100.0;
  in.channel = nominal_estimate();
  const auto rd = policy.consider(in);
  EXPECT_FALSE(rd.redecided);
  EXPECT_STREQ(rd.reason, "below-improvement-gate");
  EXPECT_NEAR(rd.predicted_gain_rel, 0.0, 0.02);
}

TEST(ReDecision, ThroughputCollapseMovesTheTargetCloser) {
  ReDecisionPolicy policy({}, kNominal);
  const auto scen = core::Scenario::quadrocopter();
  auto in = base_input(scen);
  in.divergence = 100.0;
  auto est = nominal_estimate();
  est.a = kNominal.a() * 0.5;  // world delivers half the rate everywhere
  est.b = kNominal.b() * 0.5;
  est.gain = 0.5;
  in.channel = est;
  const auto rd = policy.consider(in);
  ASSERT_TRUE(rd.redecided);
  EXPECT_STREQ(rd.reason, "channel-divergence");
  EXPECT_LT(rd.target_d_m, in.target_d_m);  // slower link: move closer
  EXPECT_GT(rd.predicted_gain_rel, policy.config().min_improvement_rel);
  EXPECT_EQ(policy.redecisions(), 1);
}

TEST(ReDecision, CooldownBlocksBackToBackRedecisions) {
  ReDecisionConfig cfg;
  cfg.cooldown_m = 5.0;
  ReDecisionPolicy policy(cfg, kNominal);
  const auto scen = core::Scenario::quadrocopter();
  auto in = base_input(scen);
  in.divergence = 100.0;
  auto est = nominal_estimate();
  est.a = kNominal.a() * 0.5;
  est.b = kNominal.b() * 0.5;
  in.channel = est;
  ASSERT_TRUE(policy.consider(in).redecided);
  in.current_d_m -= 2.0;  // only 2 m of progress since
  in.target_d_m = 40.0;
  EXPECT_STREQ(policy.consider(in).reason, "cooldown");
}

TEST(ReDecision, MaxRedecisionsCapsTheLadder) {
  ReDecisionConfig cfg;
  cfg.max_redecisions = 0;
  ReDecisionPolicy policy(cfg, kNominal);
  auto in = base_input(core::Scenario::quadrocopter());
  in.divergence = 100.0;
  in.channel = nominal_estimate();
  EXPECT_STREQ(policy.consider(in).reason, "max-redecisions");
}

TEST(ReDecision, RhoDivergenceRedecidesWithNominalChannel) {
  // Stress rho so the failure term actually shapes the optimum, and trim
  // the batch so the static d* is interior. The trip arrives mid-flight,
  // a third of the way down the approach.
  auto scen = core::Scenario::quadrocopter();
  scen.rho_per_m = 2.0e-3;
  scen.d0_m = 400.0;
  scen.mdata_bytes = 10.0e6;
  auto in = base_input(scen);
  const DelayedGratificationPlanner planner(kNominal, scen.failure_model());
  in.target_d_m = planner.decide(scen.delivery_params()).strategy.target_distance_m;
  in.current_d_m = 270.0;
  in.elapsed_s = (scen.d0_m - in.current_d_m) / scen.speed_mps;
  in.rho_rel_error = 2.0;

  // Flying 3x deadlier than assumed: the approach-only intuition says
  // back off and transmit from further out, but on the realized mission
  // metric the extra loiter exposure of a farther, slower transfer
  // cancels the approach exposure saved — E[U] barely moves, and the
  // honest policy *holds* rather than chase noise.
  ReDecisionPolicy deadly({}, kNominal);
  in.rho_hat = 3.0 * scen.rho_per_m;
  const auto hold = deadly.consider(in);
  EXPECT_FALSE(hold.redecided);
  EXPECT_STREQ(hold.reason, "below-improvement-gate");

  // Flying 2x *safer* than assumed: approach exposure is cheap, so
  // pressing closer buys a faster transfer and an earlier completion —
  // that is a real, predicted-and-realized gain, and the policy takes it.
  ReDecisionPolicy safe({}, kNominal);
  in.rho_hat = 0.5 * scen.rho_per_m;
  const auto rd = safe.consider(in);
  ASSERT_TRUE(rd.redecided);
  EXPECT_STREQ(rd.reason, "rho-divergence");
  EXPECT_LT(rd.target_d_m, in.target_d_m);
}

TEST(ReDecision, ZeroMismatchRedecideNowIsBitIdenticalToStaticPlanner) {
  // redecide_now on nominal inputs at full grid resolution reproduces
  // the static decision exactly — same optimizer, same models.
  const auto scen = core::Scenario::quadrocopter();
  ReDecisionConfig cfg;
  cfg.optimize = OptimizeOptions{};  // the planner's default grid
  // The expected-realized-utility objective is the one deliberate
  // departure from the paper's static objective; switch it off to
  // compare like with like.
  cfg.mission_objective = false;
  ReDecisionPolicy policy(cfg, kNominal);
  auto in = base_input(scen);
  in.current_d_m = scen.d0_m;
  const auto rd = policy.redecide_now(in);
  const DelayedGratificationPlanner planner(kNominal, scen.failure_model());
  const auto decision = planner.decide(scen.delivery_params());
  EXPECT_EQ(rd.d_opt_m, decision.strategy.target_distance_m);
  EXPECT_EQ(rd.utility, decision.opt.utility);
}

TEST(ReDecision, ReestimatedModelSanityLadder) {
  // Trustworthy, physically sane fit: used directly.
  auto est = nominal_estimate();
  est.a = -8.0;
  est.b = 60.0;
  const auto fit = reestimated_model(kNominal, est, 0.25);
  EXPECT_EQ(fit.name(), "re-estimated-fit");
  EXPECT_DOUBLE_EQ(fit.a(), -8.0);
  // Insane fit (throughput rising with distance): gain-scaled nominal.
  est.a = +3.0;
  est.gain = 0.7;
  const auto gain = reestimated_model(kNominal, est, 0.25);
  EXPECT_EQ(gain.name(), "re-estimated-gain");
  EXPECT_DOUBLE_EQ(gain.a(), kNominal.a() * 0.7);
  EXPECT_DOUBLE_EQ(gain.b(), kNominal.b() * 0.7);
  // Non-finite gain degrades to the plain nominal shape.
  est.gain = std::numeric_limits<double>::quiet_NaN();
  const auto safe = reestimated_model(kNominal, est, 0.25);
  EXPECT_DOUBLE_EQ(safe.a(), kNominal.a());
}

}  // namespace
}  // namespace skyferry::core
