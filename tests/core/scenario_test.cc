#include "core/scenario.h"

#include <gtest/gtest.h>

#include "ctrl/sector.h"

namespace skyferry::core {
namespace {

TEST(Scenario, AirplaneBaselineMatchesPaper) {
  const Scenario s = Scenario::airplane();
  EXPECT_DOUBLE_EQ(s.mdata_bytes, 28e6);
  EXPECT_DOUBLE_EQ(s.speed_mps, 10.0);
  EXPECT_DOUBLE_EQ(s.rho_per_m, 1.11e-4);
  EXPECT_DOUBLE_EQ(s.d0_m, 300.0);
  EXPECT_DOUBLE_EQ(s.sector_width_m, 500.0);
  EXPECT_DOUBLE_EQ(s.min_distance_m, 20.0);
  EXPECT_EQ(s.platform.kind, uav::PlatformKind::kAirplane);
}

TEST(Scenario, QuadBaselineMatchesPaper) {
  const Scenario s = Scenario::quadrocopter();
  EXPECT_DOUBLE_EQ(s.mdata_bytes, 56.2e6);
  EXPECT_DOUBLE_EQ(s.speed_mps, 4.5);
  EXPECT_DOUBLE_EQ(s.rho_per_m, 2.46e-4);
  EXPECT_DOUBLE_EQ(s.d0_m, 100.0);
  EXPECT_DOUBLE_EQ(s.sector_width_m, 100.0);
}

TEST(Scenario, DeliveryParamsRoundTrip) {
  const Scenario s = Scenario::airplane();
  const DeliveryParams p = s.delivery_params();
  EXPECT_DOUBLE_EQ(p.d0_m, 300.0);
  EXPECT_DOUBLE_EQ(p.speed_mps, 10.0);
  EXPECT_DOUBLE_EQ(p.mdata_bytes, 28e6);
}

TEST(Scenario, PaperThroughputPicksPlatformFit) {
  EXPECT_EQ(Scenario::airplane().paper_throughput().name(), "paper-airplane");
  EXPECT_EQ(Scenario::quadrocopter().paper_throughput().name(), "paper-quadrocopter");
}

TEST(Scenario, MdataConsistentWithImagingModel) {
  // The scenario constants must match what the imaging substrate derives
  // from camera, sector and altitude (paper footnotes 3-4).
  for (const Scenario& s : {Scenario::airplane(), Scenario::quadrocopter()}) {
    const auto plan = ctrl::plan_sector_imaging(
        s.camera, s.sector_width_m * s.sector_height_m, s.survey_altitude_m);
    EXPECT_NEAR(plan.batch.total_bytes(), s.mdata_bytes, s.mdata_bytes * 0.05) << s.name;
  }
}

TEST(Scenario, RhoRelatesToBatteryRange) {
  // The paper says rho is "the inverse of the distance the UAV could
  // travel before battery depletion". The quoted values are ~2x the
  // Table-1-derived 1/range (documented discrepancy, DESIGN.md §1) —
  // assert the order of magnitude holds.
  for (const Scenario& s : {Scenario::airplane(), Scenario::quadrocopter()}) {
    const double battery_rho = 1.0 / s.platform.range_m();
    EXPECT_GT(s.rho_per_m, battery_rho * 0.5) << s.name;
    EXPECT_LT(s.rho_per_m, battery_rho * 4.0) << s.name;
  }
}

TEST(Scenario, FailureModelUsesScenarioRho) {
  const Scenario s = Scenario::quadrocopter();
  EXPECT_DOUBLE_EQ(s.failure_model().rho(), 2.46e-4);
}

}  // namespace
}  // namespace skyferry::core
