#include "core/sensitivity.h"

#include <gtest/gtest.h>

#include "core/scenario.h"

namespace skyferry::core {
namespace {

TEST(Sensitivity, SignsMatchFigure9) {
  // Use an interior-optimum setting so derivatives are informative.
  const auto scen = Scenario::airplane();
  const auto model = scen.paper_throughput();
  DeliveryParams p = scen.delivery_params();
  p.mdata_bytes = 10e6;
  p.speed_mps = 10.0;
  const Sensitivity s = analyze_sensitivity(model, p, 1e-3);
  // More data -> move closer (d_opt down); more risk -> stay farther.
  EXPECT_LT(s.d_opt_wrt_mdata, 0.0);
  EXPECT_GT(s.d_opt_wrt_rho, 0.0);
  // More data -> lower utility; more risk -> lower utility.
  EXPECT_LT(s.utility_wrt_mdata, 0.0);
  EXPECT_LT(s.utility_wrt_rho, 0.0);
  // Faster UAV -> higher utility.
  EXPECT_GT(s.utility_wrt_speed, 0.0);
}

TEST(Sensitivity, DegenerateUtilityIsZeroed) {
  // Out-of-range everywhere: utility 0, sensitivities must not blow up.
  const auto model = PaperLogThroughput::quadrocopter();
  const DeliveryParams p{2000.0, 4.5, 10e6, 1500.0};
  const Sensitivity s = analyze_sensitivity(model, p, 2.46e-4);
  EXPECT_DOUBLE_EQ(s.d_opt_wrt_mdata, 0.0);
  EXPECT_DOUBLE_EQ(s.utility_wrt_rho, 0.0);
}

TEST(Pareto, FrontierShapes) {
  const auto scen = Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const auto pts = pareto_frontier(model, scen.delivery_params(), scen.rho_per_m, 80);
  ASSERT_EQ(pts.size(), 80u);
  // Delivery probability rises monotonically with d (less flying).
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].delivery_probability, pts[i - 1].delivery_probability - 1e-12);
  }
  // Endpoints: transmitting at d0 is perfectly safe.
  EXPECT_NEAR(pts.back().delivery_probability, 1.0, 1e-12);
}

TEST(Pareto, NonDominatedSetIsNonEmptyAndConsistent) {
  const auto scen = Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const auto pts = pareto_frontier(model, scen.delivery_params(), scen.rho_per_m, 60);
  int non_dominated = 0;
  double min_delay = 1e300;
  for (const auto& p : pts) {
    if (!p.dominated) ++non_dominated;
    min_delay = std::min(min_delay, p.cdelay_s);
  }
  EXPECT_GT(non_dominated, 1);
  // The minimum-delay point can never be dominated.
  for (const auto& p : pts) {
    if (p.cdelay_s == min_delay) EXPECT_FALSE(p.dominated);
  }
  // The d = d0 point (max probability) can never be dominated either.
  EXPECT_FALSE(pts.back().dominated);
}

TEST(Pareto, UtilityOptimumIsOnTheFrontier) {
  const auto scen = Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  const CommDelayModel delay(model, scen.delivery_params());
  const UtilityFunction u(delay, failure);
  const auto opt = optimize(u);

  const auto pts = pareto_frontier(model, scen.delivery_params(), scen.rho_per_m, 400);
  // Find the frontier point nearest the optimum distance.
  const ParetoPoint* nearest = &pts.front();
  for (const auto& p : pts) {
    if (std::abs(p.d_m - opt.d_opt_m) < std::abs(nearest->d_m - opt.d_opt_m)) nearest = &p;
  }
  EXPECT_FALSE(nearest->dominated);
}

TEST(Pareto, ZeroRiskCollapsesToDelayOnly) {
  // With rho = 0 every point has probability 1, so only the min-delay
  // point(s) are non-dominated.
  const auto scen = Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const auto pts = pareto_frontier(model, scen.delivery_params(), 0.0, 50);
  double min_delay = 1e300;
  for (const auto& p : pts) min_delay = std::min(min_delay, p.cdelay_s);
  for (const auto& p : pts) {
    if (!p.dominated) EXPECT_NEAR(p.cdelay_s, min_delay, 1e-9);
  }
}

}  // namespace
}  // namespace skyferry::core
