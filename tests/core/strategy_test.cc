#include "core/strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace skyferry::core {
namespace {

// Figure-1 setting: quadrocopter link, ferry starts 80 m out with 20 MB.
struct Fig1 {
  PaperLogThroughput model = PaperLogThroughput::quadrocopter();
  SpeedDegradation deg{};  // Fig-7-calibrated default
  DeliveryParams params{80.0, 4.5, 20e6, 20.0};
};

TEST(Strategy, Labels) {
  EXPECT_EQ(to_string(StrategyKind::kTransmitNow), "transmit-now");
  StrategySpec s;
  s.kind = StrategyKind::kShipThenTransmit;
  s.target_distance_m = 60.0;
  EXPECT_EQ(s.label(), "d=60");
  s.kind = StrategyKind::kMoveAndTransmit;
  EXPECT_EQ(s.label(), "moving");
}

TEST(Strategy, TransmitNowMatchesAnalyticDelay) {
  Fig1 f;
  StrategySpec spec;
  spec.kind = StrategyKind::kTransmitNow;
  const auto out = simulate_strategy(spec, f.model, f.deg, f.params);
  ASSERT_TRUE(out.completed);
  const CommDelayModel delay(f.model, f.params);
  EXPECT_NEAR(out.completion_time_s, delay.cdelay_s(80.0), 0.2);
  EXPECT_DOUBLE_EQ(out.ship_time_s, 0.0);
  EXPECT_DOUBLE_EQ(out.final_distance_m, 80.0);
}

TEST(Strategy, ShipThenTransmitMatchesAnalyticDelay) {
  Fig1 f;
  StrategySpec spec;
  spec.kind = StrategyKind::kShipThenTransmit;
  spec.target_distance_m = 60.0;
  const auto out = simulate_strategy(spec, f.model, f.deg, f.params);
  ASSERT_TRUE(out.completed);
  const CommDelayModel delay(f.model, f.params);
  EXPECT_NEAR(out.completion_time_s, delay.cdelay_s(60.0), 0.2);
  EXPECT_NEAR(out.ship_time_s, 20.0 / 4.5, 0.1);
  EXPECT_NEAR(out.final_distance_m, 60.0, 0.01);
}

TEST(Strategy, Figure1Ordering) {
  // The paper's headline example: for 20 MB starting at 80 m, waiting to
  // transmit at d=60 m beats transmitting immediately at d=80 m, and
  // 'move and transmit' is outperformed by hover strategies.
  Fig1 f;
  const auto outcomes = compare_strategies({20.0, 40.0, 60.0, 80.0}, f.model, f.deg, f.params);
  ASSERT_EQ(outcomes.size(), 5u);  // 4 distances + moving
  auto time_of = [&](std::size_t i) { return outcomes[i].completion_time_s; };
  const double t20 = time_of(0), t40 = time_of(1), t60 = time_of(2), t80 = time_of(3);
  const double t_moving = time_of(4);
  EXPECT_LT(t60, t80);  // delayed gratification wins
  EXPECT_LT(t40, t80);
  // 'moving' loses to the best hover strategy.
  const double best_hover = std::min({t20, t40, t60, t80});
  EXPECT_GT(t_moving, best_hover);
}

TEST(Strategy, CrossoverFormulaMatchesSimulation) {
  Fig1 f;
  const double m_star = crossover_mdata_bytes(f.model, 80.0, 60.0, 4.5);
  ASSERT_TRUE(std::isfinite(m_star));
  // Paper reports ~15 MB for its measured rates; the fitted medians give
  // the same order of magnitude.
  EXPECT_GT(m_star, 4e6);
  EXPECT_LT(m_star, 20e6);

  // Below the crossover transmit-now wins; above, ship-then-transmit.
  auto race = [&](double mdata) {
    DeliveryParams p = f.params;
    p.mdata_bytes = mdata;
    StrategySpec now;
    now.kind = StrategyKind::kTransmitNow;
    StrategySpec ship;
    ship.kind = StrategyKind::kShipThenTransmit;
    ship.target_distance_m = 60.0;
    const double t_now = simulate_strategy(now, f.model, f.deg, p).completion_time_s;
    const double t_ship = simulate_strategy(ship, f.model, f.deg, p).completion_time_s;
    return t_ship - t_now;  // negative: shipping wins
  };
  EXPECT_GT(race(m_star * 0.5), 0.0);
  EXPECT_LT(race(m_star * 2.0), 0.0);
}

TEST(Strategy, CrossoverInfiniteWhenNoGain) {
  Fig1 f;
  // "Shipping" to the same distance can't improve throughput.
  EXPECT_EQ(crossover_mdata_bytes(f.model, 80.0, 80.0, 4.5),
            std::numeric_limits<double>::infinity());
}

TEST(Strategy, CurvesAreMonotone) {
  Fig1 f;
  for (auto kind : {StrategyKind::kTransmitNow, StrategyKind::kShipThenTransmit,
                    StrategyKind::kMoveAndTransmit, StrategyKind::kMixed}) {
    StrategySpec spec;
    spec.kind = kind;
    spec.target_distance_m = 50.0;
    const auto out = simulate_strategy(spec, f.model, f.deg, f.params);
    for (std::size_t i = 1; i < out.curve.size(); ++i) {
      EXPECT_GE(out.curve[i].delivered_mb, out.curve[i - 1].delivered_mb - 1e-9);
      EXPECT_GE(out.curve[i].t_s, out.curve[i - 1].t_s);
    }
    EXPECT_TRUE(out.completed) << to_string(kind);
    EXPECT_NEAR(out.curve.back().delivered_mb, 20.0, 0.01) << to_string(kind);
  }
}

TEST(Strategy, ShipPhaseDeliversNothing) {
  Fig1 f;
  StrategySpec spec;
  spec.kind = StrategyKind::kShipThenTransmit;
  spec.target_distance_m = 40.0;
  const auto out = simulate_strategy(spec, f.model, f.deg, f.params);
  const double tship = 40.0 / 4.5;
  for (const auto& pt : out.curve) {
    if (pt.t_s < tship - 0.1) EXPECT_DOUBLE_EQ(pt.delivered_mb, 0.0);
  }
}

TEST(Strategy, MixedBeatsPureShipForSmallData) {
  // Transmitting during the approach can only help when the while-moving
  // rate is nonzero.
  Fig1 f;
  DeliveryParams p = f.params;
  p.mdata_bytes = 5e6;
  StrategySpec ship;
  ship.kind = StrategyKind::kShipThenTransmit;
  ship.target_distance_m = 40.0;
  StrategySpec mixed;
  mixed.kind = StrategyKind::kMixed;
  mixed.target_distance_m = 40.0;
  const double t_ship = simulate_strategy(ship, f.model, f.deg, p).completion_time_s;
  const double t_mixed = simulate_strategy(mixed, f.model, f.deg, p).completion_time_s;
  EXPECT_LE(t_mixed, t_ship + 1e-9);
}

TEST(Strategy, AbortsWhenOutOfRangeForever) {
  const PaperLogThroughput quad = PaperLogThroughput::quadrocopter();
  SpeedDegradation deg{5.0};
  const DeliveryParams p{200.0, 4.5, 10e6, 20.0};
  StrategySpec now;
  now.kind = StrategyKind::kTransmitNow;  // parked at 200 m: s=0
  const auto out = simulate_strategy(now, quad, deg, p);
  EXPECT_FALSE(out.completed);
}

TEST(Strategy, MaxTimeAborts) {
  Fig1 f;
  StrategySpec now;
  now.kind = StrategyKind::kTransmitNow;
  const auto out = simulate_strategy(now, f.model, f.deg, f.params, 0.05, 1.0);
  EXPECT_FALSE(out.completed);
  EXPECT_NEAR(out.completion_time_s, 1.0, 0.1);
}

}  // namespace
}  // namespace skyferry::core
