#include "core/throughput_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/scenario.h"

namespace skyferry::core {
namespace {

class ThroughputIoTest : public ::testing::Test {
 protected:
  void write_file(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/skyferry_throughput.csv";
};

TEST_F(ThroughputIoTest, LoadsAndInterpolates) {
  write_file("d_m,median\n20,25\n40,19.4\n80,13.8\n");
  const auto model = load_throughput_csv(path_);
  ASSERT_TRUE(model.has_value());
  EXPECT_DOUBLE_EQ(model->throughput_bps(20.0), 25e6);
  EXPECT_NEAR(model->throughput_bps(30.0), 22.2e6, 1.0);
  EXPECT_EQ(model->name(), "measured");
}

TEST_F(ThroughputIoTest, AveragesDuplicateDistances) {
  write_file("d_m,median\n20,20\n20,30\n40,10\n");
  const auto model = load_throughput_csv(path_);
  ASSERT_TRUE(model.has_value());
  EXPECT_DOUBLE_EQ(model->throughput_bps(20.0), 25e6);
}

TEST_F(ThroughputIoTest, UnsortedRowsAreSorted) {
  write_file("d_m,median\n80,5\n20,25\n40,15\n");
  const auto model = load_throughput_csv(path_);
  ASSERT_TRUE(model.has_value());
  ASSERT_EQ(model->points().size(), 3u);
  EXPECT_DOUBLE_EQ(model->points()[0].first, 20.0);
  EXPECT_DOUBLE_EQ(model->points()[2].first, 80.0);
}

TEST_F(ThroughputIoTest, CustomColumnNames) {
  write_file("distance,rate,junk\n20,25,x\n40,19,y\n");
  const auto model = load_throughput_csv(path_, "distance", "rate");
  ASSERT_TRUE(model.has_value());
  EXPECT_DOUBLE_EQ(model->throughput_bps(40.0), 19e6);
}

TEST_F(ThroughputIoTest, MissingColumnFails) {
  write_file("a,b\n1,2\n3,4\n");
  EXPECT_FALSE(load_throughput_csv(path_).has_value());
}

TEST_F(ThroughputIoTest, TooFewRowsFails) {
  write_file("d_m,median\n20,25\n");
  EXPECT_FALSE(load_throughput_csv(path_).has_value());
}

TEST_F(ThroughputIoTest, MissingFileFails) {
  EXPECT_FALSE(load_throughput_csv("/no/such/file.csv").has_value());
}

TEST_F(ThroughputIoTest, SkipsNonNumericRows) {
  write_file("d_m,median\n20,25\nbad,row\n40,19\n");
  const auto model = load_throughput_csv(path_);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->points().size(), 2u);
}

TEST_F(ThroughputIoTest, LoadedModelDrivesThePlanner) {
  // End-to-end: measured medians in, decision out.
  write_file("d_m,median\n20,27.6\n40,17.1\n60,11\n80,6.6\n100,3.2\n");
  const auto model = load_throughput_csv(path_);
  ASSERT_TRUE(model.has_value());
  const Scenario scen = Scenario::quadrocopter();
  const uav::FailureModel failure(scen.rho_per_m);
  const CommDelayModel delay(*model, scen.delivery_params());
  const UtilityFunction u(delay, failure);
  const auto r = optimize(u);
  // Measured medians ~ the paper fit: the decision lands at the floor,
  // matching the paper-fit decision.
  EXPECT_NEAR(r.d_opt_m, 20.0, 1.0);
}

}  // namespace
}  // namespace skyferry::core
