#include "core/throughput_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skyferry::core {
namespace {

TEST(PaperLogThroughput, AirplaneFitValues) {
  const auto m = PaperLogThroughput::airplane();
  // s(d) = 1e6 * (-5.56*log2(d) + 49).
  EXPECT_NEAR(m.throughput_bps(100.0) / 1e6, -5.56 * std::log2(100.0) + 49.0, 1e-6);
  EXPECT_NEAR(m.throughput_bps(20.0) / 1e6, 24.97, 0.05);
  EXPECT_NEAR(m.throughput_bps(300.0) / 1e6, 3.25, 0.05);
  EXPECT_EQ(m.name(), "paper-airplane");
}

TEST(PaperLogThroughput, QuadFitValues) {
  const auto m = PaperLogThroughput::quadrocopter();
  EXPECT_NEAR(m.throughput_bps(20.0) / 1e6, 27.62, 0.05);
  EXPECT_NEAR(m.throughput_bps(60.0) / 1e6, 10.98, 0.05);
  EXPECT_NEAR(m.throughput_bps(80.0) / 1e6, 6.62, 0.05);
}

TEST(PaperLogThroughput, ClampsAtZero) {
  const auto m = PaperLogThroughput::quadrocopter();
  EXPECT_DOUBLE_EQ(m.throughput_bps(500.0), 0.0);
}

TEST(PaperLogThroughput, ClampsBelowMinDistance) {
  const auto m = PaperLogThroughput::airplane();
  // The 20 m anti-collision floor: s(5) == s(20).
  EXPECT_DOUBLE_EQ(m.throughput_bps(5.0), m.throughput_bps(20.0));
}

TEST(PaperLogThroughput, MaxRange) {
  // Airplane fit crosses zero at 2^(49/5.56) ~ 450 m; quad at ~124 m.
  EXPECT_NEAR(PaperLogThroughput::airplane().max_range_m(), 450.0, 3.0);
  EXPECT_NEAR(PaperLogThroughput::quadrocopter().max_range_m(), 124.0, 1.0);
}

TEST(PaperLogThroughput, MonotoneDecreasing) {
  const auto m = PaperLogThroughput::airplane();
  double prev = 1e12;
  for (double d = 20.0; d <= 460.0; d += 10.0) {
    const double s = m.throughput_bps(d);
    EXPECT_LE(s, prev + 1e-9);
    prev = s;
  }
}

TEST(TableThroughput, InterpolatesAndClamps) {
  TableThroughput m({{20.0, 25e6}, {40.0, 19e6}, {80.0, 7e6}}, "table");
  EXPECT_DOUBLE_EQ(m.throughput_bps(20.0), 25e6);
  EXPECT_DOUBLE_EQ(m.throughput_bps(30.0), 22e6);
  EXPECT_DOUBLE_EQ(m.throughput_bps(10.0), 25e6);   // clamp low
  EXPECT_DOUBLE_EQ(m.throughput_bps(100.0), 7e6);   // clamp high
  EXPECT_EQ(m.name(), "table");
}

TEST(TableThroughput, MaxRangeFindsZeroCrossing) {
  TableThroughput m({{20.0, 10e6}, {100.0, 0.0}}, "t");
  EXPECT_NEAR(m.max_range_m(), 100.0, 1.0);
  TableThroughput m2({{20.0, 10e6}, {60.0, 5e6}, {100.0, 1e6}}, "t2");
  EXPECT_DOUBLE_EQ(m2.max_range_m(), 100.0);
}

TEST(TableThroughput, DefaultMaxRangeBisection) {
  // The generic bisection in the interface also works for the log model.
  const PaperLogThroughput air = PaperLogThroughput::airplane();
  const ThroughputModel& as_interface = air;
  EXPECT_NEAR(as_interface.ThroughputModel::max_range_m(), 450.0, 5.0);
}

TEST(SpeedDegradation, HalfRateAtVHalf) {
  SpeedDegradation g{5.0};
  EXPECT_DOUBLE_EQ(g.factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(g.factor(5.0), 0.5);
  EXPECT_NEAR(g.factor(15.0), 0.1, 0.01);
}

TEST(SpeedAwareThroughput, CombinesDistanceAndSpeed) {
  const auto base = PaperLogThroughput::quadrocopter();
  SpeedAwareThroughput m(base, {5.0});
  EXPECT_DOUBLE_EQ(m.throughput_bps(60.0, 0.0), base.throughput_bps(60.0));
  EXPECT_DOUBLE_EQ(m.throughput_bps(60.0, 5.0), base.throughput_bps(60.0) * 0.5);
  // The paper's Fig. 7 right: at ~8 m/s throughput collapses to ~1/3.
  EXPECT_NEAR(m.throughput_bps(60.0, 8.0) / base.throughput_bps(60.0), 0.28, 0.03);
}

}  // namespace
}  // namespace skyferry::core
