#include "core/utility.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skyferry::core {
namespace {

struct Fixture {
  PaperLogThroughput model = PaperLogThroughput::quadrocopter();
  DeliveryParams params{100.0, 4.5, 56.2e6, 20.0};
  uav::FailureModel failure{2.46e-4};
  CommDelayModel delay{model, params};
  UtilityFunction u{delay, failure};
};

TEST(Utility, MatchesPaperEquationOne) {
  Fixture f;
  for (double d : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    const double expected = std::exp(-2.46e-4 * (100.0 - d)) / f.delay.cdelay_s(d);
    EXPECT_NEAR(f.u(d), expected, 1e-12) << d;
  }
}

TEST(Utility, ZeroWhenOutOfRange) {
  PaperLogThroughput model = PaperLogThroughput::quadrocopter();
  DeliveryParams params{200.0, 4.5, 10e6, 20.0};
  uav::FailureModel failure(2.46e-4);
  CommDelayModel delay(model, params);
  UtilityFunction u(delay, failure);
  EXPECT_DOUBLE_EQ(u(200.0), 0.0);
  EXPECT_GT(u(60.0), 0.0);
}

TEST(Utility, EvaluateDecomposes) {
  Fixture f;
  const UtilityPoint p = f.u.evaluate(60.0);
  EXPECT_DOUBLE_EQ(p.d_m, 60.0);
  EXPECT_NEAR(p.tship_s, 40.0 / 4.5, 1e-12);
  EXPECT_NEAR(p.cdelay_s, p.tship_s + p.ttx_s, 1e-12);
  EXPECT_NEAR(p.utility, p.discount / p.cdelay_s, 1e-15);
  EXPECT_NEAR(p.discount, std::exp(-2.46e-4 * 40.0), 1e-12);
}

TEST(Utility, CurveSpansFloorToD0) {
  Fixture f;
  const auto pts = f.u.curve(50);
  ASSERT_EQ(pts.size(), 50u);
  EXPECT_DOUBLE_EQ(pts.front().d_m, 20.0);
  EXPECT_DOUBLE_EQ(pts.back().d_m, 100.0);
}

TEST(Utility, ZeroRhoMeansNoDiscount) {
  Fixture f;
  uav::FailureModel no_fail(0.0);
  UtilityFunction u0(f.delay, no_fail);
  for (double d : {20.0, 50.0, 90.0}) {
    EXPECT_DOUBLE_EQ(u0.evaluate(d).discount, 1.0);
    EXPECT_NEAR(u0(d), 1.0 / f.delay.cdelay_s(d), 1e-15);
  }
}

TEST(Utility, HigherRhoPenalizesMoving) {
  // Discounting only punishes positions far from d0.
  Fixture f;
  uav::FailureModel risky(0.01);
  UtilityFunction u_risky(f.delay, risky);
  const double ratio_far = u_risky(20.0) / f.u(20.0);
  const double ratio_near = u_risky(95.0) / f.u(95.0);
  EXPECT_LT(ratio_far, ratio_near);
  EXPECT_DOUBLE_EQ(u_risky(100.0) / f.u(100.0), 1.0);
}

TEST(Utility, PaperFigure8ShapeQuad) {
  // Baseline quad scenario: U has an interior hump (higher near 20-60 m
  // than at d0) because moving closer pays off for 56 MB.
  Fixture f;
  EXPECT_GT(f.u(40.0), f.u(100.0));
  EXPECT_GT(f.u(40.0), f.u(95.0));
}

}  // namespace
}  // namespace skyferry::core
