#include "ctrl/control_channel.h"

#include <gtest/gtest.h>

namespace skyferry::ctrl {
namespace {

Telemetry make_telemetry() {
  Telemetry t;
  t.uav_id = "uav1";
  t.t_s = 1.0;
  t.position = {47.0, 8.0, 80.0};
  t.speed_mps = 10.0;
  t.battery_soc = 0.8;
  return t;
}

TEST(Messages, WireSizes) {
  const Telemetry t = make_telemetry();
  EXPECT_EQ(t.wire_bytes(), 4u + 44u);
  WaypointCommand w;
  w.uav_id = "uav1";
  EXPECT_EQ(w.wire_bytes(), 4u + 36u);
  TransmitCommand x;
  x.uav_id = "uav1";
  x.peer_id = "uav2";
  EXPECT_EQ(x.wire_bytes(), 8u + 12u);
  EXPECT_EQ(wire_bytes(ControlMessage{t}), t.wire_bytes());
}

TEST(ControlChannel, DeliversWithSerializationLatency) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  double delivered_at = -1.0;
  ASSERT_TRUE(ch.send(make_telemetry(), 500.0,
                      [&](const ControlMessage&, double t) { delivered_at = t; }));
  sim.run();
  // (48 + 16 overhead) * 8 bits / 250 kb/s = 2.048 ms.
  EXPECT_NEAR(delivered_at, 64.0 * 8.0 / 250e3, 1e-9);
}

TEST(ControlChannel, DropsOutOfRange) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  bool delivered = false;
  EXPECT_FALSE(ch.send(make_telemetry(), 2000.0,
                       [&](const ControlMessage&, double) { delivered = true; }));
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(ch.dropped_out_of_range(), 1u);
  EXPECT_EQ(ch.sent(), 0u);
}

TEST(ControlChannel, SerializesFifo) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  std::vector<int> order;
  ch.send(make_telemetry(), 100.0, [&](const ControlMessage&, double) { order.push_back(1); });
  ch.send(make_telemetry(), 100.0, [&](const ControlMessage&, double) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The second message finished after two serialization times.
  EXPECT_NEAR(ch.busy_until_s(), 2.0 * 64.0 * 8.0 / 250e3, 1e-9);
}

TEST(ControlChannel, LowBandwidthIsSlow) {
  // 250 kb/s: a 10 Hz telemetry stream from 4 UAVs fits, but bulk image
  // data (even one 0.39 MB image ~ 12.8 s) clearly does not — the reason
  // the paper reserves this channel for control only.
  sim::Simulator sim;
  ControlChannelConfig cfg;
  ControlChannel ch(sim, cfg);
  const double image_bits = 0.39e6 * 8.0;
  EXPECT_GT(image_bits / cfg.bandwidth_bps, 12.0);
}

TEST(ControlChannel, VariantDispatch) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  WaypointCommand wc;
  wc.uav_id = "uav2";
  wc.target = {47.0, 8.0, 100.0};
  bool got_waypoint = false;
  ch.send(wc, 100.0, [&](const ControlMessage& m, double) {
    got_waypoint = std::holds_alternative<WaypointCommand>(m);
  });
  sim.run();
  EXPECT_TRUE(got_waypoint);
}

}  // namespace
}  // namespace skyferry::ctrl
