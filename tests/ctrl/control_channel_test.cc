#include "ctrl/control_channel.h"

#include <gtest/gtest.h>

namespace skyferry::ctrl {
namespace {

Telemetry make_telemetry() {
  Telemetry t;
  t.uav_id = "uav1";
  t.t_s = 1.0;
  t.position = {47.0, 8.0, 80.0};
  t.speed_mps = 10.0;
  t.battery_soc = 0.8;
  return t;
}

TEST(Messages, WireSizes) {
  const Telemetry t = make_telemetry();
  EXPECT_EQ(t.wire_bytes(), 4u + 44u);
  WaypointCommand w;
  w.uav_id = "uav1";
  EXPECT_EQ(w.wire_bytes(), 4u + 36u);
  TransmitCommand x;
  x.uav_id = "uav1";
  x.peer_id = "uav2";
  EXPECT_EQ(x.wire_bytes(), 8u + 12u);
  EXPECT_EQ(wire_bytes(ControlMessage{t}), t.wire_bytes());
}

TEST(ControlChannel, DeliversWithSerializationLatency) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  double delivered_at = -1.0;
  ASSERT_TRUE(ch.send(make_telemetry(), 500.0,
                      [&](const ControlMessage&, double t) { delivered_at = t; }));
  sim.run();
  // (48 + 16 overhead) * 8 bits / 250 kb/s = 2.048 ms.
  EXPECT_NEAR(delivered_at, 64.0 * 8.0 / 250e3, 1e-9);
}

TEST(ControlChannel, DropsOutOfRange) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  bool delivered = false;
  EXPECT_FALSE(ch.send(make_telemetry(), 2000.0,
                       [&](const ControlMessage&, double) { delivered = true; }));
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(ch.dropped_out_of_range(), 1u);
  EXPECT_EQ(ch.sent(), 0u);
}

TEST(ControlChannel, SerializesFifo) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  std::vector<int> order;
  ch.send(make_telemetry(), 100.0, [&](const ControlMessage&, double) { order.push_back(1); });
  ch.send(make_telemetry(), 100.0, [&](const ControlMessage&, double) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The second message finished after two serialization times.
  EXPECT_NEAR(ch.busy_until_s(), 2.0 * 64.0 * 8.0 / 250e3, 1e-9);
}

TEST(ControlChannel, LowBandwidthIsSlow) {
  // 250 kb/s: a 10 Hz telemetry stream from 4 UAVs fits, but bulk image
  // data (even one 0.39 MB image ~ 12.8 s) clearly does not — the reason
  // the paper reserves this channel for control only.
  sim::Simulator sim;
  ControlChannelConfig cfg;
  ControlChannel ch(sim, cfg);
  const double image_bits = 0.39e6 * 8.0;
  EXPECT_GT(image_bits / cfg.bandwidth_bps, 12.0);
}

TEST(ControlChannel, LossProbabilityDropsRoughlyThatFraction) {
  sim::Simulator sim;
  ControlChannelConfig cfg;
  cfg.loss_probability = 0.25;
  cfg.loss_seed = 77;
  ControlChannel ch(sim, cfg);
  int delivered = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    ch.send(make_telemetry(), 100.0, [&](const ControlMessage&, double) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(ch.sent(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(static_cast<std::uint64_t>(n - delivered), ch.dropped_loss());
  EXPECT_NEAR(static_cast<double>(ch.dropped_loss()) / n, 0.25, 0.03);
}

TEST(ControlChannel, ZeroLossKeepsOldBehaviour) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    ch.send(make_telemetry(), 100.0, [&](const ControlMessage&, double) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(ch.dropped_loss(), 0u);
}

TEST(ControlChannel, SendReliableRetriesThroughLoss) {
  sim::Simulator sim;
  ControlChannelConfig cfg;
  cfg.loss_probability = 0.6;
  cfg.loss_seed = 5;
  ControlChannel ch(sim, cfg);
  int delivered = 0;
  ReliableSendOptions opt;
  opt.max_attempts = 20;
  opt.initial_timeout_s = 0.05;
  ch.send_reliable(
      make_telemetry(), [] { return 100.0; },
      [&](const ControlMessage&, double) { ++delivered; }, {}, opt);
  sim.run();
  EXPECT_EQ(delivered, 1);  // exactly once, despite retries
  EXPECT_GE(ch.sent(), 1u);
}

TEST(ControlChannel, SendReliableGivesUpAfterMaxAttempts) {
  sim::Simulator sim;
  ControlChannelConfig cfg;
  cfg.loss_probability = 1.0;  // the air eats everything
  ControlChannel ch(sim, cfg);
  int delivered = 0;
  int failed_after = 0;
  ReliableSendOptions opt;
  opt.max_attempts = 4;
  opt.initial_timeout_s = 0.1;
  ch.send_reliable(
      make_telemetry(), [] { return 100.0; },
      [&](const ControlMessage&, double) { ++delivered; },
      [&](int attempts) { failed_after = attempts; }, opt);
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(failed_after, 4);
  EXPECT_EQ(ch.reliable_failures(), 1u);
  EXPECT_EQ(ch.reliable_retries(), 3u);  // attempts beyond the first
}

TEST(ControlChannel, SendReliableBacksOffExponentially) {
  // With everything lost, attempt k fires after sum of the backed-off
  // timeouts; the final failure lands once the last timeout expires.
  sim::Simulator sim;
  ControlChannelConfig cfg;
  cfg.loss_probability = 1.0;
  ControlChannel ch(sim, cfg);
  double failed_at = -1.0;
  ReliableSendOptions opt;
  opt.max_attempts = 3;
  opt.initial_timeout_s = 1.0;
  opt.backoff_multiplier = 2.0;
  opt.max_timeout_s = 100.0;
  ch.send_reliable(
      make_telemetry(), [] { return 100.0; }, [](const ControlMessage&, double) {},
      [&](int) { failed_at = sim.now(); }, opt);
  sim.run();
  EXPECT_NEAR(failed_at, 1.0 + 2.0 + 4.0, 1e-9);
}

TEST(ControlChannel, SendReliableReachesMovingEndpoint) {
  // Out of range at first, in range from t >= 2 s: retries poll the
  // distance and eventually land the message.
  sim::Simulator sim;
  ControlChannel ch(sim);
  bool got = false;
  ReliableSendOptions opt;
  opt.max_attempts = 10;
  opt.initial_timeout_s = 1.0;
  opt.backoff_multiplier = 1.0;
  ch.send_reliable(
      make_telemetry(), [&] { return sim.now() < 2.0 ? 5000.0 : 100.0; },
      [&](const ControlMessage&, double) { got = true; }, {}, opt);
  sim.run();
  EXPECT_TRUE(got);
  EXPECT_GE(ch.dropped_out_of_range(), 2u);
}

TEST(ControlChannel, VariantDispatch) {
  sim::Simulator sim;
  ControlChannel ch(sim);
  WaypointCommand wc;
  wc.uav_id = "uav2";
  wc.target = {47.0, 8.0, 100.0};
  bool got_waypoint = false;
  ch.send(wc, 100.0, [&](const ControlMessage& m, double) {
    got_waypoint = std::holds_alternative<WaypointCommand>(m);
  });
  sim.run();
  EXPECT_TRUE(got_waypoint);
}

}  // namespace
}  // namespace skyferry::ctrl
