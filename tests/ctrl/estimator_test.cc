#include "ctrl/estimator.h"

#include <limits>

#include <gtest/gtest.h>

#include "geo/gps.h"
#include "sim/rng.h"

namespace skyferry::ctrl {
namespace {

const geo::GeoPoint kOrigin{47.3769, 8.5417, 400.0};

Telemetry make_telemetry(const geo::LocalFrame& frame, const std::string& id, double t,
                         const geo::Vec3& enu) {
  Telemetry tm;
  tm.uav_id = id;
  tm.t_s = t;
  tm.position = frame.to_geo(enu);
  return tm;
}

TEST(DistanceEstimator, SingleFixGivesPosition) {
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  est.update(make_telemetry(frame, "u1", 0.0, {10.0, 20.0, 30.0}));
  const auto e = est.estimate("u1", 0.5);
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->position.x, 10.0, 0.01);
  EXPECT_NEAR(e->position.y, 20.0, 0.01);
  EXPECT_EQ(est.tracked_peers(), 1u);
}

TEST(DistanceEstimator, UnknownPeerIsNullopt) {
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  EXPECT_FALSE(est.estimate("ghost", 0.0).has_value());
  EXPECT_FALSE(est.distance("a", "b", 0.0).has_value());
}

TEST(DistanceEstimator, StaleEstimateExpires) {
  const geo::LocalFrame frame(kOrigin);
  EstimatorConfig cfg;
  cfg.staleness_limit_s = 2.0;
  DistanceEstimator est(cfg, frame);
  est.update(make_telemetry(frame, "u1", 0.0, {}));
  EXPECT_TRUE(est.estimate("u1", 1.5).has_value());
  EXPECT_FALSE(est.estimate("u1", 3.0).has_value());
}

TEST(DistanceEstimator, LearnsVelocityAndDeadReckons) {
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  // Peer moving east at 5 m/s, telemetry at 1 Hz.
  for (double t = 0.0; t <= 10.0; t += 1.0) {
    est.update(make_telemetry(frame, "u1", t, {5.0 * t, 0.0, 10.0}));
  }
  const auto e = est.estimate("u1", 12.0);  // 2 s after the last fix
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->velocity.x, 5.0, 0.5);
  EXPECT_NEAR(e->position.x, 60.0, 2.0);  // extrapolated
}

TEST(DistanceEstimator, DistanceBetweenPeers) {
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  est.update(make_telemetry(frame, "a", 0.0, {0.0, 0.0, 10.0}));
  est.update(make_telemetry(frame, "b", 0.0, {80.0, 0.0, 10.0}));
  const auto d = est.distance("a", "b", 0.5);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(*d, 80.0, 0.5);
}

TEST(DistanceEstimator, ClosingSpeedSign) {
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  // b approaches a from the east at ~4.5 m/s.
  for (double t = 0.0; t <= 8.0; t += 1.0) {
    est.update(make_telemetry(frame, "a", t, {0.0, 0.0, 10.0}));
    est.update(make_telemetry(frame, "b", t, {100.0 - 4.5 * t, 0.0, 10.0}));
  }
  const auto v = est.closing_speed("a", "b", 8.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, -4.5, 1.0);  // negative = approaching
}

TEST(DistanceEstimator, FiltersGpsNoiseBelowRawError) {
  // Noisy fixes: the filtered distance error should not exceed the raw
  // per-fix GPS error budget.
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  geo::GpsReceiver gps_a({}, 1), gps_b({}, 2);
  double err_sum = 0.0;
  int n = 0;
  for (double t = 0.0; t <= 60.0; t += 1.0) {
    est.update(make_telemetry(frame, "a", t, gps_a.measure({0.0, 0.0, 10.0}, 1.0)));
    est.update(make_telemetry(frame, "b", t, gps_b.measure({60.0, 0.0, 10.0}, 1.0)));
    if (t > 10.0) {
      const auto d = est.distance("a", "b", t);
      ASSERT_TRUE(d.has_value());
      err_sum += std::abs(*d - 60.0);
      ++n;
    }
  }
  EXPECT_LT(err_sum / n, 6.0);
}

TEST(DistanceEstimator, PlannerLoopUsesEstimatedD0) {
  // The full decision loop on estimated (not true) distance: the
  // resulting d_opt must be close to the true-distance decision.
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  geo::GpsReceiver gps_a({}, 3), gps_b({}, 4);
  for (double t = 0.0; t <= 20.0; t += 1.0) {
    est.update(make_telemetry(frame, "relay", t, gps_a.measure({0.0, 0.0, 10.0}, 1.0)));
    est.update(make_telemetry(frame, "ferry", t, gps_b.measure({100.0, 0.0, 10.0}, 1.0)));
  }
  const auto d0 = est.distance("relay", "ferry", 20.0);
  ASSERT_TRUE(d0.has_value());
  EXPECT_NEAR(*d0, 100.0, 6.0);
}


TEST(DistanceEstimator, RejectsNonFiniteTelemetryAndCountsIt) {
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  auto bad_t = make_telemetry(frame, "u1", 0.0, {1.0, 2.0, 3.0});
  bad_t.t_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(est.update(bad_t));
  auto bad_pos = make_telemetry(frame, "u1", 1.0, {1.0, 2.0, 3.0});
  bad_pos.position.lat_deg = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(est.update(bad_pos));
  EXPECT_EQ(est.rejected(), 2u);
  // A corrupted fix never creates or perturbs a track.
  EXPECT_EQ(est.tracked_peers(), 0u);
  EXPECT_TRUE(est.update(make_telemetry(frame, "u1", 2.0, {1.0, 2.0, 3.0})));
  EXPECT_EQ(est.tracked_peers(), 1u);
}

TEST(DistanceEstimator, ClosingSpeedIsNoEstimateUntilBothTracksHaveVelocity) {
  const geo::LocalFrame frame(kOrigin);
  DistanceEstimator est({}, frame);
  est.update(make_telemetry(frame, "a", 0.0, {0.0, 0.0, 10.0}));
  est.update(make_telemetry(frame, "b", 0.0, {100.0, 0.0, 10.0}));
  // One fix each: the zero-initialized filter velocity would be a
  // garbage closing speed, so the estimator reports "no estimate".
  EXPECT_FALSE(est.closing_speed("a", "b", 0.5).has_value());
  est.update(make_telemetry(frame, "a", 1.0, {5.0, 0.0, 10.0}));
  EXPECT_FALSE(est.closing_speed("a", "b", 1.0).has_value());  // b still single-fix
  est.update(make_telemetry(frame, "b", 1.0, {100.0, 0.0, 10.0}));
  EXPECT_TRUE(est.closing_speed("a", "b", 1.0).has_value());
}

}  // namespace
}  // namespace skyferry::ctrl
