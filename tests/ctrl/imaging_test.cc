#include "ctrl/imaging.h"

#include <gtest/gtest.h>

namespace skyferry::ctrl {
namespace {

// The paper's footnotes 3 and 4 give exact derived values for the two
// scenarios; these tests pin our implementation to them.

TEST(CameraModel, AspectRatio) {
  CameraModel cam;
  EXPECT_NEAR(cam.aspect(), 16.0 / 9.0, 1e-9);
}

TEST(CameraModel, AirplaneScenarioFootnote3) {
  CameraModel cam;
  // Altitude 70 m, lens 65 deg: FOV ~ 90 m, A_image ~ 3432 m^2.
  EXPECT_NEAR(cam.fov_m(70.0), 90.0, 1.0);
  EXPECT_NEAR(cam.image_area_m2(70.0), 3432.0, 80.0);
}

TEST(CameraModel, QuadScenarioFootnote4) {
  CameraModel cam;
  // Altitude 10 m: FOV ~ 12.7 m, A_image ~ 69.4 m^2.
  EXPECT_NEAR(cam.fov_m(10.0), 12.7, 0.1);
  EXPECT_NEAR(cam.image_area_m2(10.0), 69.4, 1.5);
}

TEST(PlanSectorImaging, AirplaneMdataIs28MB) {
  CameraModel cam;
  const SectorImagingPlan plan = plan_sector_imaging(cam, 500.0 * 500.0, 70.0);
  // ~73 images x 0.39 MB ~ 28 MB.
  EXPECT_NEAR(plan.images_required, 72.8, 2.0);
  EXPECT_NEAR(plan.batch.total_mb(), 28.0, 1.0);
}

TEST(PlanSectorImaging, QuadMdataIs56MB) {
  CameraModel cam;
  const SectorImagingPlan plan = plan_sector_imaging(cam, 100.0 * 100.0, 10.0);
  EXPECT_NEAR(plan.images_required, 144.0, 4.0);
  EXPECT_NEAR(plan.batch.total_mb(), 56.2, 1.5);
}

TEST(PlanSectorImaging, LowerAltitudeNeedsMoreImages) {
  CameraModel cam;
  const auto high = plan_sector_imaging(cam, 1e4, 70.0);
  const auto low = plan_sector_imaging(cam, 1e4, 10.0);
  EXPECT_GT(low.images_required, high.images_required * 10.0);
}

TEST(PlanSectorImaging, ZeroAltitudeIsSafe) {
  CameraModel cam;
  const auto plan = plan_sector_imaging(cam, 1e4, 0.0);
  EXPECT_EQ(plan.batch.num_images, 0u);
}

TEST(CameraModel, FovScalesLinearlyWithAltitude) {
  CameraModel cam;
  EXPECT_NEAR(cam.fov_m(140.0), 2.0 * cam.fov_m(70.0), 1e-9);
}

}  // namespace
}  // namespace skyferry::ctrl
