#include "ctrl/resilience.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::ctrl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// The paper's quadrocopter fit — the nominal hypothesis under test.
constexpr double kA = -10.5;
constexpr double kB = 73.0;

double nominal_bps(double d) { return std::max(0.0, 1e6 * (kA * std::log2(d) + kB)); }

OnlineChannelEstimator make_estimator(ChannelEstimatorConfig cfg = {}) {
  return OnlineChannelEstimator(cfg, kA, kB);
}

TEST(ResilienceChannelEstimator, RejectsNonFiniteSamplesAndCountsThem) {
  auto est = make_estimator();
  EXPECT_FALSE(est.add_sample(kNaN, 1e6));
  EXPECT_FALSE(est.add_sample(kInf, 1e6));
  EXPECT_FALSE(est.add_sample(0.0, 1e6));    // non-positive distance
  EXPECT_FALSE(est.add_sample(-50.0, 1e6));
  EXPECT_FALSE(est.add_sample(50.0, kNaN));
  EXPECT_FALSE(est.add_sample(50.0, -1.0));
  EXPECT_EQ(est.rejected(), 6u);
  EXPECT_EQ(est.accepted(), 0u);
  EXPECT_EQ(est.samples(), 0u);
  // Rejected garbage never perturbs the divergence statistic.
  EXPECT_EQ(est.divergence(), 0.0);
  EXPECT_FALSE(est.estimate().has_value());
}

TEST(ResilienceChannelEstimator, TaggedNoEstimateBelowMinSamples) {
  ChannelEstimatorConfig cfg;
  cfg.min_samples = 8;
  auto est = make_estimator(cfg);
  for (int i = 0; i < 7; ++i) {
    const double d = 100.0 - 5.0 * i;
    ASSERT_TRUE(est.add_sample(d, nominal_bps(d)));
    EXPECT_FALSE(est.estimate().has_value()) << "sample " << i;
  }
  est.add_sample(60.0, nominal_bps(60.0));
  ASSERT_TRUE(est.estimate().has_value());
}

TEST(ResilienceChannelEstimator, RecoversCleanFitAndStaysQuietOnNominal) {
  auto est = make_estimator();
  for (double d = 120.0; d >= 30.0; d -= 3.0) {
    est.add_sample(d, nominal_bps(d));
  }
  const auto e = est.estimate();
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->a, kA, 0.05);
  EXPECT_NEAR(e->b, kB, 0.3);
  EXPECT_NEAR(e->gain, 1.0, 1e-6);
  EXPECT_GT(e->r_squared, 0.999);
  EXPECT_GT(e->confidence, 0.7);
  EXPECT_FALSE(est.mismatch());  // noiseless nominal: zero divergence
  EXPECT_EQ(est.divergence(), 0.0);
}

TEST(ResilienceChannelEstimator, NoMismatchNeverTripsAcrossThousandSeeds) {
  // The false-positive budget of the whole resilience layer: noisy but
  // unbiased probes of the nominal model (probe noise 0.10 vs the
  // detector's assumed 0.12, the mission simulator's defaults) must not
  // trip the CUSUM for any of 10^3 seeds — this is what makes the
  // zero-mismatch bit-identity guarantee hold in the fault simulator.
  int trips = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    sim::Rng rng(seed);
    auto est = make_estimator();
    for (int i = 0; i < 60; ++i) {
      const double d = 130.0 - 1.5 * i;
      const double obs = nominal_bps(d) * std::exp(rng.gaussian(-0.005, 0.10));
      est.add_sample(d, obs);
      if (est.mismatch()) ++trips;
    }
  }
  EXPECT_EQ(trips, 0);
}

TEST(ResilienceChannelEstimator, DetectsThroughputDropWithinBoundedSamples) {
  // A 40% rate loss (log-ratio -0.51, z ~ -4.3) must trip within a
  // handful of samples for every seed: detection delay is bounded.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed);
    auto est = make_estimator();
    int detected_at = -1;
    for (int i = 0; i < 20; ++i) {
      const double d = 110.0 - 2.0 * i;
      const double obs = 0.6 * nominal_bps(d) * std::exp(rng.gaussian(-0.005, 0.10));
      est.add_sample(d, obs);
      if (est.mismatch()) {
        detected_at = i;
        break;
      }
    }
    ASSERT_GE(detected_at, 0) << "seed " << seed << ": never tripped";
    EXPECT_LE(detected_at, 10) << "seed " << seed;
  }
}

TEST(ResilienceChannelEstimator, GainTracksMultiplicativeError) {
  auto est = make_estimator();
  for (double d = 110.0; d >= 40.0; d -= 2.0) {
    est.add_sample(d, 0.7 * nominal_bps(d));
  }
  const auto e = est.estimate();
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->gain, 0.7, 0.01);
  EXPECT_TRUE(est.mismatch());
}

TEST(ResilienceChannelEstimator, RearmClearsWindowAndDivergence) {
  auto est = make_estimator();
  for (double d = 110.0; d >= 60.0; d -= 2.0) {
    est.add_sample(d, 0.5 * nominal_bps(d));
  }
  ASSERT_TRUE(est.mismatch());
  est.rearm();
  EXPECT_EQ(est.divergence(), 0.0);
  EXPECT_EQ(est.ewma(), 0.0);
  EXPECT_EQ(est.samples(), 0u);
  EXPECT_FALSE(est.estimate().has_value());
  // Lifetime counters survive the re-arm (they are bookkeeping, not
  // evidence).
  EXPECT_GT(est.accepted(), 0u);
}

TEST(ResilienceChannelEstimator, DeadLinkAgreementIsNotDivergence) {
  // Beyond max range both the nominal model and the world deliver zero:
  // agreeing on a dead link is not evidence of mismatch.
  auto est = make_estimator();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(est.add_sample(500.0 - i, 0.0));  // nominal is 0 there too
  }
  EXPECT_EQ(est.divergence(), 0.0);
}

TEST(ResilienceHazardEstimator, TaggedNoEstimateBelowMinSamplesAndRejects) {
  HazardRateEstimator est;
  EXPECT_FALSE(est.add_sample(kNaN));
  EXPECT_FALSE(est.add_sample(-1e-4));
  EXPECT_EQ(est.rejected(), 2u);
  EXPECT_FALSE(est.rho().has_value());
  EXPECT_EQ(est.relative_error_vs(2.46e-4), 0.0);  // no estimate: no error claim
  for (int i = 0; i < 7; ++i) {
    est.add_sample(3.0e-4);
    EXPECT_FALSE(est.rho().has_value()) << "sample " << i;
  }
  est.add_sample(3.0e-4);
  ASSERT_TRUE(est.rho().has_value());
  EXPECT_NEAR(*est.rho(), 3.0e-4, 1e-12);
}

TEST(ResilienceHazardEstimator, ConvergesToScaledRhoAndReportsRelativeError) {
  HazardRateEstimator est;
  sim::Rng rng(7);
  const double actual = 1.5 * 2.46e-4;
  for (int i = 0; i < 200; ++i) {
    est.add_sample(actual * std::exp(rng.gaussian(-0.005, 0.10)));
  }
  ASSERT_TRUE(est.rho().has_value());
  EXPECT_NEAR(*est.rho(), actual, 0.15 * actual);
  EXPECT_GT(est.relative_error_vs(2.46e-4), 0.25);
}

TEST(ResilienceLadder, StaysNominalWhenHealthy) {
  DegradedModeController ctl;
  HealthSignals h;  // defaults: all healthy
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ctl.update(h), ResilienceMode::kNominal);
  EXPECT_EQ(ctl.transitions(), 0);
}

TEST(ResilienceLadder, ConfidentMismatchStepsToReEstimated) {
  DegradedModeController ctl;
  HealthSignals h;
  h.divergence = 10.0;
  h.estimator_confidence = 0.8;
  EXPECT_EQ(ctl.update(h), ResilienceMode::kReEstimated);
  EXPECT_EQ(ctl.transitions(), 1);
}

TEST(ResilienceLadder, UntrustworthyMismatchDegradesToConservative) {
  DegradedModeController ctl;
  HealthSignals h;
  h.divergence = 10.0;
  h.estimator_confidence = 0.1;  // below min_confidence
  EXPECT_EQ(ctl.update(h), ResilienceMode::kConservative);
}

TEST(ResilienceLadder, MissionRiskSignalsForceConservative) {
  {
    DegradedModeController ctl;
    HealthSignals h;
    h.control_retry_fraction = 5.0;
    EXPECT_EQ(ctl.update(h), ResilienceMode::kConservative);
  }
  {
    DegradedModeController ctl;
    HealthSignals h;
    h.battery_fraction = 0.10;  // below the floor
    EXPECT_EQ(ctl.update(h), ResilienceMode::kConservative);
  }
}

TEST(ResilienceLadder, ForwardOnlyNeverRecoversMidMission) {
  DegradedModeController ctl;
  HealthSignals sick;
  sick.divergence = 10.0;
  sick.estimator_confidence = 0.8;
  ASSERT_EQ(ctl.update(sick), ResilienceMode::kReEstimated);
  HealthSignals healthy;  // divergence resolved (e.g. after a re-arm)
  EXPECT_EQ(ctl.update(healthy), ResilienceMode::kReEstimated);  // no un-degrade
  sick.estimator_confidence = 0.0;
  ASSERT_EQ(ctl.update(sick), ResilienceMode::kConservative);
  EXPECT_EQ(ctl.update(healthy), ResilienceMode::kConservative);
  EXPECT_EQ(ctl.transitions(), 2);
}

TEST(ResilienceLadder, ModeNamesAreStable) {
  EXPECT_STREQ(to_string(ResilienceMode::kNominal), "nominal");
  EXPECT_STREQ(to_string(ResilienceMode::kReEstimated), "re-estimated");
  EXPECT_STREQ(to_string(ResilienceMode::kConservative), "conservative");
}

}  // namespace
}  // namespace skyferry::ctrl
