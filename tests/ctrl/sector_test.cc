#include "ctrl/sector.h"

#include <gtest/gtest.h>

namespace skyferry::ctrl {
namespace {

TEST(SectorGrid, SplitsAreaExactly) {
  const auto sectors = make_sector_grid(1000.0, 500.0, 2, 1, 70.0);
  ASSERT_EQ(sectors.size(), 2u);
  EXPECT_DOUBLE_EQ(sectors[0].area_m2(), 250000.0);
  EXPECT_DOUBLE_EQ(sectors[0].width_m, 500.0);
  EXPECT_DOUBLE_EQ(sectors[1].origin.x, 500.0);
  EXPECT_DOUBLE_EQ(sectors[0].origin.z, 70.0);
  EXPECT_EQ(sectors[0].index, 0);
  EXPECT_EQ(sectors[1].index, 1);
}

TEST(SectorGrid, GridIndexingRowMajor) {
  const auto sectors = make_sector_grid(100.0, 100.0, 2, 2, 10.0);
  ASSERT_EQ(sectors.size(), 4u);
  EXPECT_DOUBLE_EQ(sectors[3].origin.x, 50.0);
  EXPECT_DOUBLE_EQ(sectors[3].origin.y, 50.0);
}

TEST(Sector, ContainsAndCenter) {
  Sector s;
  s.origin = {10.0, 20.0, 5.0};
  s.width_m = 30.0;
  s.height_m = 40.0;
  EXPECT_TRUE(s.contains({25.0, 40.0, 0.0}));
  EXPECT_FALSE(s.contains({45.0, 40.0, 0.0}));
  EXPECT_DOUBLE_EQ(s.center().x, 25.0);
  EXPECT_DOUBLE_EQ(s.center().y, 40.0);
}

TEST(LawnmowerPath, CoversAllTracks) {
  Sector s;
  s.origin = {0.0, 0.0, 10.0};
  s.width_m = 100.0;
  s.height_m = 50.0;
  const auto path = lawnmower_path(s, 10.0);
  // 11 tracks x 2 points each.
  EXPECT_EQ(path.size(), 22u);
  // Alternating sweep: consecutive same-x pairs, alternating y direction.
  EXPECT_DOUBLE_EQ(path[0].y, 0.0);
  EXPECT_DOUBLE_EQ(path[1].y, 50.0);
  EXPECT_DOUBLE_EQ(path[2].y, 50.0);
  EXPECT_DOUBLE_EQ(path[3].y, 0.0);
  // Last track clamped to the sector edge.
  EXPECT_DOUBLE_EQ(path.back().x, 100.0);
}

TEST(LawnmowerPath, LengthLowerBound) {
  Sector s;
  s.origin = {0.0, 0.0, 10.0};
  s.width_m = 100.0;
  s.height_m = 50.0;
  const auto path = lawnmower_path(s, 10.0);
  // At least 11 sweeps of 50 m.
  EXPECT_GE(path_length_m(path), 11 * 50.0);
}

TEST(CoverageSpacing, MatchesFootprintShortSide) {
  CameraModel cam;
  // FOV(70 m) ~ 90 m; k=16/9 -> short side = FOV/sqrt(k^2+1) ~ 44 m.
  EXPECT_NEAR(coverage_track_spacing_m(cam, 70.0), 44.0, 1.5);
}

TEST(EstimateSweep, AirplaneSectorIsFlyable) {
  // The paper's airplane sector (500x500 m) at 70 m altitude must be
  // coverable within one battery charge at cruise speed.
  Sector s;
  s.origin = {0.0, 0.0, 70.0};
  s.width_m = 500.0;
  s.height_m = 500.0;
  CameraModel cam;
  const auto est = estimate_sweep(s, cam, 10.0);
  EXPECT_GT(est.duration_s, 100.0);
  EXPECT_LT(est.duration_s, 1800.0);  // 30 min battery
  EXPECT_NEAR(est.images, 73u, 3u);
}

TEST(EstimateSweep, QuadSectorIsFlyable) {
  Sector s;
  s.origin = {0.0, 0.0, 10.0};
  s.width_m = 100.0;
  s.height_m = 100.0;
  CameraModel cam;
  const auto est = estimate_sweep(s, cam, 4.5);
  EXPECT_LT(est.duration_s, 1200.0);  // 20 min battery
  EXPECT_NEAR(est.images, 145u, 5u);
}

TEST(LawnmowerPath, TinySectorStillHasOneTrack) {
  Sector s;
  s.origin = {0.0, 0.0, 10.0};
  s.width_m = 1.0;
  s.height_m = 5.0;
  const auto path = lawnmower_path(s, 10.0);
  EXPECT_GE(path.size(), 2u);
}

}  // namespace
}  // namespace skyferry::ctrl
