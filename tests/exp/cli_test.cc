#include "exp/cli.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::exp {
namespace {

// argv helper: gtest owns the strings, parse() reads char**.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : store_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("bench"));
    for (auto& s : store_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> store_;
  std::vector<char*> ptrs_;
};

struct StdFlags {
  std::uint64_t seed{1};
  int trials{2000};
  int threads{0};
  double scale{1.5};
  std::string out{"run.csv"};
  Cli cli{"bench"};

  StdFlags() {
    cli.flag("--seed", &seed, "master seed")
        .flag("--trials", &trials, "trials per point")
        .flag("--threads", &threads, "worker threads (0 = hardware)")
        .flag("--scale", &scale, "scale factor")
        .flag("--out", &out, "output csv");
  }
};

TEST(Cli, ParsesSpaceAndEqualsForms) {
  StdFlags f;
  Args a({"--seed", "42", "--trials=500", "--threads", "8", "--scale=2.25", "--out=x.csv"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_EQ(f.seed, 42u);
  EXPECT_EQ(f.trials, 500);
  EXPECT_EQ(f.threads, 8);
  EXPECT_DOUBLE_EQ(f.scale, 2.25);
  EXPECT_EQ(f.out, "x.csv");
}

TEST(Cli, AbsentFlagsKeepDefaults) {
  StdFlags f;
  Args a({"--seed", "9"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_EQ(f.seed, 9u);
  EXPECT_EQ(f.trials, 2000);
  EXPECT_EQ(f.out, "run.csv");
}

TEST(Cli, UnknownFlagIsAnErrorNotSilence) {
  StdFlags f;
  Args a({"--sead", "42"});  // the typo the old strcmp loops swallowed
  EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
}

TEST(Cli, MalformedValuesAreTypedErrors) {
  {
    StdFlags f;
    Args a({"--trials", "20x0"});
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--seed", "-3"});  // seed is unsigned
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--scale", "fast"});
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--trials"});  // dangling flag
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
}

TEST(Cli, DuplicateFlagRegistrationThrows) {
  int x = 0;
  Cli cli("bench");
  cli.flag("--x", &x, "x");
  EXPECT_THROW(cli.flag("--x", &x, "again"), CliError);
}

TEST(Cli, FlagsMustStartWithDashes) {
  int x = 0;
  Cli cli("bench");
  EXPECT_THROW(cli.flag("x", &x, "no dashes"), CliError);
}

TEST(Cli, UsageListsEveryFlagWithDefault) {
  StdFlags f;
  const std::string u = f.cli.usage();
  for (const char* needle : {"--seed", "--trials", "--threads", "--scale", "--out", "run.csv"})
    EXPECT_NE(u.find(needle), std::string::npos) << needle;
}

}  // namespace
}  // namespace skyferry::exp
