#include "exp/cli.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::exp {
namespace {

// argv helper: gtest owns the strings, parse() reads char**.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : store_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("bench"));
    for (auto& s : store_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> store_;
  std::vector<char*> ptrs_;
};

struct StdFlags {
  std::uint64_t seed{1};
  int trials{2000};
  int threads{0};
  double scale{1.5};
  std::string out{"run.csv"};
  Cli cli{"bench"};

  StdFlags() {
    cli.flag("--seed", &seed, "master seed")
        .flag("--trials", &trials, "trials per point")
        .flag("--threads", &threads, "worker threads (0 = hardware)")
        .flag("--scale", &scale, "scale factor")
        .flag("--out", &out, "output csv");
  }
};

TEST(Cli, ParsesSpaceAndEqualsForms) {
  StdFlags f;
  Args a({"--seed", "42", "--trials=500", "--threads", "8", "--scale=2.25", "--out=x.csv"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_EQ(f.seed, 42u);
  EXPECT_EQ(f.trials, 500);
  EXPECT_EQ(f.threads, 8);
  EXPECT_DOUBLE_EQ(f.scale, 2.25);
  EXPECT_EQ(f.out, "x.csv");
}

TEST(Cli, AbsentFlagsKeepDefaults) {
  StdFlags f;
  Args a({"--seed", "9"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_EQ(f.seed, 9u);
  EXPECT_EQ(f.trials, 2000);
  EXPECT_EQ(f.out, "run.csv");
}

TEST(Cli, UnknownFlagIsAnErrorNotSilence) {
  StdFlags f;
  Args a({"--sead", "42"});  // the typo the old strcmp loops swallowed
  EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
}

TEST(Cli, MalformedValuesAreTypedErrors) {
  {
    StdFlags f;
    Args a({"--trials", "20x0"});
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--seed", "-3"});  // seed is unsigned
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--scale", "fast"});
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--trials"});  // dangling flag
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
}

TEST(Cli, DuplicateFlagRegistrationThrows) {
  int x = 0;
  Cli cli("bench");
  cli.flag("--x", &x, "x");
  EXPECT_THROW(cli.flag("--x", &x, "again"), CliError);
}

TEST(Cli, FlagsMustStartWithDashes) {
  int x = 0;
  Cli cli("bench");
  EXPECT_THROW(cli.flag("x", &x, "no dashes"), CliError);
}

TEST(Cli, UsageListsEveryFlagWithDefault) {
  StdFlags f;
  const std::string u = f.cli.usage();
  for (const char* needle : {"--seed", "--trials", "--threads", "--scale", "--out", "run.csv"})
    EXPECT_NE(u.find(needle), std::string::npos) << needle;
}

// ---- replay round-trip ------------------------------------------------------

// Split a replay command into argv tokens (no quoting: flag values in
// this suite contain no whitespace).
std::vector<std::string> Tokenize(const std::string& command) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : command) {
    if (c == ' ') {
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

TEST(Cli, ReplayCommandRoundTripsSeedAndThreads) {
  StdFlags first;
  Args a({"--seed", "1234567890123", "--threads", "8", "--scale=0.125"});
  first.cli.parse(a.argc(), a.argv());

  // Feeding the replay command back through a fresh Cli must reproduce
  // every parsed value exactly — that is what makes the header a replay.
  auto tokens = Tokenize(first.cli.replay_command());
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.front(), "bench");
  tokens.erase(tokens.begin());
  StdFlags second;
  Args replay(tokens);
  second.cli.parse(replay.argc(), replay.argv());
  EXPECT_EQ(second.seed, first.seed);
  EXPECT_EQ(second.trials, first.trials);
  EXPECT_EQ(second.threads, first.threads);
  EXPECT_DOUBLE_EQ(second.scale, first.scale);
  EXPECT_EQ(second.out, first.out);
}

TEST(Cli, FlagValuesReflectParsedStateInRegistrationOrder) {
  StdFlags f;
  Args a({"--seed", "77", "--out", "y.csv"});
  f.cli.parse(a.argc(), a.argv());
  const auto values = f.cli.flag_values();
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(values[0], (std::pair<std::string, std::string>{"seed", "77"}));
  EXPECT_EQ(values[1].first, "trials");
  EXPECT_EQ(values[1].second, "2000");  // untouched default
  EXPECT_EQ(values[4], (std::pair<std::string, std::string>{"out", "y.csv"}));
}

}  // namespace
}  // namespace skyferry::exp
