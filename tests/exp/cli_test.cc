#include "exp/cli.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::exp {
namespace {

// argv helper: gtest owns the strings, parse() reads char**.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : store_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("bench"));
    for (auto& s : store_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> store_;
  std::vector<char*> ptrs_;
};

struct StdFlags {
  std::uint64_t seed{1};
  int trials{2000};
  int threads{0};
  double scale{1.5};
  std::string out{"run.csv"};
  Cli cli{"bench"};

  StdFlags() {
    cli.flag("--seed", &seed, "master seed")
        .flag("--trials", &trials, "trials per point")
        .flag("--threads", &threads, "worker threads (0 = hardware)")
        .flag("--scale", &scale, "scale factor")
        .flag("--out", &out, "output csv");
  }
};

TEST(Cli, ParsesSpaceAndEqualsForms) {
  StdFlags f;
  Args a({"--seed", "42", "--trials=500", "--threads", "8", "--scale=2.25", "--out=x.csv"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_EQ(f.seed, 42u);
  EXPECT_EQ(f.trials, 500);
  EXPECT_EQ(f.threads, 8);
  EXPECT_DOUBLE_EQ(f.scale, 2.25);
  EXPECT_EQ(f.out, "x.csv");
}

TEST(Cli, AbsentFlagsKeepDefaults) {
  StdFlags f;
  Args a({"--seed", "9"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_EQ(f.seed, 9u);
  EXPECT_EQ(f.trials, 2000);
  EXPECT_EQ(f.out, "run.csv");
}

TEST(Cli, UnknownFlagIsAnErrorNotSilence) {
  StdFlags f;
  Args a({"--sead", "42"});  // the typo the old strcmp loops swallowed
  EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
}

TEST(Cli, MalformedValuesAreTypedErrors) {
  {
    StdFlags f;
    Args a({"--trials", "20x0"});
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--seed", "-3"});  // seed is unsigned
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--scale", "fast"});
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
  {
    StdFlags f;
    Args a({"--trials"});  // dangling flag
    EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
  }
}

TEST(Cli, DuplicateFlagRegistrationThrows) {
  int x = 0;
  Cli cli("bench");
  cli.flag("--x", &x, "x");
  EXPECT_THROW(cli.flag("--x", &x, "again"), CliError);
}

TEST(Cli, FlagsMustStartWithDashes) {
  int x = 0;
  Cli cli("bench");
  EXPECT_THROW(cli.flag("x", &x, "no dashes"), CliError);
}

TEST(Cli, UsageListsEveryFlagWithDefault) {
  StdFlags f;
  const std::string u = f.cli.usage();
  for (const char* needle : {"--seed", "--trials", "--threads", "--scale", "--out", "run.csv"})
    EXPECT_NE(u.find(needle), std::string::npos) << needle;
}

// ---- bool flags -------------------------------------------------------------

struct BoolFlags {
  bool resume{false};
  bool fail_fast{false};
  bool verbose{true};
  int trials{10};
  Cli cli{"bench"};

  BoolFlags() {
    cli.flag("--resume", &resume, "resume from checkpoint")
        .flag("--fail-fast", &fail_fast, "abort on first failure")
        .flag("--verbose", &verbose, "narrate")
        .flag("--trials", &trials, "trials");
  }
};

TEST(Cli, BareBoolFlagSetsTrueWithoutConsumingNextToken) {
  BoolFlags f;
  Args a({"--resume", "--trials", "7"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_TRUE(f.resume);
  EXPECT_EQ(f.trials, 7);  // "--trials" was NOT eaten as --resume's value
}

TEST(Cli, BoolEqualsFormsParse) {
  BoolFlags f;
  Args a({"--resume=true", "--fail-fast=1", "--verbose=false"});
  f.cli.parse(a.argc(), a.argv());
  EXPECT_TRUE(f.resume);
  EXPECT_TRUE(f.fail_fast);
  EXPECT_FALSE(f.verbose);
  BoolFlags g;
  Args b({"--fail-fast=0"});
  g.cli.parse(b.argc(), b.argv());
  EXPECT_FALSE(g.fail_fast);
}

TEST(Cli, BoolRejectsNonBooleanValues) {
  BoolFlags f;
  Args a({"--resume=yes"});
  EXPECT_THROW(f.cli.parse(a.argc(), a.argv()), CliError);
}

TEST(Cli, BoolUsageAndValueStrings) {
  BoolFlags f;
  EXPECT_NE(f.cli.usage().find("[--resume[=true|false]]"), std::string::npos);
  const auto values = f.cli.flag_values();
  EXPECT_EQ(values[0], (std::pair<std::string, std::string>{"resume", "false"}));
  EXPECT_EQ(values[2], (std::pair<std::string, std::string>{"verbose", "true"}));
}

// ---- replay round-trip ------------------------------------------------------

// Split a replay command into argv tokens (no quoting: flag values in
// this suite contain no whitespace).
std::vector<std::string> Tokenize(const std::string& command) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : command) {
    if (c == ' ') {
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

TEST(Cli, ReplayCommandRoundTripsSeedAndThreads) {
  StdFlags first;
  Args a({"--seed", "1234567890123", "--threads", "8", "--scale=0.125"});
  first.cli.parse(a.argc(), a.argv());

  // Feeding the replay command back through a fresh Cli must reproduce
  // every parsed value exactly — that is what makes the header a replay.
  auto tokens = Tokenize(first.cli.replay_command());
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.front(), "bench");
  tokens.erase(tokens.begin());
  StdFlags second;
  Args replay(tokens);
  second.cli.parse(replay.argc(), replay.argv());
  EXPECT_EQ(second.seed, first.seed);
  EXPECT_EQ(second.trials, first.trials);
  EXPECT_EQ(second.threads, first.threads);
  EXPECT_DOUBLE_EQ(second.scale, first.scale);
  EXPECT_EQ(second.out, first.out);
}

TEST(Cli, ReplayCommandRoundTripsBoolFlags) {
  // Bool flags print as --name=value in the replay command, so feeding
  // it back never mis-parses the next token as a value.
  BoolFlags first;
  Args a({"--fail-fast", "--verbose=false", "--trials", "3"});
  first.cli.parse(a.argc(), a.argv());
  const std::string cmd = first.cli.replay_command();
  EXPECT_NE(cmd.find("--fail-fast=true"), std::string::npos);
  EXPECT_NE(cmd.find("--verbose=false"), std::string::npos);

  auto tokens = Tokenize(cmd);
  tokens.erase(tokens.begin());
  BoolFlags second;
  Args replay(tokens);
  second.cli.parse(replay.argc(), replay.argv());
  EXPECT_EQ(second.resume, first.resume);
  EXPECT_EQ(second.fail_fast, first.fail_fast);
  EXPECT_EQ(second.verbose, first.verbose);
  EXPECT_EQ(second.trials, first.trials);
}

TEST(Cli, FlagValuesReflectParsedStateInRegistrationOrder) {
  StdFlags f;
  Args a({"--seed", "77", "--out", "y.csv"});
  f.cli.parse(a.argc(), a.argv());
  const auto values = f.cli.flag_values();
  ASSERT_EQ(values.size(), 5u);
  EXPECT_EQ(values[0], (std::pair<std::string, std::string>{"seed", "77"}));
  EXPECT_EQ(values[1].first, "trials");
  EXPECT_EQ(values[1].second, "2000");  // untouched default
  EXPECT_EQ(values[4], (std::pair<std::string, std::string>{"out", "y.csv"}));
}

}  // namespace
}  // namespace skyferry::exp
