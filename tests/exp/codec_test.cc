// Round-trip and adversarial-input coverage for the checkpoint codec
// path: Codec<T> primitives (NaN/Inf doubles, 64-bit seeds), the
// TrialResult struct codec, and CheckpointFile's strict load — a
// truncated or tampered journal must be rejected with a clear error,
// never half-resumed.
#include "exp/codec.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "exp/checkpoint.h"
#include "exp/sweep.h"
#include "fault/trial_codec.h"

namespace skyferry::exp {
namespace {

// ---- primitive codecs ------------------------------------------------------

TEST(Codec, DoubleRoundTripsBitExactIncludingNanAndInf) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           -1.75e-308,
                           6.02214076e23,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (const double v : values) {
    // Through the in-memory Json value AND through its text form — the
    // checkpoint file round-trips text, not objects.
    const io::Json j = Codec<double>::encode(v);
    const auto parsed = io::Json::parse(j.dump());
    ASSERT_TRUE(parsed.has_value()) << v;
    const double back = Codec<double>::decode(*parsed);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << "value " << v;
  }
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(Codec<double>::decode(Codec<double>::encode(nan))));
}

TEST(Codec, DoubleRejectsUnknownTags) {
  EXPECT_THROW(Codec<double>::decode(io::Json("fast")), CodecError);
  EXPECT_THROW(Codec<double>::decode(io::Json(true)), CodecError);
  EXPECT_THROW(Codec<double>::decode(io::Json()), CodecError);
}

TEST(Codec, Uint64SurvivesFullRange) {
  const std::uint64_t values[] = {0, 1, (1ULL << 53) + 1, 0xFFFFFFFFFFFFFFFFULL,
                                  0x123456789ABCDEF0ULL};
  for (const std::uint64_t v : values)
    EXPECT_EQ(Codec<std::uint64_t>::decode(Codec<std::uint64_t>::encode(v)), v);
}

TEST(Codec, Uint64RejectsMalformedInputs) {
  EXPECT_THROW(Codec<std::uint64_t>::decode(io::Json("-1")), CodecError);
  EXPECT_THROW(Codec<std::uint64_t>::decode(io::Json("")), CodecError);
  EXPECT_THROW(Codec<std::uint64_t>::decode(io::Json("12x")), CodecError);
  EXPECT_THROW(Codec<std::uint64_t>::decode(io::Json("99999999999999999999999")), CodecError);
  EXPECT_THROW(Codec<std::uint64_t>::decode(io::Json(1.5)), CodecError);
  EXPECT_THROW(Codec<std::uint64_t>::decode(io::Json(-2.0)), CodecError);
}

TEST(Codec, IntRejectsLossyNumbers) {
  EXPECT_EQ(Codec<int>::decode(io::Json(-7)), -7);
  EXPECT_THROW(Codec<int>::decode(io::Json(2.5)), CodecError);
  EXPECT_THROW(Codec<int>::decode(io::Json("7")), CodecError);
}

TEST(Codec, RangeHelpersRejectSizeMismatch) {
  const double xs[] = {1.0, 2.0, 3.0};
  const io::Json arr = encode_range<double>(xs, 3);
  double out[3];
  decode_range<double>(arr, out, 3);
  EXPECT_EQ(out[2], 3.0);
  EXPECT_THROW(decode_range<double>(arr, out, 2), CodecError);
  EXPECT_THROW(decode_range<double>(io::Json(1.0), out, 1), CodecError);
}

// ---- TrialResult struct codec ----------------------------------------------

TEST(Codec, TrialResultRoundTripsEveryField) {
  fault::TrialResult r;
  r.d_opt_m = 37.25;
  r.approach_distance_m = 62.75;
  r.analytic_delivery_probability = 1.0 / 3.0;
  r.survived_approach = true;
  r.crashed = true;
  r.negotiation_failed = false;
  r.delivered_all = false;
  r.timed_out = true;
  r.delivered_bytes = 12345678.0;
  r.total_bytes = 28e6;
  r.completion_time_s = 59.994;
  r.crash_distance_m = std::numeric_limits<double>::infinity();  // crashes off
  r.rendezvous_attempts = 3;
  r.control_retries = (1ULL << 60) + 17;
  r.arq_retransmissions = 42;
  r.link_outages = 5;
  r.gps_dropouts = 2;
  const auto parsed = io::Json::parse(Codec<fault::TrialResult>::encode(r).dump(2));
  ASSERT_TRUE(parsed.has_value());
  const fault::TrialResult b = Codec<fault::TrialResult>::decode(*parsed);
  EXPECT_EQ(b.d_opt_m, r.d_opt_m);
  EXPECT_EQ(b.approach_distance_m, r.approach_distance_m);
  EXPECT_EQ(b.analytic_delivery_probability, r.analytic_delivery_probability);
  EXPECT_EQ(b.survived_approach, r.survived_approach);
  EXPECT_EQ(b.crashed, r.crashed);
  EXPECT_EQ(b.negotiation_failed, r.negotiation_failed);
  EXPECT_EQ(b.delivered_all, r.delivered_all);
  EXPECT_EQ(b.timed_out, r.timed_out);
  EXPECT_EQ(b.delivered_bytes, r.delivered_bytes);
  EXPECT_EQ(b.total_bytes, r.total_bytes);
  EXPECT_EQ(b.completion_time_s, r.completion_time_s);
  EXPECT_EQ(b.crash_distance_m, r.crash_distance_m);
  EXPECT_EQ(b.rendezvous_attempts, r.rendezvous_attempts);
  EXPECT_EQ(b.control_retries, r.control_retries);
  EXPECT_EQ(b.arq_retransmissions, r.arq_retransmissions);
  EXPECT_EQ(b.link_outages, r.link_outages);
  EXPECT_EQ(b.gps_dropouts, r.gps_dropouts);
}

TEST(Codec, TrialResultRejectsMissingField) {
  io::Json j = Codec<fault::TrialResult>::encode(fault::TrialResult{});
  io::Json stripped = io::Json::object();
  for (const auto& key : {"d_opt_m", "crashed"}) stripped.set(key, *j.find(key));
  EXPECT_THROW(Codec<fault::TrialResult>::decode(stripped), CodecError);
  EXPECT_THROW(Codec<fault::TrialResult>::decode(io::Json(3.0)), CodecError);
}

// ---- checkpoint file strictness --------------------------------------------

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }
  void write(const std::string& text) const {
    std::FILE* fp = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    std::fwrite(text.data(), 1, text.size(), fp);
    std::fclose(fp);
  }

 private:
  std::string path_;
};

CheckpointFile sample_checkpoint() {
  CheckpointFile f;
  f.name = "codec_test";
  f.seed = 0xDEADBEEFCAFEF00DULL;
  f.trials = 8;
  f.points = 2;
  f.chunk = 4;
  f.grid = grid_signature(Sweep{}.axis("x", {1.0, 2.0}).cartesian());
  const double xs[] = {0.5, std::numeric_limits<double>::infinity(), -1.0, 2.0};
  ChunkRecord rec;
  rec.point = 1;
  rec.start = 4;
  rec.end = 8;
  rec.results = encode_range<double>(xs, 4);
  TrialFailure fail;
  fail.kind = TrialFailure::Kind::kTimedOut;
  fail.point = 1;
  fail.trial = 6;
  fail.seed = 0xFFFFFFFFFFFFFFFFULL;
  fail.quarantined = true;
  fail.type = "skyferry::exp::TrialCancelled";
  fail.what = "watchdog";
  fail.replay_cmd = "bench --replay-trial 18446744073709551615";
  rec.failures.push_back(fail);
  f.add_chunk(std::move(rec));
  return f;
}

TEST(Checkpoint, SaveLoadRoundTripsHeaderChunksAndFailures) {
  const TempFile file("ckpt_roundtrip.json");
  const CheckpointFile f = sample_checkpoint();
  f.save_atomic(file.path());
  const CheckpointFile b = CheckpointFile::load(file.path());
  EXPECT_EQ(b.name, f.name);
  EXPECT_EQ(b.seed, f.seed);
  EXPECT_EQ(b.trials, f.trials);
  EXPECT_EQ(b.points, f.points);
  EXPECT_EQ(b.chunk, f.chunk);
  EXPECT_EQ(b.grid, f.grid);
  ASSERT_EQ(b.chunks().size(), 1u);
  EXPECT_TRUE(b.has_chunk(1, 4));
  EXPECT_EQ(b.completed_trials(), 4u);
  double out[4];
  decode_range<double>(b.chunks()[0].results, out, 4);
  EXPECT_EQ(out[1], std::numeric_limits<double>::infinity());
  ASSERT_EQ(b.chunks()[0].failures.size(), 1u);
  EXPECT_EQ(b.chunks()[0].failures[0].seed, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(b.chunks()[0].failures[0].kind, TrialFailure::Kind::kTimedOut);
}

TEST(Checkpoint, EmptyGridAndZeroChunksRoundTrip) {
  const TempFile file("ckpt_empty.json");
  CheckpointFile f;
  f.name = "empty";
  f.seed = 1;
  f.trials = 4;
  f.points = 0;  // empty sweep: header-only checkpoint
  f.chunk = 2;
  f.grid = grid_signature({});
  f.save_atomic(file.path());
  const CheckpointFile b = CheckpointFile::load(file.path());
  EXPECT_EQ(b.points, 0u);
  EXPECT_EQ(b.chunks().size(), 0u);
  EXPECT_EQ(b.completed_trials(), 0u);
}

TEST(Checkpoint, TruncatedFileIsRejectedWithClearError) {
  const TempFile file("ckpt_truncated.json");
  const std::string full = sample_checkpoint().to_json().dump(2);
  // Cut the journal at several points — every prefix must be rejected,
  // not half-resumed.
  for (const std::size_t cut : {full.size() / 4, full.size() / 2, full.size() - 2}) {
    file.write(full.substr(0, cut));
    try {
      (void)CheckpointFile::load(file.path());
      FAIL() << "truncation at " << cut << " was accepted";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find("truncated or not valid JSON"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find(file.path()), std::string::npos);
    }
  }
}

TEST(Checkpoint, MissingFileAndGarbageAreRejected) {
  EXPECT_THROW((void)CheckpointFile::load("/nonexistent/dir/nothing.ckpt.json"),
               CheckpointError);
  const TempFile file("ckpt_garbage.json");
  file.write("not json at all {{{");
  EXPECT_THROW((void)CheckpointFile::load(file.path()), CheckpointError);
  file.write("{\"some\": \"object\"}");  // valid JSON, wrong shape
  EXPECT_THROW((void)CheckpointFile::load(file.path()), CheckpointError);
  file.write("{\"skyferry_checkpoint\": 99}");  // future format version
  EXPECT_THROW((void)CheckpointFile::load(file.path()), CheckpointError);
}

TEST(Checkpoint, TamperedRecordsAreRejected) {
  const auto tampered = [](const char* mutate_key, io::Json value) {
    io::Json j = sample_checkpoint().to_json();
    j.set(mutate_key, std::move(value));
    return CheckpointFile::from_json(j);
  };
  EXPECT_THROW((void)tampered("trials", io::Json(0)), CheckpointError);
  EXPECT_THROW((void)tampered("chunk", io::Json(2.5)), CheckpointError);
  EXPECT_THROW((void)tampered("seed", io::Json("12junk")), CheckpointError);
  EXPECT_THROW((void)tampered("chunks", io::Json("nope")), CheckpointError);
  // A chunk whose results array disagrees with its [start, end) range.
  io::Json j = sample_checkpoint().to_json();
  io::Json chunks = io::Json::array();
  io::Json cj = io::Json::object();
  cj.set("point", 0);
  cj.set("start", 0);
  cj.set("end", 4);
  const double one[] = {1.0};
  cj.set("results", encode_range<double>(one, 1));
  cj.set("failures", io::Json::array());
  chunks.push_back(std::move(cj));
  j.set("chunks", std::move(chunks));
  EXPECT_THROW((void)CheckpointFile::from_json(j), CheckpointError);
}

TEST(Checkpoint, DuplicateAndOutOfRangeChunksAreRejected) {
  CheckpointFile f = sample_checkpoint();
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  ChunkRecord dup;
  dup.point = 1;
  dup.start = 4;
  dup.end = 8;
  dup.results = encode_range<double>(xs, 4);
  EXPECT_THROW(f.add_chunk(dup), CheckpointError);
  ChunkRecord off;
  off.point = 7;  // grid has 2 points
  off.start = 0;
  off.end = 4;
  off.results = encode_range<double>(xs, 4);
  EXPECT_THROW(f.add_chunk(off), CheckpointError);
  ChunkRecord past;
  past.point = 0;
  past.start = 6;
  past.end = 10;  // trials = 8
  past.results = encode_range<double>(xs, 4);
  EXPECT_THROW(f.add_chunk(past), CheckpointError);
}

TEST(Checkpoint, RequireMatchRejectsForeignCampaigns) {
  const CheckpointFile f = sample_checkpoint();
  EXPECT_NO_THROW(f.require_match(f.seed, f.trials, f.points, f.grid));
  EXPECT_THROW(f.require_match(f.seed + 1, f.trials, f.points, f.grid), CheckpointError);
  EXPECT_THROW(f.require_match(f.seed, f.trials + 1, f.points, f.grid), CheckpointError);
  EXPECT_THROW(f.require_match(f.seed, f.trials, f.points + 1, f.grid), CheckpointError);
  EXPECT_THROW(f.require_match(f.seed, f.trials, f.points, "0000000000000000"),
               CheckpointError);
}

TEST(Checkpoint, GridSignatureTracksLabelsNotObjectIdentity) {
  const auto a = Sweep{}.axis("rho", {1e-3, 2e-3}).cartesian();
  const auto b = Sweep{}.axis("rho", {1e-3, 2e-3}).cartesian();
  const auto c = Sweep{}.axis("rho", {1e-3, 3e-3}).cartesian();
  EXPECT_EQ(grid_signature(a), grid_signature(b));
  EXPECT_NE(grid_signature(a), grid_signature(c));
  EXPECT_EQ(grid_signature({}).size(), 16u);
}

}  // namespace
}  // namespace skyferry::exp
