#include "exp/runner.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::exp {
namespace {

// A miniature stochastic trial: a few hundred draws reduced to one
// number, fully determined by the forked seed.
double mini_trial(const Point& p, std::uint64_t seed) {
  sim::Rng rng(seed);
  double acc = p.has("offset") ? p.at("offset") : 0.0;
  for (int i = 0; i < 300; ++i) acc += rng.uniform();
  return acc;
}

RunnerConfig cfg_with_threads(int threads) {
  RunnerConfig cfg;
  cfg.threads = threads;
  cfg.trials = 64;
  cfg.seed = 2024;
  return cfg;
}

TEST(Runner, BitIdenticalResultsAcrossThreadCounts) {
  const auto points = Sweep{}.axis("offset", {0.0, 10.0, 20.0}).cartesian();
  const auto serial = Runner(cfg_with_threads(1)).run(points, mini_trial);
  for (int threads : {2, 8}) {
    const auto parallel = Runner(cfg_with_threads(threads)).run(points, mini_trial);
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t p = 0; p < serial.results.size(); ++p) {
      ASSERT_EQ(parallel.results[p].size(), serial.results[p].size());
      for (std::size_t t = 0; t < serial.results[p].size(); ++t) {
        // Bit-identical, not approximately equal: same forked seed, same
        // slot, regardless of which worker ran it.
        EXPECT_EQ(parallel.results[p][t], serial.results[p][t])
            << "point " << p << " trial " << t << " threads " << threads;
      }
    }
  }
}

TEST(Runner, ChunkSizeDoesNotChangeResults) {
  const auto points = Sweep{}.axis("offset", {0.0, 5.0}).cartesian();
  auto cfg = cfg_with_threads(4);
  const auto a = Runner(cfg).run(points, mini_trial);
  cfg.chunk = 1;
  const auto b = Runner(cfg).run(points, mini_trial);
  cfg.chunk = 1000;  // bigger than trials: one task per point
  const auto c = Runner(cfg).run(points, mini_trial);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.results, c.results);
}

TEST(Runner, TrialSeedsDependOnPointAndTrialIndex) {
  RunnerConfig cfg;
  cfg.threads = 2;
  cfg.trials = 8;
  cfg.seed = 7;
  const auto points = Sweep{}.axis("x", {1.0, 2.0}).cartesian();
  const auto out = Runner(cfg).run(
      points, [](const Point&, std::uint64_t seed) { return seed; });
  // All 16 seeds distinct, and they match sim::fork directly.
  for (std::size_t p = 0; p < 2; ++p)
    for (std::size_t t = 0; t < 8; ++t)
      EXPECT_EQ(out.results[p][t], sim::fork(7, p, t));
}

TEST(Runner, ExceptionInTrialPropagatesUnderFailFast) {
  RunnerConfig cfg;
  cfg.threads = 4;
  cfg.trials = 32;
  cfg.fail_fast = true;
  const auto points = Sweep{}.cartesian();
  Runner runner(cfg);
  EXPECT_THROW(runner.run(points,
                          [](const Point&, std::uint64_t seed) -> int {
                            if (seed % 3 == 0) throw std::runtime_error("boom");
                            return 1;
                          }),
               std::runtime_error);
}

TEST(Runner, ExceptionsAreRecordedNotThrownByDefault) {
  RunnerConfig cfg;
  cfg.threads = 4;
  cfg.trials = 32;
  cfg.seed = 11;
  const auto points = Sweep{}.cartesian();
  const auto out = Runner(cfg).run(points, [](const Point&, std::uint64_t seed) -> int {
    if (seed % 3 == 0) throw std::runtime_error("boom");
    return 1;
  });
  // Every failing seed got a record, the rest kept their results.
  int expect_failed = 0;
  for (std::size_t t = 0; t < 32; ++t) {
    const bool fails = sim::fork(11, 0, t) % 3 == 0;
    expect_failed += fails ? 1 : 0;
    EXPECT_EQ(out.results[0][t], fails ? 0 : 1) << "trial " << t;
  }
  ASSERT_GT(expect_failed, 0);  // the seed choice must actually exercise failures
  EXPECT_EQ(out.stats.failed_trials, expect_failed);
  EXPECT_EQ(out.stats.crashed, expect_failed);
  EXPECT_EQ(out.stats.quarantined, expect_failed);
  ASSERT_EQ(out.stats.failures.size(), static_cast<std::size_t>(expect_failed));
  // Records are sorted by (point, trial), carry the forked seed and the
  // demangled type, and the slot is flagged as quarantined.
  for (std::size_t i = 1; i < out.stats.failures.size(); ++i)
    EXPECT_LT(out.stats.failures[i - 1].trial, out.stats.failures[i].trial);
  const TrialFailure& f = out.stats.failures[0];
  EXPECT_EQ(f.seed, sim::fork(11, 0, static_cast<std::uint64_t>(f.trial)));
  EXPECT_EQ(f.type, "std::runtime_error");
  EXPECT_EQ(f.what, "boom");
  EXPECT_TRUE(f.quarantined);
  EXPECT_NE(out.stats.summary_line().find("failed"), std::string::npos);
  EXPECT_NE(out.stats.to_json().find("\"failures\""), std::string::npos);
}

TEST(Runner, StatsAreFilledIn) {
  RunnerConfig cfg;
  cfg.threads = 2;
  cfg.trials = 16;
  cfg.seed = 99;
  const auto points = Sweep{}.axis("offset", {0.0, 1.0}).cartesian();
  const auto out = Runner(cfg).run(points, mini_trial);
  const RunStats& st = out.stats;
  EXPECT_EQ(st.threads, 2);
  EXPECT_EQ(st.points, 2u);
  EXPECT_EQ(st.trials_per_point, 16);
  EXPECT_EQ(st.seed, 99u);
  EXPECT_GT(st.wall_s, 0.0);
  EXPECT_GT(st.trials_per_s, 0.0);
  EXPECT_GE(st.occupancy, 0.0);
  ASSERT_EQ(st.per_point.size(), 2u);
  EXPECT_EQ(st.per_point[1].label, "offset=1");
  EXPECT_GE(st.per_point[0].p99_ms, st.per_point[0].p50_ms);
  // JSON sidecar includes the headline counters.
  const std::string json = st.to_json();
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\""), std::string::npos);
  EXPECT_NE(json.find("\"speedup_vs_serial\""), std::string::npos);
  EXPECT_NE(json.find("\"per_point\""), std::string::npos);
}

TEST(Runner, RunTrialsIsSinglePointSugar) {
  RunnerConfig cfg;
  cfg.threads = 2;
  cfg.trials = 10;
  cfg.seed = 5;
  const auto out = Runner(cfg).run_trials(
      [](const Point& p, std::uint64_t seed) { return static_cast<double>(seed + p.index); });
  ASSERT_EQ(out.results.size(), 1u);
  ASSERT_EQ(out.results[0].size(), 10u);
  for (std::size_t t = 0; t < 10; ++t)
    EXPECT_DOUBLE_EQ(out.results[0][t], static_cast<double>(sim::fork(5, 0, t)));
}

}  // namespace
}  // namespace skyferry::exp
