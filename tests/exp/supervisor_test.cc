// Supervised-campaign behavior: crash capture with bounded retries and
// quarantine, the cooperative soft-deadline watchdog, fail-fast, the
// interrupt flag, and checkpoint/resume merging to a bit-identical grid
// for any thread count.
#include "exp/supervisor.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::exp {
namespace {

double mini_trial(const Point& p, std::uint64_t seed) {
  sim::Rng rng(seed);
  double acc = p.has("offset") ? p.at("offset") : 0.0;
  for (int i = 0; i < 200; ++i) acc += rng.uniform();
  return acc;
}

RunnerConfig base_cfg(int threads, int trials = 64, std::uint64_t seed = 909) {
  RunnerConfig cfg;
  cfg.threads = threads;
  cfg.trials = trials;
  cfg.seed = seed;
  return cfg;
}

class TempCheckpoint {
 public:
  explicit TempCheckpoint(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~TempCheckpoint() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SupervisedRunner, MatchesPlainRunnerOnCleanTrials) {
  const auto points = Sweep{}.axis("offset", {0.0, 10.0}).cartesian();
  const auto plain = Runner(base_cfg(4)).run(points, mini_trial);
  const auto supervised = SupervisedRunner(base_cfg(4)).run(points, mini_trial);
  EXPECT_EQ(supervised.results, plain.results);
  EXPECT_EQ(supervised.report.failures.size(), 0u);
  EXPECT_EQ(supervised.report.quarantined, 0);
  EXPECT_EQ(supervised.report.completed, supervised.report.scheduled);
  EXPECT_FALSE(supervised.interrupted);
}

TEST(SupervisedRunner, QuarantinesExactlyThePoisonedSeeds) {
  // Deterministic poison: ~6% of forked seeds always throw, so retries
  // never save them. The campaign must complete, quarantine exactly those
  // trials, and keep every other slot bit-identical to a clean run.
  const auto points = Sweep{}.axis("offset", {0.0, 10.0}).cartesian();
  const auto poisoned = [](const Point& p, std::uint64_t seed) -> double {
    if (seed % 16 == 0) throw std::invalid_argument("poisoned seed");
    return mini_trial(p, seed);
  };
  SupervisorOptions so;
  so.max_retries = 2;
  so.replay_prefix = "supervisor_test --replay";
  const auto out = SupervisedRunner(base_cfg(8), so).run(points, poisoned);
  const auto clean = Runner(base_cfg(1)).run(points, mini_trial);
  int poisoned_count = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (int t = 0; t < 64; ++t) {
      const bool bad = sim::fork(909, p, static_cast<std::uint64_t>(t)) % 16 == 0;
      poisoned_count += bad ? 1 : 0;
      EXPECT_EQ(out.report.is_quarantined(p, t), bad) << "point " << p << " trial " << t;
      if (bad) {
        EXPECT_EQ(out.results[p][static_cast<std::size_t>(t)], 0.0);
      } else {
        EXPECT_EQ(out.results[p][static_cast<std::size_t>(t)],
                  clean.results[p][static_cast<std::size_t>(t)]);
      }
    }
  }
  ASSERT_GT(poisoned_count, 0);
  EXPECT_EQ(out.report.quarantined, poisoned_count);
  EXPECT_EQ(out.report.crashed, poisoned_count);
  EXPECT_EQ(out.report.completed, out.report.scheduled - poisoned_count);
  // Every attempt was made: 1 + max_retries, and each record carries a
  // replay command ending in the forked seed.
  for (const auto& f : out.report.failures) {
    EXPECT_EQ(f.attempts, 3);
    EXPECT_TRUE(f.quarantined);
    EXPECT_EQ(f.type, "std::invalid_argument");
    EXPECT_EQ(f.replay_cmd, "supervisor_test --replay " + std::to_string(f.seed));
  }
  // Taxonomy is folded into the stats sidecar too.
  EXPECT_EQ(out.stats.quarantined, poisoned_count);
  EXPECT_EQ(out.stats.retried, poisoned_count * 2);
}

TEST(SupervisedRunner, RetryRescuesFlakyTrials) {
  // Fails on first attempt for every 8th seed, succeeds on the second:
  // with one retry nothing is quarantined and the grid is complete.
  std::atomic<int> first_attempts{0};
  struct Seen {
    std::atomic<bool> failed_once[64] = {};
  };
  Seen seen;
  const auto flaky = [&](const Point&, std::uint64_t seed) -> double {
    const auto t = static_cast<std::size_t>(seed % 64);
    if (seed % 8 == 0 && !seen.failed_once[t].exchange(true)) {
      first_attempts.fetch_add(1);
      throw std::runtime_error("transient");
    }
    return static_cast<double>(seed);
  };
  SupervisorOptions so;
  so.max_retries = 1;
  const auto out = SupervisedRunner(base_cfg(4), so).run(Sweep{}.cartesian(), flaky);
  EXPECT_EQ(out.report.quarantined, 0);
  EXPECT_GT(first_attempts.load(), 0);
  EXPECT_EQ(out.report.retried, first_attempts.load());
  EXPECT_EQ(static_cast<int>(out.report.failures.size()), first_attempts.load());
  for (const auto& f : out.report.failures) {
    EXPECT_FALSE(f.quarantined);  // rescued: result kept, crash recorded
    EXPECT_EQ(f.attempts, 2);
  }
  for (int t = 0; t < 64; ++t)
    EXPECT_EQ(out.results[0][static_cast<std::size_t>(t)],
              static_cast<double>(sim::fork(909, 0, static_cast<std::uint64_t>(t))));
}

TEST(SupervisedRunner, WatchdogCancelsCooperativeHangs) {
  // One specific trial hangs until cancelled; the watchdog must flag it,
  // the trial observes its token, and the campaign completes with exactly
  // that trial quarantined as timed-out — no deadlock.
  const std::uint64_t hung_seed = sim::fork(909, 0, 13);
  const auto hangs = [&](const Point&, std::uint64_t seed, const CancelToken& token) -> double {
    if (seed == hung_seed) {
      while (true) {
        poll_cancel(token);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return static_cast<double>(seed % 100);
  };
  SupervisorOptions so;
  so.trial_timeout_ms = 50.0;
  so.max_retries = 3;  // must NOT be applied to a hang
  const auto out = SupervisedRunner(base_cfg(4, 32), so).run(Sweep{}.cartesian(), hangs);
  EXPECT_EQ(out.report.quarantined, 1);
  EXPECT_EQ(out.report.timed_out, 1);
  EXPECT_EQ(out.report.crashed, 0);
  ASSERT_EQ(out.report.failures.size(), 1u);
  const TrialFailure& f = out.report.failures[0];
  EXPECT_EQ(f.trial, 13);
  EXPECT_EQ(f.seed, hung_seed);
  EXPECT_EQ(f.kind, TrialFailure::Kind::kTimedOut);
  EXPECT_EQ(f.attempts, 1);  // hangs are not retried
  EXPECT_TRUE(f.quarantined);
  // All other trials kept their results.
  for (int t = 0; t < 32; ++t)
    if (t != 13)
      EXPECT_EQ(out.results[0][static_cast<std::size_t>(t)],
                static_cast<double>(sim::fork(909, 0, static_cast<std::uint64_t>(t)) % 100));
}

TEST(SupervisedRunner, SlowButFinishingTrialIsFlaggedNotQuarantined) {
  // A trial that overruns the deadline but completes keeps its result —
  // wall-clock jitter must never change the grid.
  const std::uint64_t slow_seed = sim::fork(909, 0, 3);
  const auto slow = [&](const Point&, std::uint64_t seed, const CancelToken&) -> double {
    if (seed == slow_seed) std::this_thread::sleep_for(std::chrono::milliseconds(40));
    return static_cast<double>(seed);
  };
  SupervisorOptions so;
  so.trial_timeout_ms = 5.0;
  const auto out = SupervisedRunner(base_cfg(4, 16), so).run(Sweep{}.cartesian(), slow);
  EXPECT_EQ(out.report.quarantined, 0);
  EXPECT_GT(out.report.timed_out, 0);
  for (const auto& f : out.report.failures) {
    EXPECT_FALSE(f.quarantined);
    EXPECT_EQ(f.kind, TrialFailure::Kind::kTimedOut);
  }
  for (int t = 0; t < 16; ++t)
    EXPECT_EQ(out.results[0][static_cast<std::size_t>(t)],
              static_cast<double>(sim::fork(909, 0, static_cast<std::uint64_t>(t))));
}

TEST(SupervisedRunner, FailFastRethrowsAndSkipsRetries) {
  SupervisorOptions so;
  so.fail_fast = true;
  so.max_retries = 5;
  SupervisedRunner runner(base_cfg(4, 32), so);
  EXPECT_THROW(runner.run(Sweep{}.cartesian(),
                          [](const Point&, std::uint64_t seed) -> int {
                            if (seed % 4 == 0) throw std::runtime_error("boom");
                            return 1;
                          }),
               std::runtime_error);
}

TEST(SupervisedRunner, CheckpointResumeIsBitIdenticalAcrossThreadCounts) {
  const auto points = Sweep{}.axis("offset", {0.0, 5.0, 10.0}).cartesian();
  const auto reference = SupervisedRunner(base_cfg(1, 48)).run(points, mini_trial);

  for (const int resume_threads : {1, 8}) {
    TempCheckpoint ckpt("supervisor_resume_" + std::to_string(resume_threads) + ".json");
    // Phase 1: run with a checkpoint and an interrupt already pending
    // after a few chunks — simulates a kill partway through.
    SupervisorOptions so;
    so.checkpoint_path = ckpt.path();
    so.handle_signals = false;  // drive the flag by hand
    so.flush_every = 1;
    {
      std::atomic<int> ran{0};
      const auto interrupting = [&](const Point& p, std::uint64_t seed) {
        if (ran.fetch_add(1) == 40) request_interrupt();
        return mini_trial(p, seed);
      };
      const auto partial = SupervisedRunner(base_cfg(2, 48), so).run(points, interrupting);
      clear_interrupt();
      EXPECT_TRUE(partial.interrupted);
      // Something was journaled, but not everything.
      const CheckpointFile f = CheckpointFile::load(ckpt.path());
      EXPECT_GT(f.completed_trials(), 0u);
      EXPECT_LT(f.completed_trials(), 3u * 48u);
    }
    // Phase 2: resume at a different thread count; the merged grid and
    // the completed-trial accounting must match an uninterrupted run.
    so.resume = true;
    const auto resumed =
        SupervisedRunner(base_cfg(resume_threads, 48), so).run(points, mini_trial);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_GT(resumed.report.resumed_chunks, 0u);
    EXPECT_EQ(resumed.results, reference.results) << "threads " << resume_threads;
    EXPECT_EQ(resumed.report.quarantined, 0);
    EXPECT_EQ(resumed.report.completed, resumed.report.scheduled);
  }
}

TEST(SupervisedRunner, ResumeCarriesFailureRecordsThroughTheJournal) {
  // Poisoned trials quarantined before the kill must still be reported
  // after the resume — the journal carries their failure records.
  const auto points = Sweep{}.cartesian();
  const std::uint64_t bad_seed = sim::fork(909, 0, 5);
  const auto poisoned = [&](const Point& p, std::uint64_t seed) -> double {
    if (seed == bad_seed) throw std::runtime_error("always");
    return mini_trial(p, seed);
  };
  TempCheckpoint ckpt("supervisor_failure_journal.json");
  SupervisorOptions so;
  so.checkpoint_path = ckpt.path();
  so.handle_signals = false;
  so.flush_every = 1;
  so.max_retries = 0;
  const auto first = SupervisedRunner(base_cfg(1, 32), so).run(points, poisoned);
  ASSERT_EQ(first.report.quarantined, 1);
  // Resume over a complete journal: nothing reruns (the trial fn would
  // now succeed), yet the failure record and taxonomy survive.
  so.resume = true;
  const auto resumed = SupervisedRunner(base_cfg(4, 32), so).run(points, mini_trial);
  EXPECT_EQ(resumed.report.resumed_chunks, CheckpointFile::load(ckpt.path()).chunks().size());
  ASSERT_EQ(resumed.report.failures.size(), 1u);
  EXPECT_EQ(resumed.report.failures[0].seed, bad_seed);
  EXPECT_EQ(resumed.report.quarantined, 1);
  EXPECT_TRUE(resumed.report.is_quarantined(0, 5));
  EXPECT_EQ(resumed.results, first.results);
}

TEST(SupervisedRunner, ResumeRejectsForeignCheckpoint) {
  TempCheckpoint ckpt("supervisor_foreign.json");
  SupervisorOptions so;
  so.checkpoint_path = ckpt.path();
  so.handle_signals = false;
  const auto points = Sweep{}.axis("offset", {0.0, 1.0}).cartesian();
  (void)SupervisedRunner(base_cfg(2, 16), so).run(points, mini_trial);
  so.resume = true;
  // Different seed -> CheckpointError, not a silent mis-merge.
  SupervisedRunner other(base_cfg(2, 16, 1234), so);
  EXPECT_THROW(other.run(points, mini_trial), CheckpointError);
  // Different grid -> CheckpointError too.
  SupervisedRunner same_seed(base_cfg(2, 16), so);
  const auto other_points = Sweep{}.axis("offset", {0.0, 2.0}).cartesian();
  EXPECT_THROW(same_seed.run(other_points, mini_trial), CheckpointError);
}

TEST(SupervisedRunner, InterruptFlagRoundTrip) {
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
  request_interrupt(15);
  EXPECT_TRUE(interrupt_requested());
  EXPECT_EQ(interrupt_signal(), 15);
  clear_interrupt();
  EXPECT_FALSE(interrupt_requested());
}

TEST(SupervisedRunner, CampaignReportSummaryLineMentionsTheTaxonomy) {
  CampaignReport r;
  r.scheduled = 100;
  r.completed = 97;
  r.crashed = 2;
  r.timed_out = 1;
  r.quarantined = 3;
  r.retried = 2;
  r.interrupted = true;
  r.resumed_chunks = 4;
  const std::string line = r.summary_line();
  EXPECT_NE(line.find("crashed 2"), std::string::npos);
  EXPECT_NE(line.find("timed-out 1"), std::string::npos);
  EXPECT_NE(line.find("quarantined 3"), std::string::npos);
  EXPECT_NE(line.find("resumed 4 chunks"), std::string::npos);
  EXPECT_NE(line.find("INTERRUPTED"), std::string::npos);
}

}  // namespace
}  // namespace skyferry::exp
