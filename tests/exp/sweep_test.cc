#include "exp/sweep.h"

#include <gtest/gtest.h>

namespace skyferry::exp {
namespace {

TEST(Sweep, EmptySweepExpandsToOneAxislessPoint) {
  const auto pts = Sweep{}.cartesian();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].index, 0u);
  EXPECT_TRUE(pts[0].coords.empty());
  EXPECT_EQ(pts[0].label(), "");
}

TEST(Sweep, CartesianFirstAxisSlowest) {
  const auto pts = Sweep{}
                       .axis("rho", {1.0, 2.0})
                       .axis("d", {10.0, 20.0, 30.0})
                       .cartesian();
  ASSERT_EQ(pts.size(), 6u);
  // rho held while d cycles.
  EXPECT_DOUBLE_EQ(pts[0].at("rho"), 1.0);
  EXPECT_DOUBLE_EQ(pts[0].at("d"), 10.0);
  EXPECT_DOUBLE_EQ(pts[2].at("rho"), 1.0);
  EXPECT_DOUBLE_EQ(pts[2].at("d"), 30.0);
  EXPECT_DOUBLE_EQ(pts[3].at("rho"), 2.0);
  EXPECT_DOUBLE_EQ(pts[3].at("d"), 10.0);
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(pts[i].index, i);
}

TEST(Sweep, ZippedTakesElementwiseTuples) {
  const auto pts = Sweep{}
                       .axis("mdata", {28.0, 56.2})
                       .axis("speed", {10.0, 4.5})
                       .zipped();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[1].at("mdata"), 56.2);
  EXPECT_DOUBLE_EQ(pts[1].at("speed"), 4.5);
}

TEST(Sweep, ZippedRejectsUnequalLengths) {
  Sweep s;
  s.axis("a", {1.0, 2.0}).axis("b", {1.0, 2.0, 3.0});
  EXPECT_THROW(s.zipped(), SweepError);
  EXPECT_NO_THROW(s.cartesian());
}

TEST(Sweep, RejectsEmptyAxisAndDuplicateName) {
  Sweep s;
  EXPECT_THROW(s.axis("a", {}), SweepError);
  s.axis("a", {1.0});
  EXPECT_THROW(s.axis("a", {2.0}), SweepError);
}

TEST(Sweep, PointAtUnknownAxisThrows) {
  const auto pts = Sweep{}.axis("rho", {1.0}).cartesian();
  EXPECT_TRUE(pts[0].has("rho"));
  EXPECT_FALSE(pts[0].has("nope"));
  EXPECT_THROW((void)pts[0].at("nope"), SweepError);
}

TEST(Sweep, LabelNamesEveryAxis) {
  const auto pts = Sweep{}.axis("rho", {0.001}).axis("d", {60.0}).cartesian();
  EXPECT_EQ(pts[0].label(), "rho=0.001 d=60");
}

}  // namespace
}  // namespace skyferry::exp
