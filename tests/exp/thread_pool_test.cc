#include "exp/thread_pool.h"

#include <atomic>
#include <latch>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::exp {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-5), 1);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("trial exploded"); });
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "trial exploded");
          throw;
        }
      },
      std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  auto g = pool.submit([] { return 7; });
  EXPECT_EQ(g.get(), 7);
}

TEST(ThreadPool, AllSubmittedTasksRun) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> fs;
    for (int i = 0; i < 500; ++i)
      fs.push_back(pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); }));
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, TasksQueuedAtDestructionStillComplete) {
  std::atomic<int> count{0};
  std::vector<std::future<void>> fs;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      fs.push_back(pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); }));
    // Destructor must drain the queue before joining.
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WorkersRunTrulyConcurrently) {
  // Two tasks that each wait for the other can only finish if two
  // workers execute them at the same time (deadlocks under 1 worker).
  ThreadPool pool(2);
  std::latch rendezvous(2);
  auto meet = [&rendezvous] {
    rendezvous.arrive_and_wait();
    return true;
  };
  auto a = pool.submit(meet);
  auto b = pool.submit(meet);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

}  // namespace
}  // namespace skyferry::exp
