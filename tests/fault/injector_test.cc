#include "fault/injector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skyferry::fault {
namespace {

TEST(FaultPlan, NonePlanInjectsNothing) {
  sim::Simulator sim;
  FaultInjector inj(sim, FaultPlan::none());
  inj.start(1e4);
  sim.run();
  EXPECT_TRUE(inj.log().empty());
  EXPECT_TRUE(inj.link_up());
  EXPECT_TRUE(inj.gps_up());
  EXPECT_FALSE(inj.drop_control_message());
  EXPECT_TRUE(std::isinf(inj.sample_crash_distance(0)));
}

TEST(FaultInjector, LinkOutagesAlternateAndLog) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.link_outage = {1.0 / 20.0, 2.0};  // ~every 20 s, ~2 s fades
  plan.seed = 99;
  FaultInjector inj(sim, plan);
  int downs = 0, ups = 0;
  bool last_up = true;
  inj.on_link_change([&](bool up, double) {
    // Strict alternation: every flip inverts the previous state.
    EXPECT_NE(up, last_up);
    last_up = up;
    downs += up ? 0 : 1;
    ups += up ? 1 : 0;
  });
  inj.start(2000.0);
  sim.run();
  EXPECT_GT(downs, 10);  // ~100 expected at rate 1/20 over 2000 s
  EXPECT_NEAR(static_cast<double>(ups), static_cast<double>(downs), 1.0);
  // Every observer flip also landed in the log.
  EXPECT_EQ(inj.log().size(), static_cast<std::size_t>(downs + ups));
}

TEST(FaultInjector, OutageProcessIsSeedDeterministic) {
  auto trace = [](std::uint64_t seed) {
    sim::Simulator sim;
    FaultPlan plan;
    plan.link_outage = {0.05, 1.5};
    plan.seed = seed;
    FaultInjector inj(sim, plan);
    inj.start(500.0);
    sim.run();
    std::vector<double> ts;
    for (const auto& e : inj.log()) ts.push_back(e.t_s);
    return ts;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(FaultInjector, ControlLossMatchesProbability) {
  sim::Simulator sim;
  FaultPlan plan;
  plan.control_loss.loss_probability = 0.3;
  plan.seed = 4242;
  FaultInjector inj(sim, plan);
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) lost += inj.drop_control_message() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.3, 0.02);
  EXPECT_EQ(inj.log().size(), static_cast<std::size_t>(lost));
}

TEST(FaultInjector, CrashDistancePerUavIsIndependentAndStable) {
  sim::Simulator sim;
  FaultPlan plan = FaultPlan::crashes_only(1e-3);
  plan.seed = 5;
  FaultInjector inj(sim, plan);
  const double d0 = inj.sample_crash_distance(0);
  const double d1 = inj.sample_crash_distance(1);
  EXPECT_NE(d0, d1);
  // Re-draw of the same UAV gives the same distance: one failure point
  // per UAV per trial, independent of call order.
  EXPECT_DOUBLE_EQ(inj.sample_crash_distance(0), d0);
  EXPECT_DOUBLE_EQ(inj.sample_crash_distance(1), d1);
  EXPECT_GT(d0, 0.0);
}

TEST(FaultInjector, GpsDropoutsIndependentOfLinkStream) {
  // Enabling GPS dropouts must not perturb the link-outage draw sequence.
  auto link_trace = [](bool with_gps) {
    sim::Simulator sim;
    FaultPlan plan;
    plan.link_outage = {0.05, 1.0};
    if (with_gps) plan.gps_dropout = {0.02, 2.0};
    plan.seed = 31;
    FaultInjector inj(sim, plan);
    inj.start(500.0);
    sim.run();
    std::vector<double> ts;
    for (const auto& e : inj.log()) {
      if (e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp) ts.push_back(e.t_s);
    }
    return ts;
  };
  EXPECT_EQ(link_trace(false), link_trace(true));
}

TEST(FaultKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(FaultKind::kUavCrash), "uav-crash");
  EXPECT_STREQ(to_string(FaultKind::kLinkDown), "link-down");
  EXPECT_STREQ(to_string(FaultKind::kControlLoss), "control-loss");
}

}  // namespace
}  // namespace skyferry::fault
