// Seeded link-chaos layer (fault/link_chaos.h): determinism of the
// per-link streams and the fleet-wide storm schedule, long-run epoch
// fractions against the configured renewal statistics, config
// validation, and the chaos axis of fault::MissionSim — an empty plan
// is bit-identical to the pre-chaos trial, a hostile plan surfaces in
// the chaos counters and the failure taxonomy.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fault/link_chaos.h"
#include "fault/mission_sim.h"
#include "sim/rng.h"

namespace skyferry {
namespace {

using fault::LinkChaosConfig;
using fault::LinkChaosStream;
using fault::LinkFaultPlan;
using fault::LinkStormConfig;
using fault::StormSchedule;

LinkChaosConfig all_axes() {
  LinkChaosConfig c;
  c.blackout_rate_per_hour = 60.0;
  c.blackout_mean_s = 30.0;
  c.degrade_rate_per_hour = 40.0;
  c.degrade_mean_s = 45.0;
  c.degrade_rate_scale = 0.25;
  c.setup_fail_p = 0.3;
  return c;
}

TEST(LinkChaos, DefaultConfigIsNoChaos) {
  EXPECT_FALSE(LinkChaosConfig{}.any());
  EXPECT_FALSE(LinkStormConfig{}.any());
  EXPECT_FALSE(LinkFaultPlan{}.any());
  EXPECT_FALSE(LinkFaultPlan::none().any());
  EXPECT_TRUE(LinkFaultPlan::harsh(3).any());
  EXPECT_NO_THROW(LinkFaultPlan::harsh(3).validate());
}

TEST(LinkChaos, DisabledAxesNeverFire) {
  LinkChaosStream s({}, 0xabcdef);
  for (double t = 0.0; t < 5000.0; t += 7.3) {
    EXPECT_FALSE(s.blacked_out(t));
    EXPECT_EQ(s.rate_scale(t), 1.0);
    EXPECT_FALSE(s.draw_setup_failure());
  }
}

TEST(LinkChaos, SameSeedSameRealization) {
  const LinkChaosConfig cfg = all_axes();
  LinkChaosStream a(cfg, 42), b(cfg, 42);
  for (double t = 0.0; t < 20000.0; t += 1.7) {
    ASSERT_EQ(a.blacked_out(t), b.blacked_out(t)) << "t=" << t;
    ASSERT_EQ(a.rate_scale(t), b.rate_scale(t)) << "t=" << t;
  }
  for (int i = 0; i < 200; ++i) ASSERT_EQ(a.draw_setup_failure(), b.draw_setup_failure());
}

TEST(LinkChaos, DistinctSeedsDecorrelate) {
  const LinkChaosConfig cfg = all_axes();
  LinkChaosStream a(cfg, 1), b(cfg, 2);
  int differ = 0;
  for (double t = 0.0; t < 50000.0; t += 3.1)
    differ += a.blacked_out(t) != b.blacked_out(t);
  EXPECT_GT(differ, 100);
}

// Alternating renewal with quiet gaps Exp(rate) and epochs Exp(1/mean):
// the long-run active fraction is mean / (gap_mean + mean).
TEST(LinkChaos, LongRunBlackoutFractionMatchesRenewalStatistics) {
  LinkChaosConfig cfg;
  cfg.blackout_rate_per_hour = 60.0;  // gap mean 60 s
  cfg.blackout_mean_s = 30.0;
  const double expected = 30.0 / (60.0 + 30.0);
  double active = 0.0, total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    LinkChaosStream s(cfg, seed);
    for (double t = 0.0; t < 100000.0; t += 0.5) {
      active += s.blacked_out(t) ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  EXPECT_NEAR(active / total, expected, 0.02);
}

TEST(LinkChaos, SetupFailureFrequencyMatchesProbability) {
  LinkChaosConfig cfg;
  cfg.setup_fail_p = 0.3;
  LinkChaosStream s(cfg, 7);
  int fails = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) fails += s.draw_setup_failure();
  EXPECT_NEAR(static_cast<double>(fails) / kDraws, 0.3, 0.02);
}

TEST(LinkChaos, ValidateRejectsBadValues) {
  LinkChaosConfig c;
  c.blackout_rate_per_hour = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.degrade_rate_scale = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.degrade_rate_scale = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.setup_fail_p = 2.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.blackout_mean_s = std::nan("");
  EXPECT_THROW(c.validate(), std::invalid_argument);

  LinkStormConfig st;
  st.cell_hit_fraction = -0.1;
  EXPECT_THROW(st.validate(), std::invalid_argument);

  LinkFaultPlan p;
  p.links.resize(2);
  p.links[1].setup_fail_p = 42.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(LinkChaos, PlanLinkFallsBackToDisabledPastConfiguredList) {
  LinkFaultPlan p;
  p.links.resize(1);
  p.links[0].setup_fail_p = 0.5;
  EXPECT_TRUE(p.link(0).any());
  EXPECT_FALSE(p.link(1).any());
  EXPECT_FALSE(p.link(17).any());
}

TEST(StormChaos, SameSeedSameSchedule) {
  const LinkStormConfig cfg{30.0, 60.0, 0.5};
  StormSchedule a(cfg, 99), b(cfg, 99);
  a.ensure_horizon(0.0, 20000.0);
  b.ensure_horizon(0.0, 20000.0);
  for (double t = 0.0; t < 20000.0; t += 11.0)
    for (std::int64_t c = -3; c <= 3; ++c)
      ASSERT_EQ(a.storming(t, c, -c), b.storming(t, c, -c)) << "t=" << t << " cell=" << c;
}

TEST(StormChaos, ZeroHitFractionNeverStorms) {
  StormSchedule s({60.0, 120.0, 0.0}, 5);
  s.ensure_horizon(0.0, 50000.0);
  for (double t = 0.0; t < 50000.0; t += 9.0) EXPECT_FALSE(s.storming(t, 0, 0));
}

// cell_hit_fraction == 1: every cell drowns in every window — full
// spatial correlation — and the time covered matches the M/G/inf
// busy fraction 1 - exp(-lambda * mean).
TEST(StormChaos, FullHitFractionCorrelatesAllCellsAndMatchesCoverage) {
  const LinkStormConfig cfg{30.0, 60.0, 1.0};
  StormSchedule s(cfg, 321);
  const double horizon = 40000.0;
  s.ensure_horizon(0.0, horizon);
  double storming = 0.0, total = 0.0;
  for (double t = 0.0; t < horizon; t += 1.0) {
    const bool here = s.storming(t, 0, 0);
    ASSERT_EQ(here, s.storming(t, 12, -7)) << "t=" << t;
    ASSERT_EQ(here, s.storming(t, -400, 913)) << "t=" << t;
    storming += here ? 1.0 : 0.0;
    total += 1.0;
  }
  const double lambda = 30.0 / 3600.0;
  const double expected = 1.0 - std::exp(-lambda * 60.0);
  EXPECT_NEAR(storming / total, expected, 0.05);
}

// Fractional hit: each window hits a cell independently with prob f, so
// a single cell sees a thinned Poisson process with coverage
// 1 - exp(-lambda * mean * f). Averaged over many cells.
TEST(StormChaos, FractionalHitThinsCoveragePerCell) {
  const double f = 0.5;
  const LinkStormConfig cfg{60.0, 60.0, f};
  StormSchedule s(cfg, 777);
  const double horizon = 8000.0;
  s.ensure_horizon(0.0, horizon);
  double storming = 0.0, total = 0.0;
  for (std::int64_t cell = 0; cell < 64; ++cell) {
    for (double t = 0.0; t < horizon; t += 2.0) {
      storming += s.storming(t, cell, 3 * cell + 1) ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  const double lambda = 60.0 / 3600.0;
  const double expected = 1.0 - std::exp(-lambda * 60.0 * f);
  EXPECT_NEAR(storming / total, expected, 0.05);
}

// ---------------------------------------------------------------------------
// The MissionSim chaos axis.

fault::TrialSpec base_spec() {
  fault::TrialSpec spec;
  spec.max_time_s = 3600.0;
  return spec;
}

void expect_trials_identical(const fault::TrialResult& a, const fault::TrialResult& b) {
  EXPECT_EQ(a.d_opt_m, b.d_opt_m);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.completion_time_s, b.completion_time_s);
  EXPECT_EQ(a.delivered_all, b.delivered_all);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.rendezvous_attempts, b.rendezvous_attempts);
  EXPECT_EQ(a.arq_retransmissions, b.arq_retransmissions);
  EXPECT_EQ(a.chaos_losses, b.chaos_losses);
  EXPECT_EQ(a.chaos_setup_failures, b.chaos_setup_failures);
  EXPECT_EQ(a.incomplete_reason, b.incomplete_reason);
}

// An empty chaos plan must not perturb the trial at all — same RNG
// stream consumption, bit-identical result. Also holds for a plan with
// configured-but-disabled links (any() == false).
TEST(MissionChaos, EmptyPlanBitIdenticalToNoChaos) {
  const fault::TrialSpec plain = base_spec();
  fault::TrialSpec empty = base_spec();
  empty.with_link_chaos(fault::LinkFaultPlan::none());
  fault::TrialSpec disabled = base_spec();
  fault::LinkFaultPlan p;
  p.links.resize(3);  // all axes off
  disabled.with_link_chaos(p);

  for (std::uint64_t seed : {1ULL, 17ULL, 20260809ULL}) {
    const fault::TrialResult a = fault::run_mission_trial(plain, seed);
    expect_trials_identical(a, fault::run_mission_trial(empty, seed));
    expect_trials_identical(a, fault::run_mission_trial(disabled, seed));
    EXPECT_EQ(a.chaos_losses, 0u);
    EXPECT_EQ(a.chaos_setup_failures, 0u);
    EXPECT_EQ(a.incomplete_reason, mac::IncompleteReason::kNone);
  }
}

TEST(MissionChaos, SameSeedSameChaosTrial) {
  fault::TrialSpec spec = base_spec();
  spec.with_link_chaos(fault::LinkFaultPlan::harsh(1));
  expect_trials_identical(fault::run_mission_trial(spec, 99),
                          fault::run_mission_trial(spec, 99));
}

// A near-permanent blackout starves the transfer: packets are eaten by
// the chaos gate, the stall machinery exhausts its retreats, and the
// undelivered batch carries the starved-by-outage tag.
TEST(MissionChaos, PermanentBlackoutStarvesAndTags) {
  fault::TrialSpec spec = base_spec();
  fault::LinkFaultPlan p;
  p.links.resize(1);
  p.links[0].blackout_rate_per_hour = 3.6e6;  // first gap ~1 ms
  p.links[0].blackout_mean_s = 1e9;           // never ends
  spec.with_link_chaos(p);

  const fault::TrialResult r = fault::run_mission_trial(spec, 7);
  EXPECT_FALSE(r.delivered_all);
  EXPECT_GT(r.chaos_losses, 0u);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kStarvedByOutage);
  EXPECT_EQ(r.delivered_bytes, 0.0);
}

// Certain setup failure: every negotiated rendezvous is rejected before
// the first packet, the backoff ladder runs dry, and the trial reports
// the session-setup taxonomy with zero bytes moved.
TEST(MissionChaos, CertainSetupFailureExhaustsBackoffAndTags) {
  fault::TrialSpec spec = base_spec();
  fault::LinkFaultPlan p;
  p.links.resize(1);
  p.links[0].setup_fail_p = 1.0;
  spec.with_link_chaos(p);

  const fault::TrialResult r = fault::run_mission_trial(spec, 11);
  EXPECT_FALSE(r.delivered_all);
  EXPECT_GT(r.chaos_setup_failures, 0u);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kSessionSetupFailed);
  EXPECT_EQ(r.delivered_bytes, 0.0);
}

// Degradation epochs slow the transfer but cannot kill it: with every
// other axis off the batch still lands, later than the clean run.
TEST(MissionChaos, DegradationDelaysButDelivers) {
  fault::TrialSpec clean = base_spec();
  fault::TrialSpec degraded = base_spec();
  fault::LinkFaultPlan p;
  p.links.resize(1);
  p.links[0].degrade_rate_per_hour = 3.6e6;  // effectively always degraded
  p.links[0].degrade_mean_s = 1e9;
  p.links[0].degrade_rate_scale = 0.25;
  degraded.with_link_chaos(p);

  const fault::TrialResult a = fault::run_mission_trial(clean, 3);
  const fault::TrialResult b = fault::run_mission_trial(degraded, 3);
  ASSERT_TRUE(a.delivered_all);
  ASSERT_TRUE(b.delivered_all);
  EXPECT_GT(b.completion_time_s, a.completion_time_s);
  EXPECT_EQ(b.incomplete_reason, mac::IncompleteReason::kNone);
}

TEST(MissionChaos, ValidateRejectsBadPlan) {
  fault::TrialSpec spec = base_spec();
  fault::LinkFaultPlan p;
  p.links.resize(1);
  p.links[0].degrade_rate_scale = -1.0;
  spec.with_link_chaos(p);
  EXPECT_THROW(spec.validate(), fault::ConfigError);
}

}  // namespace
}  // namespace skyferry
