#include "fault/monte_carlo.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::fault {
namespace {

MonteCarloConfig crash_only_config(const core::Scenario& scen, int trials,
                                   uav::FailureLaw law = uav::FailureLaw::kExponential) {
  MonteCarloConfig cfg;
  cfg.spec.scenario = scen;
  cfg.spec.faults = FaultPlan::crashes_only(scen.rho_per_m, law);
  cfg.trials = trials;
  cfg.seed = 12345;
  return cfg;
}

// The acceptance gate: 2000+ seeded trials reproduce the paper's
// analytic exponential survival exp(-rho * (d0 - d_opt)) within 2%
// absolute, at both published rho values.
TEST(MonteCarlo, EmpiricalSurvivalMatchesAnalyticExponentialAirplane) {
  const auto scen = core::Scenario::airplane();  // rho = 1.11e-4
  const auto s = run_monte_carlo(crash_only_config(scen, 2000));
  ASSERT_EQ(s.trials, 2000);
  EXPECT_NEAR(s.empirical_approach_survival, s.analytic_approach_survival, 0.02);
  // For the exponential law the injected truth IS the planner's delta(d).
  EXPECT_NEAR(s.analytic_approach_survival, s.planner_delivery_probability, 1e-9);
}

TEST(MonteCarlo, EmpiricalSurvivalMatchesAnalyticExponentialQuadrocopter) {
  const auto scen = core::Scenario::quadrocopter();  // rho = 2.46e-4
  const auto s = run_monte_carlo(crash_only_config(scen, 2000));
  EXPECT_NEAR(s.empirical_approach_survival, s.analytic_approach_survival, 0.02);
  EXPECT_NEAR(s.analytic_approach_survival, s.planner_delivery_probability, 1e-9);
}

TEST(MonteCarlo, AblationLawsDivergeFromExponentialAssumption) {
  // Under the Weibull(k=2) truth early failures are rarer than the
  // exponential planner assumes: empirical survival beats the planner's
  // delta. The harness quantifies the gap instead of hiding it.
  const auto scen = core::Scenario::quadrocopter();
  const auto s = run_monte_carlo(crash_only_config(scen, 1500, uav::FailureLaw::kWeibull));
  EXPECT_GT(s.empirical_approach_survival, s.planner_delivery_probability);
  // The injected-law analytic column still matches its own empirical.
  EXPECT_NEAR(s.empirical_approach_survival, s.analytic_approach_survival, 0.02);
}

TEST(MonteCarlo, SummaryIdenticalAcrossThreadCounts) {
  // The engine's core guarantee: per-trial seeds come from
  // sim::fork(seed, 0, trial) and reduce in trial order, so the thread
  // count is invisible in the results — bit for bit.
  const auto scen = core::Scenario::quadrocopter();
  auto cfg = crash_only_config(scen, 300);
  cfg.spec.faults = FaultPlan::harsh();  // exercise every fault stream
  cfg.threads = 1;
  const auto one = run_monte_carlo(cfg);
  for (int threads : {2, 8}) {
    cfg.threads = threads;
    const auto many = run_monte_carlo(cfg);
    EXPECT_EQ(one.empirical_delivery_probability, many.empirical_delivery_probability) << threads;
    EXPECT_EQ(one.empirical_approach_survival, many.empirical_approach_survival) << threads;
    EXPECT_EQ(one.mean_delivered_fraction, many.mean_delivered_fraction) << threads;
    EXPECT_EQ(one.delivered_mb.median, many.delivered_mb.median) << threads;
    EXPECT_EQ(one.delivered_mb.q1, many.delivered_mb.q1) << threads;
    EXPECT_EQ(one.completion_p50_s, many.completion_p50_s) << threads;
    EXPECT_EQ(one.completion_p99_s, many.completion_p99_s) << threads;
    EXPECT_EQ(one.crashes, many.crashes) << threads;
    EXPECT_EQ(one.negotiation_failures, many.negotiation_failures) << threads;
    EXPECT_EQ(one.mean_arq_retransmissions, many.mean_arq_retransmissions) << threads;
    EXPECT_EQ(many.run_stats.threads, threads);
  }
}

TEST(MonteCarlo, SimulatedLinkSummaryIdenticalAcrossThreadCounts) {
  // The kAggregate link simulator (shared PER-table cache included) must
  // preserve the engine's bit-identical-across-threads guarantee.
  const auto scen = core::Scenario::quadrocopter();
  auto cfg = crash_only_config(scen, 150);
  cfg.spec.faults = FaultPlan::harsh();
  cfg.spec.with_link_simulator(true).with_shared_link_tables();
  cfg.threads = 1;
  const auto one = run_monte_carlo(cfg);
  for (int threads : {2, 8}) {
    cfg.threads = threads;
    const auto many = run_monte_carlo(cfg);
    EXPECT_EQ(one.empirical_delivery_probability, many.empirical_delivery_probability) << threads;
    EXPECT_EQ(one.empirical_approach_survival, many.empirical_approach_survival) << threads;
    EXPECT_EQ(one.mean_delivered_fraction, many.mean_delivered_fraction) << threads;
    EXPECT_EQ(one.delivered_mb.median, many.delivered_mb.median) << threads;
    EXPECT_EQ(one.completion_p50_s, many.completion_p50_s) << threads;
    EXPECT_EQ(one.crashes, many.crashes) << threads;
  }
}

TEST(MonteCarlo, SimulatedLinkStillValidatesDeliveryLaw) {
  // Swapping the analytic s(d) for the measured link rate must not
  // disturb the delta(d) = exp(-rho * (d0 - d)) survival validation —
  // the crash process is independent of the throughput model.
  const auto scen = core::Scenario::quadrocopter();
  auto cfg = crash_only_config(scen, 2000);
  cfg.spec.with_link_simulator(true).with_shared_link_tables();
  const auto s = run_monte_carlo(cfg);
  EXPECT_NEAR(s.empirical_approach_survival, s.analytic_approach_survival, 0.02);
  EXPECT_GT(s.mean_delivered_fraction, 0.0);
  EXPECT_GT(s.completion_p50_s, 0.0);
}

TEST(MonteCarlo, PerTrialResultsIdenticalAcrossThreadCounts) {
  const auto scen = core::Scenario::quadrocopter();
  auto cfg = crash_only_config(scen, 120);
  cfg.keep_trials = true;
  cfg.threads = 1;
  const auto one = run_monte_carlo(cfg);
  cfg.threads = 8;
  const auto eight = run_monte_carlo(cfg);
  ASSERT_EQ(one.trial_results.size(), eight.trial_results.size());
  for (std::size_t i = 0; i < one.trial_results.size(); ++i) {
    EXPECT_EQ(one.trial_results[i].delivered_bytes, eight.trial_results[i].delivered_bytes) << i;
    EXPECT_EQ(one.trial_results[i].completion_time_s, eight.trial_results[i].completion_time_s)
        << i;
    EXPECT_EQ(one.trial_results[i].crashed, eight.trial_results[i].crashed) << i;
  }
}

TEST(MonteCarlo, FluentSettersBuildTheSameConfig) {
  const auto scen = core::Scenario::airplane();
  const auto fluent = MonteCarloConfig{}
                          .with_spec(TrialSpec{}
                                         .with_scenario(scen)
                                         .with_faults(FaultPlan::crashes_only(scen.rho_per_m)))
                          .with_trials(150)
                          .with_seed(12345)
                          .with_threads(2)
                          .with_keep_trials(false);
  const auto a = run_monte_carlo(fluent);
  const auto b = run_monte_carlo(crash_only_config(scen, 150));
  EXPECT_EQ(a.empirical_approach_survival, b.empirical_approach_survival);
  EXPECT_EQ(a.completion_p50_s, b.completion_p50_s);
}

TEST(MonteCarlo, ValidateRejectsBadConfigsTyped) {
  const auto scen = core::Scenario::quadrocopter();
  // Non-positive trials.
  EXPECT_THROW(run_monte_carlo(crash_only_config(scen, 0)), ConfigError);
  EXPECT_THROW(run_monte_carlo(crash_only_config(scen, -5)), ConfigError);
  // NaN distance.
  {
    auto cfg = crash_only_config(scen, 10);
    cfg.spec.scenario.d0_m = std::nan("");
    EXPECT_THROW(run_monte_carlo(cfg), ConfigError);
  }
  {
    auto cfg = crash_only_config(scen, 10);
    cfg.spec.scenario.min_distance_m = std::nan("");
    EXPECT_THROW(run_monte_carlo(cfg), ConfigError);
  }
  // Empty scenario.
  {
    auto cfg = crash_only_config(scen, 10);
    cfg.spec.scenario = core::Scenario{};
    EXPECT_THROW(run_monte_carlo(cfg), ConfigError);
  }
  // Degenerate timing/transfer knobs.
  {
    auto cfg = crash_only_config(scen, 10);
    cfg.spec.max_time_s = 0.0;
    EXPECT_THROW(run_monte_carlo(cfg), ConfigError);
  }
  // The error is typed, not a bare invalid_argument from strtod et al.
  try {
    run_monte_carlo(crash_only_config(scen, 0));
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("trials"), std::string::npos);
  }
}

TEST(MonteCarlo, RunStatsSidecarIsPopulated) {
  const auto scen = core::Scenario::quadrocopter();
  auto cfg = crash_only_config(scen, 64);
  cfg.threads = 2;
  const auto s = run_monte_carlo(cfg);
  EXPECT_EQ(s.run_stats.threads, 2);
  EXPECT_EQ(s.run_stats.trials_per_point, 64);
  EXPECT_GT(s.run_stats.wall_s, 0.0);
  EXPECT_GT(s.run_stats.trials_per_s, 0.0);
  EXPECT_GT(s.run_stats.total_trial_s, 0.0);
  EXPECT_NE(s.run_stats.to_json().find("\"trials_per_s\""), std::string::npos);
}

TEST(MonteCarlo, SameSeedReproducesBitIdenticalSummary) {
  const auto scen = core::Scenario::quadrocopter();
  const auto a = run_monte_carlo(crash_only_config(scen, 200));
  const auto b = run_monte_carlo(crash_only_config(scen, 200));
  EXPECT_DOUBLE_EQ(a.empirical_delivery_probability, b.empirical_delivery_probability);
  EXPECT_DOUBLE_EQ(a.empirical_approach_survival, b.empirical_approach_survival);
  EXPECT_DOUBLE_EQ(a.mean_delivered_fraction, b.mean_delivered_fraction);
  EXPECT_DOUBLE_EQ(a.completion_p99_s, b.completion_p99_s);

  auto cfg = crash_only_config(scen, 200);
  cfg.seed = 999;
  const auto c = run_monte_carlo(cfg);
  EXPECT_NE(a.empirical_approach_survival, c.empirical_approach_survival);
}

TEST(MonteCarlo, PartialDeliveriesLiftMeanFractionAboveFullProbability) {
  // Resumable ARQ means a crashed trial still counts its delivered
  // prefix: the mean delivered fraction must dominate P(full delivery).
  const auto scen = core::Scenario::quadrocopter();
  auto cfg = crash_only_config(scen, 800);
  cfg.spec.faults.crash.rho_per_m = 2e-3;  // enough crashes to matter
  const auto s = run_monte_carlo(cfg);
  EXPECT_LT(s.empirical_delivery_probability, 1.0);
  EXPECT_GT(s.mean_delivered_fraction, s.empirical_delivery_probability);
}

TEST(MonteCarlo, NoFaultsDeliversEverythingDeterministically) {
  MonteCarloConfig cfg;
  cfg.spec.scenario = core::Scenario::airplane();
  cfg.spec.faults = FaultPlan::none();
  cfg.trials = 50;
  const auto s = run_monte_carlo(cfg);
  EXPECT_DOUBLE_EQ(s.empirical_delivery_probability, 1.0);
  EXPECT_DOUBLE_EQ(s.empirical_approach_survival, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_delivered_fraction, 1.0);
  EXPECT_GT(s.completion_p50_s, 0.0);
  // Without faults every trial is the same deterministic story.
  EXPECT_DOUBLE_EQ(s.completion_p50_s, s.completion_p99_s);
}

TEST(MonteCarlo, KeepTrialsRetainsPerTrialResults) {
  auto cfg = crash_only_config(core::Scenario::quadrocopter(), 25);
  cfg.keep_trials = true;
  const auto s = run_monte_carlo(cfg);
  ASSERT_EQ(s.trial_results.size(), 25u);
  for (const auto& r : s.trial_results) {
    EXPECT_GE(r.delivered_bytes, 0.0);
    EXPECT_LE(r.delivered_bytes, r.total_bytes + 1e-9);
  }
}

// ---- supervised campaigns ---------------------------------------------------

TEST(MonteCarlo, ChaosCrashesAreQuarantinedAndDeltaStaysInWidenedBand) {
  // The ISSUE's acceptance scenario: ~1% of seeds throw; the campaign
  // must complete, quarantine exactly the poisoned trials, report each
  // with a replay command, and keep the delta(d) estimate inside the
  // quarantine-widened confidence band.
  const auto scen = core::Scenario::airplane();
  auto cfg = crash_only_config(scen, 1000);
  cfg.supervision.max_retries = 1;
  cfg.supervision.replay_prefix = "mc --replay-trial";
  cfg.chaos = [](std::uint64_t seed, const exp::CancelToken&) {
    if (seed % 128 == 0) throw std::runtime_error("chaos crash");
  };
  const auto s = run_monte_carlo(cfg);

  int poisoned = 0;
  for (int t = 0; t < 1000; ++t)
    poisoned += sim::fork(12345, 0, static_cast<std::uint64_t>(t)) % 128 == 0 ? 1 : 0;
  ASSERT_GT(poisoned, 0);
  EXPECT_EQ(s.quarantined, poisoned);
  EXPECT_EQ(s.completed_trials, 1000 - poisoned);
  ASSERT_EQ(s.report.failures.size(), static_cast<std::size_t>(poisoned));
  for (const auto& f : s.report.failures) {
    EXPECT_TRUE(f.quarantined);
    EXPECT_EQ(f.seed % 128, 0u);
    EXPECT_EQ(f.replay_cmd, "mc --replay-trial " + std::to_string(f.seed));
  }
  // delta(d) estimate within the widened band around the analytic value.
  EXPECT_GE(s.delivery_ci_halfwidth,
            static_cast<double>(poisoned) / 1000.0);  // quarantine priced in
  EXPECT_NEAR(s.empirical_approach_survival, s.analytic_approach_survival,
              0.02 + static_cast<double>(poisoned) / 1000.0);
  // Taxonomy reaches the stats sidecar.
  EXPECT_EQ(s.run_stats.quarantined, poisoned);
  EXPECT_NE(s.run_stats.to_json().find("\"failures\""), std::string::npos);
}

TEST(MonteCarlo, ChaosHangIsCancelledNotDeadlocked) {
  // One poisoned seed hangs cooperatively; the watchdog cancels it and
  // the campaign completes with exactly that trial quarantined.
  const auto scen = core::Scenario::airplane();
  auto cfg = crash_only_config(scen, 64);
  const std::uint64_t hung = sim::fork(12345, 0, 7);
  cfg.supervision.trial_timeout_ms = 50.0;
  cfg.chaos = [hung](std::uint64_t seed, const exp::CancelToken& token) {
    if (seed == hung) {
      while (true) {
        exp::poll_cancel(token);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  const auto s = run_monte_carlo(cfg);
  EXPECT_EQ(s.quarantined, 1);
  EXPECT_EQ(s.completed_trials, 63);
  ASSERT_EQ(s.report.failures.size(), 1u);
  EXPECT_EQ(s.report.failures[0].kind, exp::TrialFailure::Kind::kTimedOut);
  EXPECT_EQ(s.report.failures[0].seed, hung);
  // The other 63 trials still validate the law loosely.
  EXPECT_GT(s.empirical_approach_survival, 0.5);
}

TEST(MonteCarlo, SupervisedSummaryIdenticalToUnsupervisedWhenClean) {
  // Supervision with no failures must not perturb a single number —
  // this is what keeps the golden figures valid with supervision on.
  const auto scen = core::Scenario::quadrocopter();
  const auto plain = run_monte_carlo(crash_only_config(scen, 300));
  auto cfg = crash_only_config(scen, 300);
  cfg.supervision.max_retries = 3;
  cfg.supervision.trial_timeout_ms = 60000.0;
  const auto sup = run_monte_carlo(cfg);
  EXPECT_EQ(sup.empirical_delivery_probability, plain.empirical_delivery_probability);
  EXPECT_EQ(sup.empirical_approach_survival, plain.empirical_approach_survival);
  EXPECT_EQ(sup.mean_delivered_fraction, plain.mean_delivered_fraction);
  EXPECT_EQ(sup.completion_p99_s, plain.completion_p99_s);
  EXPECT_EQ(sup.quarantined, 0);
  EXPECT_EQ(sup.completed_trials, 300);
}

TEST(MonteCarlo, CheckpointResumeReproducesSummaryBitIdentically) {
  const auto scen = core::Scenario::quadrocopter();
  const std::string ckpt = std::string(::testing::TempDir()) + "mc_resume_test.ckpt.json";
  std::remove(ckpt.c_str());
  const auto reference = run_monte_carlo(crash_only_config(scen, 200));

  // Interrupt partway, then resume at a different thread count.
  auto cfg = crash_only_config(scen, 200);
  cfg.threads = 2;
  cfg.supervision.checkpoint_path = ckpt;
  cfg.supervision.handle_signals = false;
  cfg.supervision.flush_every = 1;
  std::atomic<int> ran{0};
  cfg.chaos = [&ran](std::uint64_t, const exp::CancelToken&) {
    if (ran.fetch_add(1) == 60) exp::request_interrupt();
  };
  const auto partial = run_monte_carlo(cfg);
  exp::clear_interrupt();
  ASSERT_TRUE(partial.interrupted);

  auto rcfg = crash_only_config(scen, 200);
  rcfg.threads = 8;
  rcfg.supervision.checkpoint_path = ckpt;
  rcfg.supervision.handle_signals = false;
  rcfg.supervision.resume = true;
  const auto resumed = run_monte_carlo(rcfg);
  std::remove(ckpt.c_str());
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_GT(resumed.report.resumed_chunks, 0u);
  EXPECT_EQ(resumed.empirical_delivery_probability, reference.empirical_delivery_probability);
  EXPECT_EQ(resumed.empirical_approach_survival, reference.empirical_approach_survival);
  EXPECT_EQ(resumed.mean_delivered_fraction, reference.mean_delivered_fraction);
  EXPECT_EQ(resumed.delivered_mb.median, reference.delivered_mb.median);
  EXPECT_EQ(resumed.completion_p50_s, reference.completion_p50_s);
  EXPECT_EQ(resumed.completion_p99_s, reference.completion_p99_s);
  EXPECT_EQ(resumed.crashes, reference.crashes);
  EXPECT_EQ(resumed.mean_arq_retransmissions, reference.mean_arq_retransmissions);
}

}  // namespace
}  // namespace skyferry::fault
