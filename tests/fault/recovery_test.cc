#include "fault/recovery.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/mission.h"
#include "fault/mission_sim.h"

namespace skyferry::fault {
namespace {

TEST(BackoffPolicy, GrowsExponentiallyAndCaps) {
  BackoffPolicy p;
  p.initial_s = 1.0;
  p.multiplier = 2.0;
  p.max_s = 10.0;
  p.jitter_fraction = 0.0;
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(p.delay_s(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(p.delay_s(1, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.delay_s(2, rng), 4.0);
  EXPECT_DOUBLE_EQ(p.delay_s(5, rng), 10.0);  // capped
  EXPECT_FALSE(p.exhausted(7));
  EXPECT_TRUE(p.exhausted(8));
}

TEST(BackoffPolicy, JitterStaysInBand) {
  BackoffPolicy p;
  p.initial_s = 4.0;
  p.jitter_fraction = 0.25;
  sim::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = p.delay_s(0, rng);
    EXPECT_GE(d, 3.0);
    EXPECT_LE(d, 5.0);
  }
}


TEST(BackoffPolicy, HugeAttemptNumberStaysFiniteAndCapped) {
  // Regression: pow(multiplier, INT_MAX) used to overflow to inf. The
  // exponent is capped before exponentiation, so any attempt number
  // saturates at max_s.
  BackoffPolicy p;
  p.initial_s = 1.0;
  p.multiplier = 2.0;
  p.max_s = 60.0;
  p.jitter_fraction = 0.0;
  sim::Rng rng(3);
  for (int attempt : {64, 65, 1000, std::numeric_limits<int>::max()}) {
    const double d = p.delay_s(attempt, rng);
    EXPECT_TRUE(std::isfinite(d)) << attempt;
    EXPECT_DOUBLE_EQ(d, 60.0) << attempt;
  }
  EXPECT_DOUBLE_EQ(p.delay_s(-5, rng), 1.0);  // negative clamps to attempt 0
}

TEST(BackoffPolicy, JitteredDelayAtMaxAttemptsStaysWithinBaseAndCap) {
  // At saturation the deterministic delay equals max_s; the upward
  // jitter must be clamped back inside [.. , max_s] while the downward
  // jitter keeps its (1 - j) band.
  BackoffPolicy p;
  p.initial_s = 1.0;
  p.multiplier = 2.0;
  p.max_s = 30.0;
  p.max_attempts = 6;
  p.jitter_fraction = 0.25;
  sim::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const double d = p.delay_s(p.max_attempts, rng);
    EXPECT_GE(d, 30.0 * 0.75);
    EXPECT_LE(d, 30.0);
  }
}

TEST(ResumableTransfer, ResumesInsteadOfRestarting) {
  net::ArqConfig cfg;
  cfg.datagram_bytes = 1000;
  cfg.ack_every = 2;  // even cadence: the 6-packet prefix is fully acked
  ResumableTransfer xfer(cfg, 10000.0);  // 10 packets
  ASSERT_EQ(xfer.total_packets(), 10u);

  // Attempt 1: deliver 6 packets, ack them, then the link dies.
  xfer.begin_attempt();
  for (int i = 0; i < 6; ++i) {
    auto p = xfer.sender().next_packet(0.0);
    ASSERT_TRUE(p.has_value());
    if (auto ack = xfer.receiver().on_packet(*p)) xfer.sender().on_ack(*ack);
  }
  EXPECT_DOUBLE_EQ(xfer.delivered_bytes(), 6000.0);
  xfer.suspend();
  EXPECT_FALSE(xfer.active());
  // Progress survives the suspension.
  EXPECT_DOUBLE_EQ(xfer.delivered_bytes(), 6000.0);
  EXPECT_FALSE(xfer.complete());

  // Attempt 2: only the remaining 4 packets flow.
  xfer.begin_attempt();
  EXPECT_EQ(xfer.attempts(), 2);
  int sent = 0;
  while (auto p = xfer.sender().next_packet(1.0)) {
    ++sent;
    if (auto ack = xfer.receiver().on_packet(*p)) xfer.sender().on_ack(*ack);
    if (xfer.receiver().complete()) break;
  }
  EXPECT_EQ(sent, 4);
  EXPECT_TRUE(xfer.complete());
  EXPECT_DOUBLE_EQ(xfer.delivered_bytes(), 10000.0);
}

TEST(ResumableTransfer, InFlightAtSuspensionIsRetransmitted) {
  net::ArqConfig cfg;
  cfg.datagram_bytes = 500;
  cfg.ack_every = 100;  // no acks during the attempt
  ResumableTransfer xfer(cfg, 5000.0);  // 10 packets
  xfer.begin_attempt();
  // 3 packets leave the sender but none is acked (all died in the fade).
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(xfer.sender().next_packet(0.0).has_value());
  xfer.suspend();
  xfer.begin_attempt();
  // All 10 packets must still be deliverable.
  int sent = 0;
  while (auto p = xfer.sender().next_packet(1.0)) {
    ++sent;
    if (auto ack = xfer.receiver().on_packet(*p)) xfer.sender().on_ack(*ack);
    if (xfer.receiver().complete()) break;
  }
  EXPECT_EQ(sent, 10);
  EXPECT_TRUE(xfer.complete());
}

TEST(ResumableTransfer, PartialBytesNeverExceedTotal) {
  net::ArqConfig cfg;
  cfg.datagram_bytes = 999;
  ResumableTransfer xfer(cfg, 2500.0);  // 3 packets, last one padded
  xfer.begin_attempt();
  while (auto p = xfer.sender().next_packet(0.0)) {
    if (auto ack = xfer.receiver().on_packet(*p)) xfer.sender().on_ack(*ack);
    if (xfer.receiver().complete()) break;
  }
  EXPECT_TRUE(xfer.complete());
  EXPECT_DOUBLE_EQ(xfer.delivered_bytes(), 2500.0);
}

// ---- integration: crash mid-transfer yields partial data ---------------

TEST(RecoveryIntegration, CrashMidTransferDeliversPartialData) {
  // High crash rate + slow loiter burn keeps many crashes inside the
  // transfer window. Scan seeds for a trial that survived the approach
  // but crashed before completing; it must have delivered a strict
  // partial prefix, not zero and not everything.
  TrialSpec spec;
  spec.scenario = core::Scenario::quadrocopter();
  spec.faults = FaultPlan::crashes_only(2e-3);
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 400 && !found; ++seed) {
    const TrialResult r = run_mission_trial(spec, seed);
    if (r.survived_approach && r.crashed) {
      EXPECT_GT(r.delivered_bytes, 0.0) << "resumable ARQ lost the prefix, seed " << seed;
      EXPECT_LT(r.delivered_bytes, r.total_bytes);
      EXPECT_FALSE(r.delivered_all);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no crash-mid-transfer trial in 400 seeds; spec too benign";
}

TEST(RecoveryIntegration, OutagesForceResumedAttemptsThatStillComplete) {
  // Long fades versus a short stall timeout force retreat+resume cycles;
  // the transfer must still finish via checkpoint restore (attempts > 1)
  // in at least some trials, and resumed trials deliver everything.
  TrialSpec spec;
  spec.scenario = core::Scenario::quadrocopter();
  spec.faults.link_outage = {1.0 / 10.0, 8.0};
  spec.stall_timeout_s = 1.0;
  spec.retreat_after_stalls = 2;
  bool saw_resume = false;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const TrialResult r = run_mission_trial(spec, seed);
    if (r.rendezvous_attempts > 1 && r.delivered_all) {
      saw_resume = true;
      EXPECT_DOUBLE_EQ(r.delivered_bytes, r.total_bytes);
    }
  }
  EXPECT_TRUE(saw_resume) << "no resumed-and-completed transfer in 60 seeds";
}

// ---- integration: crashed scout's sector is reassigned ------------------

TEST(RecoveryIntegration, CrashedScoutSectorAbsorbedBySurvivor) {
  core::MissionConfig cfg;
  cfg.area_width_m = 200.0;
  cfg.area_height_m = 100.0;
  cfg.uav_count = 2;
  cfg.survey_altitude_m = 10.0;
  cfg.platform = uav::PlatformSpec::arducopter();
  cfg.rho_per_m = 2.46e-4;
  cfg.rendezvous_d0_m = 100.0;
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::MissionPlanner planner(model, cfg);

  const core::MissionPlan nominal = planner.plan();
  ASSERT_EQ(nominal.sectors.size(), 2u);

  // Scout 0 dies 40% through its sweep; scout 1 absorbs the rest.
  const core::MissionPlan replan = planner.replan_after_crash(0, 0.4);
  ASSERT_EQ(replan.sectors.size(), 1u);
  const auto& survivor = replan.sectors[0];
  EXPECT_EQ(survivor.sector_index, 1);
  const double orphan = 100.0 * 100.0 * 0.6;
  EXPECT_NEAR(survivor.absorbed_orphan_area_m2, orphan, 1.0);
  // The survivor's workload (and thus sweep time) grew past its nominal.
  EXPECT_GT(survivor.total_time_s, nominal.sectors[1].total_time_s);
  // Now-or-later decisions were re-run on the bigger batches.
  EXPECT_GT(survivor.rounds[0].batch_bytes, nominal.sectors[1].rounds[0].batch_bytes);
  EXPECT_GT(survivor.rounds[0].decision.delivery_probability, 0.0);
}

TEST(RecoveryIntegration, ReplanWithNoSurvivorsIsInfeasible) {
  core::MissionConfig cfg;
  cfg.uav_count = 1;
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::MissionPlanner planner(model, cfg);
  const core::MissionPlan replan = planner.replan_after_crash(0, 0.5);
  EXPECT_FALSE(replan.feasible);
  EXPECT_TRUE(replan.sectors.empty());
}

}  // namespace
}  // namespace skyferry::fault
