#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "fault/mission_sim.h"
#include "fault/monte_carlo.h"
#include "fault/trial_codec.h"

namespace skyferry::fault {
namespace {

// Long-approach quadrocopter mission: the scout starts well beyond the
// link's max range, so the in-flight estimator gets a real window of
// live probes before the commit point. The batch is trimmed to 10 MB so
// the now-or-later optimum is *interior* (d* ~ 71 m) — with the paper's
// 56.2 MB batch the transfer term dominates and the planner pins d* to
// the 20 m anti-collision floor, where a re-decision has no room to act.
core::Scenario long_approach_scenario() {
  auto s = core::Scenario::quadrocopter();
  s.d0_m = 400.0;
  s.mdata_bytes = 10.0e6;
  return s;
}

TrialSpec resilient_spec(const core::Scenario& scen, MismatchFaults mm = {}) {
  TrialSpec spec;
  spec.scenario = scen;
  spec.faults = FaultPlan::crashes_only(scen.rho_per_m);
  spec.faults.mismatch = mm;
  spec.resilience.enabled = true;
  return spec;
}

TEST(MismatchChaos, ZeroMismatchResilienceIsBitIdenticalToStatic) {
  // The headline invariant: with no injected mismatch the resilience
  // stack never trips, never diverts, and the mission outcome is
  // bit-identical to the pre-resilience simulator — probe events exist
  // but are pure observers.
  const auto scen = long_approach_scenario();
  TrialSpec off = resilient_spec(scen);
  off.resilience.enabled = false;
  const TrialSpec on = resilient_spec(scen);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const TrialResult a = run_mission_trial(off, seed);
    const TrialResult b = run_mission_trial(on, seed);
    EXPECT_EQ(a.d_opt_m, b.d_opt_m) << seed;
    EXPECT_EQ(b.d_final_m, b.d_opt_m) << seed;  // never diverted
    EXPECT_EQ(a.crashed, b.crashed) << seed;
    EXPECT_EQ(a.delivered_all, b.delivered_all) << seed;
    EXPECT_EQ(a.delivered_bytes, b.delivered_bytes) << seed;
    EXPECT_EQ(a.completion_time_s, b.completion_time_s) << seed;
    EXPECT_EQ(a.rendezvous_attempts, b.rendezvous_attempts) << seed;
    EXPECT_EQ(a.arq_retransmissions, b.arq_retransmissions) << seed;
    EXPECT_EQ(b.redecisions, 0) << seed;
    EXPECT_EQ(b.ship_closer_moves, 0) << seed;
    EXPECT_FALSE(b.mismatch_detected) << seed;
    EXPECT_GT(b.probes, 0u) << seed;  // the observers did run
  }
}

TEST(MismatchChaos, ResilientSummaryIdenticalAcrossThreadCounts) {
  // Re-decision rides the per-trial seed streams, so the mismatch-chaos
  // campaign keeps the engine's bit-identical-across-threads guarantee.
  MismatchFaults mm;
  mm.throughput_scale = 0.6;
  MonteCarloConfig cfg;
  cfg.spec = resilient_spec(long_approach_scenario(), mm);
  cfg.trials = 120;
  cfg.seed = 20260809;
  cfg.threads = 1;
  const auto one = run_monte_carlo(cfg);
  for (int threads : {2, 8}) {
    cfg.threads = threads;
    const auto many = run_monte_carlo(cfg);
    EXPECT_EQ(one.empirical_delivery_probability, many.empirical_delivery_probability) << threads;
    EXPECT_EQ(one.mean_delivered_fraction, many.mean_delivered_fraction) << threads;
    EXPECT_EQ(one.mean_delivered_utility, many.mean_delivered_utility) << threads;
    EXPECT_EQ(one.mean_redecisions, many.mean_redecisions) << threads;
    EXPECT_EQ(one.mismatch_detected_fraction, many.mismatch_detected_fraction) << threads;
    EXPECT_EQ(one.completion_p50_s, many.completion_p50_s) << threads;
    EXPECT_EQ(one.completion_p99_s, many.completion_p99_s) << threads;
  }
}

TEST(MismatchChaos, ThroughputOverestimateIsDetectedAndRedecided) {
  // The world delivers 60% of the fitted rate: the CUSUM must trip and
  // the re-decision must move the transmit position closer (a slower
  // link shifts the now-or-later balance toward "later").
  MismatchFaults mm;
  mm.throughput_scale = 0.6;
  const TrialSpec spec = resilient_spec(long_approach_scenario(), mm);
  int detected = 0, redecided = 0, moved_closer = 0, survived = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const TrialResult r = run_mission_trial(spec, seed);
    if (!r.survived_approach) continue;  // crashed before the evidence was in
    ++survived;
    detected += r.mismatch_detected ? 1 : 0;
    redecided += r.redecisions > 0 ? 1 : 0;
    moved_closer += r.d_final_m < r.d_opt_m - 1.0 ? 1 : 0;
  }
  ASSERT_GT(survived, 20);
  EXPECT_EQ(detected, survived);  // a 40% rate loss is unmissable
  EXPECT_GT(redecided, survived * 3 / 4);
  EXPECT_GT(moved_closer, survived * 3 / 4);
}

TEST(MismatchChaos, MidFlightRegimeShiftTripsTheDetector) {
  // The model is right for the first 75% of the approach — the shift
  // lands *inside* the live probing zone, after clean in-range samples —
  // then the channel degrades (e.g. terrain shadowing): the detector
  // must trip after the shift, on in-flight evidence alone.
  MismatchFaults mm;
  mm.shift_at_fraction = 0.75;
  mm.shifted_throughput_scale = 0.5;
  const TrialSpec spec = resilient_spec(long_approach_scenario(), mm);
  int detected = 0, survived = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const TrialResult r = run_mission_trial(spec, seed);
    if (!r.survived_approach) continue;
    ++survived;
    detected += r.mismatch_detected ? 1 : 0;
  }
  ASSERT_GT(survived, 20);
  EXPECT_GT(detected, survived * 3 / 4);
}

TEST(MismatchChaos, ResilientDeliveredUtilityBeatsStaticUnderMismatch) {
  // The tentpole claim at test scale (the ablation bench machine-checks
  // it on the full grid): same seeds, same injected world, the only
  // difference is whether the mission may re-decide mid-flight.
  MismatchFaults mm;
  mm.throughput_scale = 0.6;
  MonteCarloConfig cfg;
  cfg.spec = resilient_spec(long_approach_scenario(), mm);
  cfg.trials = 150;
  cfg.seed = 7;
  const auto resilient = run_monte_carlo(cfg);
  cfg.spec.resilience.enabled = false;
  const auto static_arm = run_monte_carlo(cfg);
  EXPECT_GE(resilient.mean_delivered_utility, static_arm.mean_delivered_utility);
  EXPECT_GT(resilient.mean_redecisions, 0.0);
}

TEST(ResilienceMission, ShipCloserFallbackOutlivesABankruptBackoffLadder) {
  // Heavy link outages stall the transfer; the retreat ladder is
  // configured bankrupt (zero retries). The static mission gives up with
  // a partial batch — the resilient one aborts-and-ships-closer and can
  // only deliver more (same seed, same world, monotone ARQ progress).
  auto scen = long_approach_scenario();
  TrialSpec spec = resilient_spec(scen);
  spec.faults.link_outage = {1.0 / 15.0, 8.0};
  spec.retreat_backoff.max_attempts = 0;
  TrialSpec static_spec = spec;
  static_spec.resilience.enabled = false;
  int ship_moves = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const TrialResult resilient = run_mission_trial(spec, seed);
    const TrialResult static_run = run_mission_trial(static_spec, seed);
    EXPECT_GE(resilient.delivered_bytes, static_run.delivered_bytes) << seed;
    ship_moves += resilient.ship_closer_moves;
  }
  EXPECT_GT(ship_moves, 0);  // the fallback actually fired somewhere
}

TEST(ResilienceMission, ValidateRejectsBadMismatchAndResilienceSpecs) {
  const auto scen = long_approach_scenario();
  {
    TrialSpec spec = resilient_spec(scen);
    spec.faults.mismatch.rho_scale = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    TrialSpec spec = resilient_spec(scen);
    spec.faults.mismatch.throughput_scale = -0.5;
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    TrialSpec spec = resilient_spec(scen);
    spec.faults.mismatch.shift_at_fraction = 1.5;
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    TrialSpec spec = resilient_spec(scen);
    spec.resilience.probe_interval_s = 0.0;
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    TrialSpec spec = resilient_spec(scen);
    spec.resilience.ship_closer_fraction = 1.5;
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    TrialSpec spec = resilient_spec(scen);
    spec.resilience.retry_budget.max_attempts = 0;
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    // A disabled stack skips the resilience checks (zero-cost default)
    // but the mismatch plan is validated regardless — it drives the
    // world, not the stack.
    TrialSpec spec = resilient_spec(scen);
    spec.resilience.enabled = false;
    spec.resilience.probe_interval_s = 0.0;
    EXPECT_NO_THROW(spec.validate());
    spec.faults.mismatch.shifted_throughput_scale = -1.0;
    EXPECT_THROW(spec.validate(), ConfigError);
  }
}

TEST(ResilienceMission, TrialCodecRoundTripsResilienceFields) {
  TrialResult r;
  r.d_opt_m = 58.25;
  r.d_final_m = 43.5;
  r.redecisions = 2;
  r.ship_closer_moves = 1;
  r.final_mode = 1;
  r.mismatch_detected = true;
  r.probes = 77;
  r.probe_rejects = 3;
  r.delivered_utility = 0.00125;
  r.delivered_bytes = 1.0e6;
  r.total_bytes = 2.0e6;
  const auto j = exp::Codec<TrialResult>::encode(r);
  const TrialResult d = exp::Codec<TrialResult>::decode(j);
  EXPECT_EQ(d.d_final_m, r.d_final_m);
  EXPECT_EQ(d.redecisions, r.redecisions);
  EXPECT_EQ(d.ship_closer_moves, r.ship_closer_moves);
  EXPECT_EQ(d.final_mode, r.final_mode);
  EXPECT_EQ(d.mismatch_detected, r.mismatch_detected);
  EXPECT_EQ(d.probes, r.probes);
  EXPECT_EQ(d.probe_rejects, r.probe_rejects);
  EXPECT_EQ(d.delivered_utility, r.delivered_utility);
}

TEST(ResilienceMission, MismatchChaosCampaignSurvivesCheckpointResume) {
  // The mismatch fields ride the replay/checkpoint codec: a campaign
  // killed mid-run and resumed must reduce to the same summary.
  MismatchFaults mm;
  mm.throughput_scale = 0.7;
  mm.shift_at_fraction = 0.5;
  mm.shifted_throughput_scale = 0.5;
  MonteCarloConfig cfg;
  cfg.spec = resilient_spec(long_approach_scenario(), mm);
  cfg.trials = 60;
  cfg.seed = 99;
  const auto direct = run_monte_carlo(cfg);
  EXPECT_EQ(direct.trials, 60);
  EXPECT_GT(direct.mismatch_detected_fraction, 0.0);
}

}  // namespace
}  // namespace skyferry::fault
