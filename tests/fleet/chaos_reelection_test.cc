// Fleet-level link chaos and mid-mission re-election: the guard ladder
// must be a pure observer without chaos evidence (bit-identical totals,
// zero re-elections, for any thread count), never lose to riding out
// injected chaos under common random numbers, respect its trigger cap,
// and keep the whole chaos realization thread-count invariant.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "fault/link_chaos.h"
#include "fleet/engine.h"
#include "link/multilink.h"

namespace skyferry {
namespace {

constexpr std::uint64_t kSeed = 20260809;

fault::LinkFaultPlan wifi_blackout_plan() {
  fault::LinkFaultPlan p;
  p.links.resize(1);
  p.links[0].blackout_rate_per_hour = 60.0;
  p.links[0].blackout_mean_s = 30.0;
  return p;
}

/// The ablation bench's layout at test scale: multi-link elections in
/// 802.11n range, staggered spawns, shared receiver cells.
fleet::FleetTotals run_fleet(const fault::LinkFaultPlan& plan, bool reelect, int threads,
                             int max_reelections = 2, int n = 9, double duration_s = 400.0) {
  fleet::FleetConfig cfg;
  cfg.threads = threads;
  cfg.links = std::make_shared<const link::LinkSet>(std::vector<link::LinkBackendConfig>{
      link::LinkBackendConfig::wifi_80211n(), link::LinkBackendConfig::cellular(),
      link::LinkBackendConfig::mesh(), link::LinkBackendConfig::leo()});
  cfg.link_chaos = plan;
  cfg.reelection.enabled = reelect;
  cfg.reelection.max_reelections = max_reelections;
  fleet::FleetEngine eng(cfg, kSeed);
  for (int i = 0; i < n; ++i) {
    fleet::MissionSpec spec;
    spec.receiver_pos = {500.0 * (i / 3), 0.0, 10.0};
    spec.start_pos = spec.receiver_pos + geo::Vec3{150.0 + 30.0 * (i % 3), 0.0, 0.0};
    spec.mdata_bytes = 4.0e8;
    spec.rho_per_m = 1.0e-4;
    spec.deadline_s = 120.0;
    spec.spawn_t_s = 0.5 * (i % 4);
    eng.add_mission(spec);
  }
  eng.run_until(duration_s);
  return eng.totals();
}

void expect_totals_identical(const fleet::FleetTotals& a, const fleet::FleetTotals& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
  EXPECT_EQ(a.mean_completion_s, b.mean_completion_s);
  EXPECT_EQ(a.deadline_weighted_utility, b.deadline_weighted_utility);
  EXPECT_EQ(a.reelections, b.reelections);
  EXPECT_EQ(a.stalled_by_link, b.stalled_by_link);
  EXPECT_EQ(a.stalled_out_of_range, b.stalled_out_of_range);
}

// Without chaos evidence no trigger can arm: enabling re-election must
// not move a single bit, and no trigger may fire.
TEST(FleetChaos, ZeroChaosReelectionIsPureObserver) {
  const fleet::FleetTotals off = run_fleet(fault::LinkFaultPlan::none(), false, 1);
  const fleet::FleetTotals on = run_fleet(fault::LinkFaultPlan::none(), true, 1);
  expect_totals_identical(off, on);
  EXPECT_EQ(on.reelections, 0u);
  EXPECT_EQ(on.stalled_by_link, 0u);
}

TEST(FleetChaos, ZeroChaosBitIdenticalAcrossThreads) {
  const fleet::FleetTotals t1 = run_fleet(fault::LinkFaultPlan::none(), true, 1);
  expect_totals_identical(t1, run_fleet(fault::LinkFaultPlan::none(), true, 2));
  expect_totals_identical(t1, run_fleet(fault::LinkFaultPlan::none(), true, 8));
}

// The whole chaos realization — storm windows, per-mission streams,
// re-election decisions — is seeded and sweep-synchronous, so totals
// must not depend on the worker count.
TEST(FleetChaos, ChaosRunBitIdenticalAcrossThreads) {
  fault::LinkFaultPlan plan = fault::LinkFaultPlan::harsh(4);
  const fleet::FleetTotals t1 = run_fleet(plan, true, 1);
  expect_totals_identical(t1, run_fleet(plan, true, 2));
  expect_totals_identical(t1, run_fleet(plan, true, 8));
}

// Common random numbers, same injected chaos: the guard ladder makes
// re-election a free option — it never does worse than riding it out.
TEST(FleetChaos, ReelectionNeverLosesUnderBlackouts) {
  const fault::LinkFaultPlan plan = wifi_blackout_plan();
  const fleet::FleetTotals st = run_fleet(plan, false, 1);
  const fleet::FleetTotals re = run_fleet(plan, true, 1);
  EXPECT_GE(re.deadline_weighted_utility, st.deadline_weighted_utility - 1e-12);
  EXPECT_GT(re.reelections, 0u);
}

TEST(FleetChaos, ReelectionCapBoundsTriggers) {
  const fault::LinkFaultPlan plan = fault::LinkFaultPlan::harsh(4);
  constexpr int kMissions = 9;
  const fleet::FleetTotals one = run_fleet(plan, true, 1, /*max_reelections=*/1, kMissions);
  EXPECT_LE(one.reelections, static_cast<std::uint64_t>(kMissions));
  const fleet::FleetTotals zero = run_fleet(plan, true, 1, /*max_reelections=*/0, kMissions);
  EXPECT_EQ(zero.reelections, 0u);
}

// Chaos without re-election still surfaces in the taxonomy counters:
// the static arm reports where its missions starved.
TEST(FleetChaos, StaticArmReportsLinkStalls) {
  fault::LinkFaultPlan p;
  p.links.resize(1);
  p.links[0].blackout_rate_per_hour = 120.0;
  p.links[0].blackout_mean_s = 60.0;
  const fleet::FleetTotals st = run_fleet(p, false, 1);
  EXPECT_GT(st.stalled_by_link, 0u);
}

}  // namespace
}  // namespace skyferry
