#include "fleet/engine.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::fleet {
namespace {

/// A deterministic little constellation: `n` missions spawning on a ring
/// around one receiver, with mixed ranges and a failure rate.
void add_ring(FleetEngine& eng, int n, double rho = 0.0) {
  for (int i = 0; i < n; ++i) {
    MissionSpec spec;
    const double angle = 2.0 * M_PI * i / n;
    const double range = 60.0 + 40.0 * ((i * 7) % 5);
    spec.start_pos = {range * std::cos(angle), range * std::sin(angle), 10.0};
    spec.receiver_pos = {0.0, 0.0, 10.0};
    spec.mdata_bytes = 2.0e6 + 1.0e6 * (i % 3);
    spec.rho_per_m = rho;
    spec.spawn_t_s = 0.1 * (i % 4);
    eng.add_mission(spec);
  }
}

TEST(FleetEngine, MissionLifecycleCompletes) {
  FleetConfig cfg;
  FleetEngine eng(cfg, 42);
  MissionSpec spec;
  spec.start_pos = {100.0, 0.0, 10.0};
  spec.receiver_pos = {0.0, 0.0, 10.0};
  spec.mdata_bytes = 2.0e6;
  spec.rho_per_m = 0.0;
  const int id = eng.add_mission(spec);

  eng.run_until(300.0);
  const MissionStatus st = eng.mission(id);
  EXPECT_EQ(st.phase, Phase::kDone);
  EXPECT_GE(st.d_star_m, cfg.scenario.min_distance_m);
  EXPECT_LE(st.d_star_m, 100.0);
  EXPECT_GT(st.utility, 0.0);
  EXPECT_EQ(st.bytes_delivered, st.bytes_total);
  EXPECT_GT(st.completed_t_s, st.arrived_t_s);
  EXPECT_GT(st.mpdus_attempted, st.mpdus_delivered);  // some loss existed

  // The UAV parked on the start->receiver line at distance d*.
  const geo::Vec3 p = eng.position(id);
  EXPECT_NEAR(geo::distance(p, spec.receiver_pos), st.d_star_m, 1e-9);
}

TEST(FleetEngine, DecisionMatchesServiceAnswer) {
  FleetConfig cfg;
  FleetEngine eng(cfg, 7);
  MissionSpec spec;
  spec.start_pos = {cfg.scenario.d0_m, 0.0, 0.0};
  spec.receiver_pos = {0.0, 0.0, 0.0};
  const int id = eng.add_mission(spec);
  eng.run_until(cfg.dt_s);

  policy::Query q;
  q.d0_m = cfg.scenario.d0_m;
  q.speed_mps = cfg.scenario.speed_mps;
  q.mdata_bytes = static_cast<double>(eng.mission(id).bytes_total);
  q.min_distance_m = cfg.scenario.min_distance_m;
  q.rho_per_m = cfg.scenario.rho_per_m;
  const policy::Decision dec = eng.service().decide_one(q);
  EXPECT_DOUBLE_EQ(eng.mission(id).d_star_m, dec.d_opt_m);
  EXPECT_DOUBLE_EQ(eng.mission(id).utility, dec.utility);
}

TEST(FleetEngine, FixedTargetBypassesDecision) {
  FleetEngine eng(FleetConfig{}, 3);
  MissionSpec spec;
  spec.start_pos = {80.0, 0.0, 10.0};
  spec.receiver_pos = {0.0, 0.0, 10.0};
  spec.fixed_target_distance_m = 35.0;
  spec.rho_per_m = 0.0;
  const int id = eng.add_mission(spec);
  eng.run_until(30.0);
  EXPECT_DOUBLE_EQ(eng.mission(id).d_star_m, 35.0);
  EXPECT_DOUBLE_EQ(eng.mission(id).utility, 0.0);
  EXPECT_EQ(eng.mission(id).phase, Phase::kTransmit);
  EXPECT_NEAR(geo::distance(eng.position(id), spec.receiver_pos), 35.0, 1e-9);
}

TEST(FleetEngine, CertainFailureNeverDelivers) {
  FleetConfig cfg;
  FleetEngine eng(cfg, 5);
  MissionSpec spec;
  spec.start_pos = {200.0, 0.0, 10.0};
  spec.receiver_pos = {0.0, 0.0, 10.0};
  spec.rho_per_m = 10.0;  // mean failure distance 0.1 m: dies on the ferry leg
  spec.fixed_target_distance_m = 20.0;
  const int id = eng.add_mission(spec);
  eng.run_until(120.0);
  EXPECT_EQ(eng.mission(id).phase, Phase::kFailed);
  EXPECT_EQ(eng.mission(id).bytes_delivered, 0u);
  EXPECT_EQ(eng.totals().failed, 1u);
}

TEST(FleetEngine, BatteryExhaustionFailsTheMission) {
  FleetConfig cfg;
  cfg.battery_autonomy_s = 5.0;
  FleetEngine eng(cfg, 6);
  MissionSpec spec;
  spec.start_pos = {400.0, 0.0, 10.0};  // ~89 s of ferrying at 4.5 m/s
  spec.receiver_pos = {0.0, 0.0, 10.0};
  spec.rho_per_m = 0.0;
  const int id = eng.add_mission(spec);
  eng.run_until(30.0);
  EXPECT_EQ(eng.mission(id).phase, Phase::kFailed);
}

TEST(FleetEngine, DeadlineAccountingFreezesLateBytes) {
  FleetConfig cfg;
  FleetEngine eng(cfg, 11);
  MissionSpec spec;
  spec.start_pos = {40.0, 0.0, 10.0};
  spec.receiver_pos = {0.0, 0.0, 10.0};
  spec.fixed_target_distance_m = 40.0;  // transmit from the spawn point
  spec.rho_per_m = 0.0;
  spec.mdata_bytes = 50.0e6;
  spec.deadline_s = 3.0;
  const int id = eng.add_mission(spec);
  eng.run_until(20.0);
  const MissionStatus st = eng.mission(id);
  EXPECT_GT(st.bytes_delivered, st.bytes_by_deadline);  // kept going after 3 s
  EXPECT_GT(st.bytes_by_deadline, 0u);                  // but some made it in time
}

TEST(FleetEngine, TotalsAddUp) {
  FleetEngine eng(FleetConfig{}, 9);
  add_ring(eng, 24, 1e-3);
  eng.run_until(200.0);
  const FleetTotals t = eng.totals();
  EXPECT_EQ(t.missions, 24u);
  EXPECT_EQ(t.ferrying + t.transmitting + t.completed + t.failed, 24u);
  EXPECT_GT(t.completed, 0u);
  EXPECT_GT(t.failed, 0u);  // rho 1e-3 over 40+ m legs kills some
  EXPECT_GT(t.bytes_delivered, 0u);
  EXPECT_GT(t.mean_completion_s, 0.0);
}

// --- Determinism suite (ISSUE satellite 4) -------------------------------

struct Snapshot {
  std::vector<geo::Vec3> pos;
  std::vector<std::uint64_t> delivered;
  std::vector<double> completed_t;
  std::vector<Phase> phase;

  static Snapshot take(FleetEngine& eng) {
    Snapshot s;
    for (int i = 0; i < static_cast<int>(eng.mission_count()); ++i) {
      const MissionStatus st = eng.mission(i);
      s.pos.push_back(eng.position(i));
      s.delivered.push_back(st.bytes_delivered);
      s.completed_t.push_back(st.completed_t_s);
      s.phase.push_back(st.phase);
    }
    return s;
  }
};

void expect_bit_identical(const Snapshot& a, const Snapshot& b, const char* what) {
  ASSERT_EQ(a.pos.size(), b.pos.size());
  for (std::size_t i = 0; i < a.pos.size(); ++i) {
    // EXPECT_EQ on doubles: bit-identical, not merely close.
    EXPECT_EQ(a.pos[i].x, b.pos[i].x) << what << " uav " << i;
    EXPECT_EQ(a.pos[i].y, b.pos[i].y) << what << " uav " << i;
    EXPECT_EQ(a.pos[i].z, b.pos[i].z) << what << " uav " << i;
    EXPECT_EQ(a.delivered[i], b.delivered[i]) << what << " uav " << i;
    EXPECT_EQ(a.completed_t[i], b.completed_t[i]) << what << " uav " << i;
    EXPECT_EQ(a.phase[i], b.phase[i]) << what << " uav " << i;
  }
}

Snapshot run_fleet(int threads, KinematicsMode mode) {
  FleetConfig cfg;
  cfg.threads = threads;
  cfg.kinematics = mode;
  cfg.max_tx_per_cell = 2;  // force scheduler decisions into the mix
  FleetEngine eng(cfg, 2024);
  add_ring(eng, 300, 5e-4);
  eng.run_until(90.0);
  return Snapshot::take(eng);
}

TEST(FleetDeterminism, BitIdenticalAcrossThreadCounts) {
  const Snapshot one = run_fleet(1, KinematicsMode::kBatched);
  const Snapshot two = run_fleet(2, KinematicsMode::kBatched);
  const Snapshot eight = run_fleet(8, KinematicsMode::kBatched);
  expect_bit_identical(one, two, "threads=2");
  expect_bit_identical(one, eight, "threads=8");
}

TEST(FleetDeterminism, BatchedAndScalarKinematicsAgreeBitwise) {
  const Snapshot batched = run_fleet(1, KinematicsMode::kBatched);
  const Snapshot scalar = run_fleet(1, KinematicsMode::kScalar);
  expect_bit_identical(batched, scalar, "scalar");
}

// --- Scheduler-policy outcome (ISSUE acceptance) -------------------------

double deadline_utility(SchedulerPolicy policy) {
  FleetConfig cfg;
  cfg.policy = policy;
  cfg.max_tx_per_cell = 1;  // one contended cell: admission order decides fates
  cfg.cell_size_m = 1e6;
  FleetEngine eng(cfg, 77);
  for (int i = 0; i < 6; ++i) {
    MissionSpec spec;
    spec.start_pos = {30.0, static_cast<double>(i), 10.0};
    spec.receiver_pos = {0.0, static_cast<double>(i), 10.0};
    spec.fixed_target_distance_m = 30.0;
    spec.rho_per_m = 0.0;
    spec.mdata_bytes = 8.0e6;
    // Arrival order (spawn order) runs *against* urgency: the earliest
    // arrivals have the latest deadlines, so FIFO serves the relaxed
    // missions first and starves the urgent ones.
    spec.spawn_t_s = 0.05 * i;
    spec.deadline_s = 20.0 - 3.0 * i;
    eng.add_mission(spec);
  }
  eng.run_until(40.0);
  return eng.totals().deadline_weighted_utility;
}

TEST(FleetScheduler, UrgentFirstBeatsFifoOnDeadlineUtility) {
  const double fifo = deadline_utility(SchedulerPolicy::kFifo);
  const double urgent = deadline_utility(SchedulerPolicy::kUrgentFirst);
  EXPECT_GT(urgent, fifo);
  EXPECT_GT(urgent, 0.0);
}

}  // namespace
}  // namespace skyferry::fleet
