// Small-n equivalence: the fleet engine's batched sweeps must reproduce
// the event-driven airnet::AerialNetwork statistically. Both engines run
// the same MAC grammar (ARF rate control, A-MPDU/Block-ACK exchanges,
// quadrocopter channel, 2 dB per-MPDU jitter); the fleet replaces the
// per-MPDU Bernoulli loop with the jitter-marginalized table + binomial
// draw (distributionally equivalent, DESIGN.md §7) and quantizes the
// exchange timeline into dt sweeps. Channel realizations are seeded
// differently, so the comparison is between seed-averaged means with a
// noise-aware tolerance, not trajectory-by-trajectory.
#include <vector>

#include <gtest/gtest.h>

#include "airnet/network.h"
#include "fleet/engine.h"

namespace skyferry::fleet {
namespace {

constexpr double kDistanceM = 40.0;
constexpr double kMdataBytes = 10.0e6;
constexpr int kSeeds = 6;

uav::UavConfig quad(const std::string& id, const geo::Vec3& pos) {
  uav::UavConfig cfg;
  cfg.id = id;
  cfg.platform = uav::PlatformSpec::arducopter();
  cfg.start_pos = pos;
  return cfg;
}

double airnet_completion_s(std::uint64_t seed, double distance_m) {
  airnet::AerialNetwork net(airnet::NetworkConfig{}, seed);
  const airnet::NodeId a = net.add_node(quad("tx", {distance_m, 0.0, 10.0}));
  const airnet::NodeId b = net.add_node(quad("rx", {0.0, 0.0, 10.0}));
  net.node(a).goto_and_hold({distance_m, 0.0, 10.0});
  net.node(b).goto_and_hold({0.0, 0.0, 10.0});
  net.start_transfer(a, b, net::DataBatch{10, 1.0e6});
  net.run_until(600.0);
  EXPECT_TRUE(net.transfer(0).completed);
  return net.transfer(0).completed_t_s;
}

double fleet_completion_s(std::uint64_t seed, double distance_m) {
  FleetEngine eng(FleetConfig{}, seed);
  MissionSpec spec;
  spec.start_pos = {distance_m, 0.0, 10.0};
  spec.receiver_pos = {0.0, 0.0, 10.0};
  spec.fixed_target_distance_m = distance_m;  // hover where it spawned
  spec.mdata_bytes = kMdataBytes;
  spec.rho_per_m = 0.0;
  eng.add_mission(spec);
  eng.run_until(600.0);
  EXPECT_EQ(eng.mission(0).phase, Phase::kDone);
  return eng.mission(0).completed_t_s;
}

TEST(FleetEquivalence, HoveringPairCompletionTimeMatchesAirnet) {
  double air_sum = 0.0;
  double fleet_sum = 0.0;
  for (int s = 1; s <= kSeeds; ++s) {
    air_sum += airnet_completion_s(static_cast<std::uint64_t>(s), kDistanceM);
    fleet_sum += fleet_completion_s(static_cast<std::uint64_t>(s), kDistanceM);
  }
  const double air_mean = air_sum / kSeeds;
  const double fleet_mean = fleet_sum / kSeeds;
  // Fading realizations differ per seed; at 40 m the per-seed spread of
  // the completion time is well under 20% of the mean, so a 25% band on
  // the 6-seed means catches any systematic bias (wrong PER path, wrong
  // airtime accounting, lost contention factor) without flaking.
  EXPECT_NEAR(fleet_mean, air_mean, 0.25 * air_mean)
      << "fleet " << fleet_mean << " s vs airnet " << air_mean << " s";
}

TEST(FleetEquivalence, PartialProgressMatchesAtLongRange) {
  // At 90 m the link limps (low MCS, stalls): compare delivered bytes
  // after a fixed horizon instead of completion times.
  constexpr double kFarM = 90.0;
  constexpr double kHorizonS = 60.0;
  double air_sum = 0.0;
  double fleet_sum = 0.0;
  for (int s = 1; s <= kSeeds; ++s) {
    airnet::AerialNetwork net(airnet::NetworkConfig{}, static_cast<std::uint64_t>(s));
    const airnet::NodeId a = net.add_node(quad("tx", {kFarM, 0.0, 10.0}));
    const airnet::NodeId b = net.add_node(quad("rx", {0.0, 0.0, 10.0}));
    net.node(a).goto_and_hold({kFarM, 0.0, 10.0});
    net.node(b).goto_and_hold({0.0, 0.0, 10.0});
    net.start_transfer(a, b, net::DataBatch{100, 1.0e6});
    net.run_until(kHorizonS);
    air_sum += static_cast<double>(net.transfer(0).payload_bytes_delivered);

    FleetEngine eng(FleetConfig{}, static_cast<std::uint64_t>(s));
    MissionSpec spec;
    spec.start_pos = {kFarM, 0.0, 10.0};
    spec.receiver_pos = {0.0, 0.0, 10.0};
    spec.fixed_target_distance_m = kFarM;
    spec.mdata_bytes = 100.0e6;
    spec.rho_per_m = 0.0;
    eng.add_mission(spec);
    eng.run_until(kHorizonS);
    fleet_sum += static_cast<double>(eng.mission(0).bytes_delivered);
  }
  const double air_mean = air_sum / kSeeds;
  const double fleet_mean = fleet_sum / kSeeds;
  EXPECT_NEAR(fleet_mean, air_mean, 0.35 * air_mean)
      << "fleet " << fleet_mean << " B vs airnet " << air_mean << " B";
}

}  // namespace
}  // namespace skyferry::fleet
