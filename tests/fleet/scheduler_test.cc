#include "fleet/scheduler.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::fleet {
namespace {

std::vector<std::uint32_t> pick(SchedulerPolicy p, const std::vector<TxCandidate>& c,
                                int max_tx) {
  std::vector<std::uint32_t> out;
  select_transmitters(p, c, max_tx, out);
  return out;
}

TEST(Scheduler, FifoPicksEarliestArrivals) {
  const std::vector<TxCandidate> c = {
      {0, 30.0, 100.0, 50}, {1, 10.0, 100.0, 50}, {2, 20.0, 100.0, 50}};
  EXPECT_EQ(pick(SchedulerPolicy::kFifo, c, 2), (std::vector<std::uint32_t>{1, 2}));
}

TEST(Scheduler, UrgentPicksEarliestDeadlines) {
  const std::vector<TxCandidate> c = {
      {0, 0.0, 300.0, 50}, {1, 0.0, 100.0, 50}, {2, 0.0, 200.0, 50}};
  EXPECT_EQ(pick(SchedulerPolicy::kUrgentFirst, c, 2), (std::vector<std::uint32_t>{1, 2}));
}

TEST(Scheduler, BufferPicksLargestBacklogs) {
  const std::vector<TxCandidate> c = {
      {0, 0.0, 100.0, 10}, {1, 0.0, 100.0, 99}, {2, 0.0, 100.0, 50}};
  EXPECT_EQ(pick(SchedulerPolicy::kMaximizeBuffer, c, 2), (std::vector<std::uint32_t>{1, 2}));
}

TEST(Scheduler, TiesBreakTowardLowerUavIndex) {
  const std::vector<TxCandidate> c = {
      {7, 1.0, 1.0, 5}, {3, 1.0, 1.0, 5}, {5, 1.0, 1.0, 5}};
  for (auto p : {SchedulerPolicy::kFifo, SchedulerPolicy::kUrgentFirst,
                 SchedulerPolicy::kMaximizeBuffer}) {
    EXPECT_EQ(pick(p, c, 2), (std::vector<std::uint32_t>{3, 5})) << to_string(p);
  }
}

TEST(Scheduler, WinnersIndependentOfCandidateOrder) {
  std::vector<TxCandidate> c = {
      {0, 5.0, 50.0, 10}, {1, 3.0, 80.0, 70}, {2, 9.0, 20.0, 30}, {3, 1.0, 90.0, 90}};
  const auto baseline = pick(SchedulerPolicy::kUrgentFirst, c, 2);
  std::sort(c.begin(), c.end(),
            [](const TxCandidate& a, const TxCandidate& b) { return a.uav > b.uav; });
  EXPECT_EQ(pick(SchedulerPolicy::kUrgentFirst, c, 2), baseline);
}

TEST(Scheduler, AdmitsEveryoneWhenUnderCapacity) {
  const std::vector<TxCandidate> c = {{0, 1.0, 1.0, 1}, {1, 2.0, 2.0, 2}};
  EXPECT_EQ(pick(SchedulerPolicy::kFifo, c, 8).size(), 2u);
}

TEST(Scheduler, DegenerateInputs) {
  const std::vector<TxCandidate> c = {{0, 1.0, 1.0, 1}};
  EXPECT_TRUE(pick(SchedulerPolicy::kFifo, c, 0).empty());
  EXPECT_TRUE(pick(SchedulerPolicy::kFifo, c, -3).empty());
  EXPECT_TRUE(pick(SchedulerPolicy::kFifo, {}, 4).empty());
}

TEST(Scheduler, PolicyNamesRoundTrip) {
  for (auto p : {SchedulerPolicy::kFifo, SchedulerPolicy::kUrgentFirst,
                 SchedulerPolicy::kMaximizeBuffer}) {
    SchedulerPolicy parsed{};
    ASSERT_TRUE(parse_policy(to_string(p), parsed));
    EXPECT_EQ(parsed, p);
  }
  SchedulerPolicy parsed{};
  EXPECT_FALSE(parse_policy("nonsense", parsed));
}

}  // namespace
}  // namespace skyferry::fleet
