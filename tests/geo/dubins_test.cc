#include "geo/dubins.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geo/geodesy.h"

namespace skyferry::geo {
namespace {

constexpr double kR = 20.0;  // Swinglet minimum turn radius

TEST(Dubins, StraightAheadIsStraightLine) {
  const Pose2 from{0.0, 0.0, 0.0};
  const Pose2 to{100.0, 0.0, 0.0};
  const DubinsPath p = dubins_shortest(from, to, kR);
  EXPECT_NEAR(p.length_m(), 100.0, 1e-6);
}

TEST(Dubins, NeverShorterThanEuclidean) {
  // Property over a pose grid: Dubins length >= straight-line distance.
  for (double x : {-80.0, 0.0, 60.0, 150.0}) {
    for (double y : {-50.0, 0.0, 90.0}) {
      for (double th : {0.0, 1.0, 2.5, 4.5}) {
        const Pose2 from{0.0, 0.0, 0.3};
        const Pose2 to{x, y, th};
        const DubinsPath p = dubins_shortest(from, to, kR);
        const double euclid = std::hypot(x, y);
        EXPECT_GE(p.length_m(), euclid - 1e-6)
            << "x=" << x << " y=" << y << " th=" << th;
      }
    }
  }
}

TEST(Dubins, SampleEndpointsMatch) {
  // The sampled pose at s = length must land on the goal pose.
  for (double x : {-70.0, 40.0, 120.0}) {
    for (double th : {0.0, 1.5, 3.0, 5.0}) {
      const Pose2 from{10.0, -20.0, 0.7};
      const Pose2 to{x, 35.0, th};
      const DubinsPath p = dubins_shortest(from, to, kR);
      const Pose2 start = dubins_sample(from, p, 0.0);
      EXPECT_NEAR(start.x, from.x, 1e-9);
      EXPECT_NEAR(start.y, from.y, 1e-9);
      const Pose2 end = dubins_sample(from, p, p.length_m());
      EXPECT_NEAR(end.x, to.x, 0.01) << "x=" << x << " th=" << th;
      EXPECT_NEAR(end.y, to.y, 0.01) << "x=" << x << " th=" << th;
      const double dth = std::fmod(std::abs(end.theta - to.theta), 2.0 * kPi);
      EXPECT_LT(std::min(dth, 2.0 * kPi - dth), 0.01) << "x=" << x << " th=" << th;
    }
  }
}

TEST(Dubins, UTurnCostsAtLeastPiR) {
  // Reverse direction at the same point: at least a half-circle each way.
  const Pose2 from{0.0, 0.0, 0.0};
  const Pose2 to{0.0, 0.0, kPi};
  const DubinsPath p = dubins_shortest(from, to, kR);
  EXPECT_GE(p.length_m(), kPi * kR - 1e-6);
}

TEST(Dubins, TighterRadiusNeverLengthens) {
  const Pose2 from{0.0, 0.0, 1.2};
  const Pose2 to{90.0, -40.0, 4.0};
  const double loose = dubins_shortest(from, to, 40.0).length_m();
  const double tight = dubins_shortest(from, to, 10.0).length_m();
  EXPECT_LE(tight, loose + 1e-6);
}

TEST(Dubins, SamplePathIsContinuous) {
  const Pose2 from{0.0, 0.0, 0.0};
  const Pose2 to{60.0, 80.0, 2.0};
  const DubinsPath p = dubins_shortest(from, to, kR);
  Pose2 prev = dubins_sample(from, p, 0.0);
  for (double s = 1.0; s <= p.length_m(); s += 1.0) {
    const Pose2 cur = dubins_sample(from, p, s);
    EXPECT_NEAR(std::hypot(cur.x - prev.x, cur.y - prev.y), 1.0, 0.05);
    prev = cur;
  }
}

TEST(Dubins, ShipTimeExceedsStraightLineEstimate) {
  // The ferry leaves its loiter circle heading away from the rendezvous:
  // the Dubins time is strictly worse than the base model's (d0-d)/v.
  const Pose2 from{0.0, 0.0, kPi};  // heading away
  const Pose2 to{200.0, 0.0, 0.0};
  const double v = 10.0;
  const double straight = 200.0 / v;
  const double dubins = dubins_tship_s(from, to, kR, v);
  EXPECT_GT(dubins, straight);
  // But bounded: the detour is at most ~2 full turns.
  EXPECT_LT(dubins, straight + 2.0 * 2.0 * kPi * kR / v);
}

TEST(Dubins, WordNames) {
  EXPECT_EQ(to_string(DubinsWord::kLSL), "LSL");
  EXPECT_EQ(to_string(DubinsWord::kRLR), "RLR");
}

}  // namespace
}  // namespace skyferry::geo
