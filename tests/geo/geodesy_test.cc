#include "geo/geodesy.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skyferry::geo {
namespace {

// Zurich-ish coordinates, the paper's flight field neighborhood.
const GeoPoint kOrigin{47.3769, 8.5417, 400.0};

TEST(Haversine, ZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(haversine_m(kOrigin, kOrigin), 0.0);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111km) {
  GeoPoint north = kOrigin;
  north.lat_deg += 1.0;
  const double d = haversine_m(kOrigin, north);
  EXPECT_NEAR(d, 111195.0, 100.0);  // 2*pi*R/360
}

TEST(Haversine, Symmetric) {
  GeoPoint p2 = kOrigin;
  p2.lat_deg += 0.003;
  p2.lon_deg -= 0.002;
  EXPECT_DOUBLE_EQ(haversine_m(kOrigin, p2), haversine_m(p2, kOrigin));
}

TEST(Haversine, ShortBaselineMatchesPlanarApproximation) {
  // 100 m east at this latitude.
  GeoPoint east = kOrigin;
  east.lon_deg += rad2deg(100.0 / (kEarthRadiusM * std::cos(deg2rad(kOrigin.lat_deg))));
  EXPECT_NEAR(haversine_m(kOrigin, east), 100.0, 0.01);
}

TEST(SlantDistance, IncludesAltitude) {
  // The paper's airplanes fly at 80 and 100 m for collision avoidance:
  // two aircraft at the same lat/lon but 20 m apart vertically.
  GeoPoint high = kOrigin;
  high.alt_m += 20.0;
  EXPECT_DOUBLE_EQ(slant_distance_m(kOrigin, high), 20.0);

  GeoPoint far = kOrigin;
  far.lat_deg += rad2deg(30.0 / kEarthRadiusM);  // 30 m north
  far.alt_m += 40.0;
  EXPECT_NEAR(slant_distance_m(kOrigin, far), 50.0, 0.01);
}

TEST(Bearing, CardinalDirections) {
  GeoPoint north = kOrigin;
  north.lat_deg += 0.01;
  EXPECT_NEAR(bearing_deg(kOrigin, north), 0.0, 0.1);

  GeoPoint east = kOrigin;
  east.lon_deg += 0.01;
  EXPECT_NEAR(bearing_deg(kOrigin, east), 90.0, 0.1);

  GeoPoint south = kOrigin;
  south.lat_deg -= 0.01;
  EXPECT_NEAR(bearing_deg(kOrigin, south), 180.0, 0.1);

  GeoPoint west = kOrigin;
  west.lon_deg -= 0.01;
  EXPECT_NEAR(bearing_deg(kOrigin, west), 270.0, 0.1);
}

TEST(LocalFrame, RoundTripsPositions) {
  const LocalFrame frame(kOrigin);
  const Vec3 enu{123.4, -56.7, 89.0};
  const GeoPoint g = frame.to_geo(enu);
  const Vec3 back = frame.to_enu(g);
  EXPECT_NEAR(back.x, enu.x, 1e-6);
  EXPECT_NEAR(back.y, enu.y, 1e-6);
  EXPECT_NEAR(back.z, enu.z, 1e-9);
}

TEST(LocalFrame, OriginMapsToZero) {
  const LocalFrame frame(kOrigin);
  const Vec3 zero = frame.to_enu(kOrigin);
  EXPECT_NEAR(zero.norm(), 0.0, 1e-9);
}

TEST(LocalFrame, EnuDistanceMatchesHaversine) {
  // Within the field-test scale (~400 m) the planar frame must agree with
  // the geodesic to centimeters.
  const LocalFrame frame(kOrigin);
  const Vec3 p{400.0, 300.0, 0.0};
  const GeoPoint g = frame.to_geo(p);
  EXPECT_NEAR(haversine_m(kOrigin, g), 500.0, 0.05);
}

TEST(DegRadConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(rad2deg(deg2rad(123.456)), 123.456);
  EXPECT_DOUBLE_EQ(deg2rad(180.0), kPi);
}

}  // namespace
}  // namespace skyferry::geo
