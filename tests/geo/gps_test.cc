#include "geo/gps.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace skyferry::geo {
namespace {

TEST(GpsReceiver, ErrorIsBoundedByConfiguredSigma) {
  GpsNoiseConfig cfg;
  cfg.horizontal_sigma_m = 2.0;
  cfg.vertical_sigma_m = 4.0;
  GpsReceiver rx(cfg, 42);

  stats::RunningStats ex, ey, ez;
  const Vec3 truth{100.0, 200.0, 50.0};
  // Long horizon (many decorrelation times) so the sample mean settles.
  for (int i = 0; i < 40000; ++i) {
    const Vec3 fix = rx.measure(truth, 1.0);
    ex.add(fix.x - truth.x);
    ey.add(fix.y - truth.y);
    ez.add(fix.z - truth.z);
  }
  // Stationary Gauss-Markov: stddev should match the configured sigmas
  // (correlated samples -> generous tolerance).
  EXPECT_NEAR(ex.stddev(), cfg.horizontal_sigma_m, 0.8);
  EXPECT_NEAR(ey.stddev(), cfg.horizontal_sigma_m, 0.8);
  EXPECT_NEAR(ez.stddev(), cfg.vertical_sigma_m, 1.6);
  // Mean error should be near zero.
  EXPECT_NEAR(ex.mean(), 0.0, 0.5);
}

TEST(GpsReceiver, ErrorIsTemporallyCorrelated) {
  GpsNoiseConfig cfg;
  cfg.correlation_time_s = 30.0;
  GpsReceiver rx(cfg, 7);
  const Vec3 truth{};
  rx.measure(truth, 1.0);
  const Vec3 e0 = rx.error();
  rx.measure(truth, 0.1);  // tiny step: error should barely move
  const Vec3 e1 = rx.error();
  EXPECT_LT((e1 - e0).norm(), 1.0);
}

TEST(GpsReceiver, DeterministicForSameSeed) {
  GpsNoiseConfig cfg;
  GpsReceiver a(cfg, 99);
  GpsReceiver b(cfg, 99);
  const Vec3 truth{10.0, 20.0, 30.0};
  for (int i = 0; i < 10; ++i) {
    const Vec3 fa = a.measure(truth, 0.2);
    const Vec3 fb = b.measure(truth, 0.2);
    EXPECT_EQ(fa.x, fb.x);
    EXPECT_EQ(fa.y, fb.y);
    EXPECT_EQ(fa.z, fb.z);
  }
}

TEST(GpsReceiver, IndependentStreamsForDifferentSeeds) {
  GpsNoiseConfig cfg;
  GpsReceiver a(cfg, 1);
  GpsReceiver b(cfg, 2);
  const Vec3 truth{};
  double diff = 0.0;
  for (int i = 0; i < 50; ++i) {
    diff += (a.measure(truth, 0.2) - b.measure(truth, 0.2)).norm();
  }
  EXPECT_GT(diff, 1.0);
}

TEST(GpsDistanceEstimate, MatchesTrueDistanceWithoutNoise) {
  const LocalFrame frame(GeoPoint{47.0, 8.0, 0.0});
  const Vec3 a{0.0, 0.0, 80.0};
  const Vec3 b{60.0, 0.0, 100.0};
  // Haversine+altitude on noise-free fixes should recover the slant range.
  const double d = gps_distance_estimate_m(frame, a, b);
  EXPECT_NEAR(d, std::hypot(60.0, 20.0), 0.05);
}

TEST(GpsDistanceEstimate, NoiseProducesMeterScaleError) {
  const LocalFrame frame(GeoPoint{47.0, 8.0, 0.0});
  GpsNoiseConfig cfg;
  GpsReceiver rx_a(cfg, 11), rx_b(cfg, 22);
  const Vec3 a{0.0, 0.0, 10.0};
  const Vec3 b{80.0, 0.0, 10.0};
  stats::RunningStats err;
  for (int i = 0; i < 1000; ++i) {
    const double est =
        gps_distance_estimate_m(frame, rx_a.measure(a, 0.2), rx_b.measure(b, 0.2));
    err.add(est - 80.0);
  }
  // Error stddev should be a few meters, not zero and not wild.
  EXPECT_GT(err.stddev(), 0.3);
  EXPECT_LT(err.stddev(), 10.0);
}

}  // namespace
}  // namespace skyferry::geo
