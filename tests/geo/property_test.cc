// Property-based geo invariants (tests/support/proptest.h): randomized
// cases with replayable per-case seeds instead of hand-picked fixtures.
#include <cmath>

#include <gtest/gtest.h>

#include "geo/dubins.h"
#include "geo/geodesy.h"
#include "geo/trajectory.h"
#include "geo/vec3.h"
#include "support/proptest.h"

namespace skyferry::geo {
namespace {

TEST(GeoProperty, DubinsPathNeverShorterThanEuclideanDistance) {
  FOR_ALL(300, 0xD0B1A5ULL, g) {
    const Pose2 from{g.uniform(-500.0, 500.0), g.uniform(-500.0, 500.0),
                     g.uniform(-kPi, kPi)};
    const Pose2 to{g.uniform(-500.0, 500.0), g.uniform(-500.0, 500.0),
                   g.uniform(-kPi, kPi)};
    const double radius = g.uniform(5.0, 60.0);
    const double euclid = std::hypot(to.x - from.x, to.y - from.y);
    const DubinsPath p = dubins_shortest(from, to, radius);
    EXPECT_GE(p.length_m(), euclid - 1e-6)
        << "from=(" << from.x << "," << from.y << "," << from.theta << ") to=(" << to.x << ","
        << to.y << "," << to.theta << ") r=" << radius;
  }
}

TEST(GeoProperty, LocalFrameRoundTripIsIdentity) {
  FOR_ALL(300, 0x10CA1ULL, g) {
    const GeoPoint origin{g.uniform(-70.0, 70.0), g.uniform(-180.0, 180.0),
                          g.uniform(0.0, 500.0)};
    const LocalFrame frame(origin);
    // Paper-scale offsets: the frame is specified for ~1 km scales.
    const Vec3 enu{g.uniform(-1000.0, 1000.0), g.uniform(-1000.0, 1000.0),
                   g.uniform(-100.0, 100.0)};
    const Vec3 back = frame.to_enu(frame.to_geo(enu));
    EXPECT_NEAR(back.x, enu.x, 1e-6) << "origin lat=" << origin.lat_deg;
    EXPECT_NEAR(back.y, enu.y, 1e-6);
    EXPECT_NEAR(back.z, enu.z, 1e-6);
  }
}

TEST(GeoProperty, GeoRoundTripThroughEnuIsIdentity) {
  FOR_ALL(300, 0x6E0ULL, g) {
    const GeoPoint origin{g.uniform(-70.0, 70.0), g.uniform(-179.0, 179.0), 0.0};
    const LocalFrame frame(origin);
    // A geodetic point within ~1 km of the origin (equirectangular regime).
    const GeoPoint p{origin.lat_deg + g.uniform(-0.009, 0.009),
                     origin.lon_deg + g.uniform(-0.009, 0.009), g.uniform(0.0, 300.0)};
    const GeoPoint back = frame.to_geo(frame.to_enu(p));
    EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-9);
    EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-9);
    EXPECT_NEAR(back.alt_m, p.alt_m, 1e-6);
  }
}

TEST(GeoProperty, TrajectoryArcLengthIsAdditive) {
  FOR_ALL(200, 0xA2CULL, g) {
    const int n = g.uniform_int(2, 12);
    Trajectory full;
    Trajectory prefix;
    Trajectory suffix;
    const int split = g.uniform_int(1, n - 1);
    double t = 0.0;
    double manual = 0.0;
    Vec3 prev;
    for (int i = 0; i < n; ++i) {
      TrajectorySample s;
      s.t_s = t;
      s.pos = Vec3{g.uniform(-200.0, 200.0), g.uniform(-200.0, 200.0), g.uniform(0.0, 50.0)};
      full.push(s);
      if (i <= split) prefix.push(s);
      if (i >= split) suffix.push(s);
      if (i > 0) manual += (s.pos - prev).norm();
      prev = s.pos;
      t += g.uniform(0.1, 2.0);
    }
    // Sum of segment lengths equals the hand summed polyline, and splitting
    // at any sample conserves total arc length.
    EXPECT_NEAR(full.path_length(), manual, 1e-9 * (1.0 + manual));
    EXPECT_NEAR(prefix.path_length() + suffix.path_length(), full.path_length(),
                1e-9 * (1.0 + full.path_length()))
        << "n=" << n << " split=" << split;
  }
}

TEST(GeoProperty, HaversineIsSymmetricAndNonNegative) {
  FOR_ALL(300, 0x4A7ULL, g) {
    const GeoPoint a{g.uniform(-89.0, 89.0), g.uniform(-180.0, 180.0), 0.0};
    const GeoPoint b{g.uniform(-89.0, 89.0), g.uniform(-180.0, 180.0), 0.0};
    const double ab = haversine_m(a, b);
    const double ba = haversine_m(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_NEAR(ab, ba, 1e-6 * (1.0 + ab));
    EXPECT_NEAR(haversine_m(a, a), 0.0, 1e-6);
    // Slant distance dominates ground distance once altitudes differ.
    const GeoPoint high{a.lat_deg, a.lon_deg, 120.0};
    EXPECT_GE(slant_distance_m(high, b) + 1e-9, ab);
  }
}

}  // namespace
}  // namespace skyferry::geo
