#include "geo/trajectory.h"

#include <gtest/gtest.h>

namespace skyferry::geo {
namespace {

Trajectory straight_line() {
  Trajectory t;
  t.push({0.0, {0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}});
  t.push({10.0, {100.0, 0.0, 0.0}, {10.0, 0.0, 0.0}});
  return t;
}

TEST(Trajectory, EmptyBasics) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
  EXPECT_DOUBLE_EQ(t.path_length(), 0.0);
}

TEST(Trajectory, InterpolatesPosition) {
  const Trajectory t = straight_line();
  EXPECT_DOUBLE_EQ(t.position_at(5.0).x, 50.0);
  EXPECT_DOUBLE_EQ(t.position_at(2.5).x, 25.0);
}

TEST(Trajectory, ClampsOutsideSpan) {
  const Trajectory t = straight_line();
  EXPECT_DOUBLE_EQ(t.position_at(-5.0).x, 0.0);
  EXPECT_DOUBLE_EQ(t.position_at(99.0).x, 100.0);
}

TEST(Trajectory, VelocityInterpolation) {
  Trajectory t;
  t.push({0.0, {}, {0.0, 0.0, 0.0}});
  t.push({10.0, {50.0, 0.0, 0.0}, {10.0, 0.0, 0.0}});
  EXPECT_DOUBLE_EQ(t.velocity_at(5.0).x, 5.0);
}

TEST(Trajectory, PathLength) {
  Trajectory t;
  t.push({0.0, {0.0, 0.0, 0.0}, {}});
  t.push({1.0, {3.0, 0.0, 0.0}, {}});
  t.push({2.0, {3.0, 4.0, 0.0}, {}});
  EXPECT_DOUBLE_EQ(t.path_length(), 7.0);
}

TEST(Trajectory, DuplicateTimeSamplesAreSafe) {
  Trajectory t;
  t.push({0.0, {0.0, 0.0, 0.0}, {}});
  t.push({0.0, {1.0, 0.0, 0.0}, {}});
  t.push({1.0, {2.0, 0.0, 0.0}, {}});
  // Lookup at the duplicated instant must not divide by zero.
  const Vec3 p = t.position_at(0.0);
  EXPECT_GE(p.x, 0.0);
  EXPECT_LE(p.x, 2.0);
}

TEST(Trajectory, ToGeoRoundTrip) {
  const LocalFrame frame(GeoPoint{47.0, 8.0, 400.0});
  const Trajectory t = straight_line();
  const auto geos = t.to_geo(frame);
  ASSERT_EQ(geos.size(), 2u);
  EXPECT_NEAR(frame.to_enu(geos[1]).x, 100.0, 1e-6);
}

TEST(PairwiseDistance, ConstantSeparation) {
  Trajectory a = straight_line();
  Trajectory b;
  b.push({0.0, {0.0, 60.0, 0.0}, {10.0, 0.0, 0.0}});
  b.push({10.0, {100.0, 60.0, 0.0}, {10.0, 0.0, 0.0}});
  const auto ds = pairwise_distance(a, b, 1.0);
  ASSERT_EQ(ds.size(), 11u);
  for (const auto& s : ds) EXPECT_NEAR(s.distance_m, 60.0, 1e-9);
}

TEST(PairwiseDistance, ApproachingUavs) {
  // Two platforms closing head-on at 10 m/s each from 200 m apart.
  Trajectory a, b;
  a.push({0.0, {0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}});
  a.push({10.0, {100.0, 0.0, 0.0}, {10.0, 0.0, 0.0}});
  b.push({0.0, {200.0, 0.0, 0.0}, {-10.0, 0.0, 0.0}});
  b.push({10.0, {100.0, 0.0, 0.0}, {-10.0, 0.0, 0.0}});
  const auto ds = pairwise_distance(a, b, 1.0);
  ASSERT_FALSE(ds.empty());
  EXPECT_NEAR(ds.front().distance_m, 200.0, 1e-9);
  EXPECT_NEAR(ds.back().distance_m, 0.0, 1e-9);
  // Monotone decrease.
  for (std::size_t i = 1; i < ds.size(); ++i) EXPECT_LT(ds[i].distance_m, ds[i - 1].distance_m);
}

TEST(PairwiseDistance, EmptyOrBadInputs) {
  Trajectory a = straight_line();
  Trajectory empty;
  EXPECT_TRUE(pairwise_distance(a, empty, 1.0).empty());
  EXPECT_TRUE(pairwise_distance(a, a, 0.0).empty());
}

}  // namespace
}  // namespace skyferry::geo
