#include "geo/vec3.h"

#include <gtest/gtest.h>

namespace skyferry::geo {
namespace {

TEST(Vec3, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
  EXPECT_EQ(v.norm(), 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, -3.0, 9.0}));
  EXPECT_EQ(a - b, (Vec3{-3.0, 7.0, -3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += {1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= {1.0, 1.0, 1.0};
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 3.0}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3.0, 6.0, 9.0}));
  v /= 3.0;
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 3.0}));
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
  const Vec3 n = v.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
  EXPECT_DOUBLE_EQ(n.x, 0.6);
  EXPECT_DOUBLE_EQ(n.y, 0.8);
}

TEST(Vec3, NormalizeZeroIsZero) {
  const Vec3 z;
  EXPECT_EQ(z.normalized(), z);
}

TEST(Vec3, HorizontalNormIgnoresAltitude) {
  const Vec3 v{3.0, 4.0, 100.0};
  EXPECT_DOUBLE_EQ(v.horizontal_norm(), 5.0);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_EQ(cross(x, y), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_DOUBLE_EQ(dot(x, x), 1.0);
}

TEST(Vec3, Distance) {
  const Vec3 a{0.0, 0.0, 0.0};
  const Vec3 b{3.0, 4.0, 12.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 13.0);
  EXPECT_DOUBLE_EQ(ground_distance(a, b), 5.0);
}

}  // namespace
}  // namespace skyferry::geo
