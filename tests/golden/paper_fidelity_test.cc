// Golden paper-fidelity suite (ctest labels: golden, slow).
//
// Re-runs the deterministic paper reproductions in-process — at reduced
// trial counts where the bench is stochastic — and asserts every shape
// claim EXPERIMENTS.md makes, cross-checked against the committed
// golden/ files: recomputed scalars must land inside the *golden's*
// tolerances, sample sets must pass a KS test against the committed
// reference draws, and the Monte-Carlo engine must produce bit-identical
// trial results for any --threads. The bench-level end-to-end version of
// the same gate is scripts/golden_regress.sh --check.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "check/expect.h"
#include "check/golden.h"
#include "core/nonstationary.h"
#include "core/optimizer.h"
#include "core/planner.h"
#include "core/scenario.h"
#include "core/strategy.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "io/format.h"
#include "mac/ampdu.h"
#include "mac/contention.h"
#include "mac/link.h"
#include "sim/rng.h"
#include "uav/failure.h"

#ifndef SKYFERRY_GOLDEN_DIR
#define SKYFERRY_GOLDEN_DIR "golden"
#endif

namespace skyferry {
namespace {

const std::vector<std::string> kCommittedGoldens = {
    "table1_platforms",         "fig1_strategy_curves",   "fig2_failure_tradeoff",
    "fig4_gps_traces",          "fig5_airplane_throughput", "fig6_mcs_vs_autorate",
    "fig7_quadrocopter",        "fig8_utility_curves",    "fig9_datasize_speed",
    "ablation_mixed_strategy",  "ablation_joint_speed",   "ablation_contention",
    "ablation_dubins_shipping", "ablation_failure_models", "calibrate_channel",
    "mc_delivery_probability"};

[[nodiscard]] bool LoadGolden(const std::string& bench, check::GoldenFile* out) {
  std::string error;
  const std::string path = std::string(SKYFERRY_GOLDEN_DIR) + "/" + bench + ".json";
  if (!check::GoldenFile::load(path, out, &error)) {
    ADD_FAILURE() << path << ": " << error;
    return false;
  }
  return true;
}

/// Assert a freshly recomputed value against the committed golden entry,
/// using the tolerance stored in the golden (the bench declared it).
void ExpectGoldenMetric(const check::GoldenFile& g, const std::string& name, double actual) {
  const check::GoldenMetric* m = g.find_metric(name);
  ASSERT_NE(m, nullptr) << g.bench() << " golden is missing metric '" << name
                        << "' — rerun scripts/golden_regress.sh --update";
  const check::CheckResult r = check::Expect(name, m->value, m->tol).check(actual);
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(GoldenDir, AllCommittedGoldensParseWithReplayHeaders) {
  for (const auto& name : kCommittedGoldens) {
    check::GoldenFile g;
    if (!LoadGolden(name, &g)) continue;
    EXPECT_EQ(g.schema(), check::GoldenFile::kSchemaVersion) << name;
    EXPECT_EQ(g.bench(), name);
    EXPECT_FALSE(g.metrics().empty()) << name << ": no machine-checkable claims";
    // Satellite requirement: every --json output embeds its replay header.
    EXPECT_NE(g.replay_command().find(name), std::string::npos)
        << name << ": replay command '" << g.replay_command() << "'";
    const auto& flags = g.replay_flags();
    EXPECT_TRUE(std::any_of(flags.begin(), flags.end(),
                            [](const auto& kv) { return kv.first == "json"; }))
        << name << ": replay flags lack --json";
  }
}

// ---- Table 1: platform facts are exact reproductions ------------------------

TEST(PaperFidelity, Table1PlatformFacts) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("table1_platforms", &g));
  const auto air = uav::PlatformSpec::swinglet();
  const auto quad = uav::PlatformSpec::arducopter();
  ExpectGoldenMetric(g, "airplane_cannot_hover", air.can_hover ? 0.0 : 1.0);
  ExpectGoldenMetric(g, "quad_can_hover", quad.can_hover ? 1.0 : 0.0);
  ExpectGoldenMetric(g, "airplane_range_m", air.range_m());
  ExpectGoldenMetric(g, "quad_range_m", quad.range_m());
  ExpectGoldenMetric(g, "airplane_cruise_mps", air.cruise_speed_mps);
  ExpectGoldenMetric(g, "quad_cruise_mps", quad.cruise_speed_mps);
  ExpectGoldenMetric(g, "airplane_ceiling_m", air.max_safe_altitude_m);
  ExpectGoldenMetric(g, "quad_ceiling_m", quad.max_safe_altitude_m);
  ExpectGoldenMetric(g, "paper_rho_airplane", core::Scenario::airplane().rho_per_m);
  ExpectGoldenMetric(g, "paper_rho_quad", core::Scenario::quadrocopter().rho_per_m);
}

// ---- Figure 1: strategy completion times (median model) ---------------------

TEST(PaperFidelity, Fig1IntermediateDistanceWins) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("fig1_strategy_curves", &g));
  const auto model = core::PaperLogThroughput::quadrocopter();
  const core::SpeedDegradation deg{};
  const core::DeliveryParams params{80.0, 4.5, 20e6, 20.0};
  const auto outcomes = core::compare_strategies({20.0, 40.0, 60.0, 80.0}, model, deg, params);

  double moving_total = 0.0, now_total = 0.0, slowest_hover = 0.0;
  double best_total = 1e300, argmin_d = 0.0;
  std::vector<std::pair<std::string, double>> hover_scores;
  for (const auto& out : outcomes) {
    ExpectGoldenMetric(g, "total_" + out.spec.label() + "_s", out.completion_time_s);
    if (out.spec.kind == core::StrategyKind::kMoveAndTransmit) {
      moving_total = out.completion_time_s;
      continue;
    }
    if (out.spec.kind == core::StrategyKind::kTransmitNow) now_total = out.completion_time_s;
    slowest_hover = std::max(slowest_hover, out.completion_time_s);
    hover_scores.emplace_back(out.spec.label(), out.completion_time_s);
    if (out.spec.kind == core::StrategyKind::kShipThenTransmit &&
        out.completion_time_s < best_total) {
      best_total = out.completion_time_s;
      argmin_d = out.spec.target_distance_m;
    }
  }

  // EXPERIMENTS.md shape claims, re-derived from scratch.
  EXPECT_GE(now_total, slowest_hover - 1e-9)
      << "transmit-now must be the slowest hover strategy for 20 MB";
  EXPECT_TRUE(argmin_d == 40.0 || argmin_d == 60.0)
      << "the d=40..60 near-tie must win, got d=" << argmin_d;
  for (const auto& out : outcomes) {
    if (out.spec.kind == core::StrategyKind::kShipThenTransmit) {
      EXPECT_LE(out.completion_time_s, moving_total + 1e-9)
          << "move-and-transmit must lose to " << out.spec.label();
    }
  }
  ExpectGoldenMetric(g, "argmin_hover_d_m", argmin_d);

  // The committed hover ordering must re-rank identically.
  const check::GoldenOrdering* ord = g.find_ordering("hover_totals_ascending");
  ASSERT_NE(ord, nullptr);
  const auto r = check::OrderingExpect(ord->name, ord->ranked).check(hover_scores);
  EXPECT_TRUE(r.ok) << r.message;

  // Crossover d=80 vs d=60: batch sizes above it favor shipping closer.
  const double mstar = core::crossover_mdata_bytes(model, 80.0, 60.0, 4.5) / 1e6;
  ExpectGoldenMetric(g, "crossover_d80_vs_d60_mb", mstar);
  EXPECT_GT(mstar, 0.0);
  EXPECT_LT(mstar, 20.0) << "the 20 MB batch of Fig.1 must sit above the crossover";
}

// ---- Figure 2: failure tradeoff Monte-Carlo ---------------------------------

struct Fig2Run {
  std::vector<std::vector<int>> delivered;  // [point][trial]
  std::vector<double> completion_s;         // [point]
  std::vector<double> targets;
};

Fig2Run RunFig2(int trials, int threads, std::uint64_t seed, double rho) {
  const core::Scenario scen = core::Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const core::SpeedDegradation deg{};
  const core::DeliveryParams params = scen.delivery_params();

  Fig2Run out;
  out.targets = {scen.d0_m, 60.0, scen.min_distance_m};
  const auto points = exp::Sweep{}.axis("d", out.targets).cartesian();
  for (const auto& p : points) {
    const double target_d = p.at("d");
    core::StrategySpec spec;
    spec.kind = (target_d >= params.d0_m) ? core::StrategyKind::kTransmitNow
                                          : core::StrategyKind::kShipThenTransmit;
    spec.target_distance_m = target_d;
    out.completion_s.push_back(simulate_strategy(spec, model, deg, params).completion_time_s);
  }

  exp::RunnerConfig rc;
  rc.threads = threads;
  rc.trials = trials;
  rc.seed = seed;
  const auto run = exp::Runner(rc).run(points, [&](const exp::Point& p, std::uint64_t s) {
    const uav::FailureModel failure(rho);
    sim::Rng rng(s);
    return failure.sample_failure_distance(rng) >= params.d0_m - p.at("d") ? 1 : 0;
  });
  out.delivered = run.results;
  return out;
}

TEST(PaperFidelity, Fig2TradeoffShapeAtReducedTrials) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("fig2_failure_tradeoff", &g));
  const int kTrials = 4000;  // bench runs 20000; the shape survives 4000
  const auto run = RunFig2(kTrials, 0, 42, 8e-3);

  std::vector<double> p_deliver, ev;
  for (std::size_t k = 0; k < run.targets.size(); ++k) {
    double completes = 0.0;
    for (const int okr : run.delivered[k]) completes += okr;
    const double p = completes / static_cast<double>(run.delivered[k].size());
    p_deliver.push_back(p);
    ev.push_back(run.completion_s[k] > 0.0 ? p / run.completion_s[k] : 0.0);
  }

  // Deeper approach risks the batch: P(deliver) falls as d shrinks.
  EXPECT_GT(p_deliver[0], p_deliver[1]);
  EXPECT_GT(p_deliver[1], p_deliver[2]);
  // ... but transmit-now pays so much delay that any shipping wins on EV.
  EXPECT_GT(ev[1], ev[0]) << "ship-to-60 must beat transmit-now on expected value";
  EXPECT_GT(ev[2], ev[0]) << "ship-to-20 must beat transmit-now on expected value";

  // Recomputed P(deliver) vs the golden value. Both sides are binomial
  // draws (ours at kTrials, the golden's at its recorded sd), so the
  // band combines the two variances; 4 sigma keeps the false-failure
  // rate of this regression test below 1e-4 per metric.
  for (std::size_t k = 0; k < run.targets.size(); ++k) {
    const std::string name = "p_deliver_d=" + io::format_number(run.targets[k]);
    const check::GoldenMetric* m = g.find_metric(name);
    ASSERT_NE(m, nullptr) << name;
    const double var_run = std::max(m->value * (1.0 - m->value), 1e-6) / kTrials;
    const double sd = std::sqrt(var_run + m->tol.sd * m->tol.sd);
    const auto r =
        check::Expect(name, m->value, check::Tolerance::sigmas(4.0, sd)).check(p_deliver[k]);
    EXPECT_TRUE(r.ok) << r.message;
    ExpectGoldenMetric(g, "delay_ok_d=" + io::format_number(run.targets[k]),
                       run.completion_s[k]);
  }
}

TEST(PaperFidelity, Fig2MonteCarloDeterministicAcrossThreads) {
  // The determinism contract behind every committed stochastic golden:
  // per-trial seeds are forked from indices, so the trial results are
  // bit-identical for any worker count.
  const auto one = RunFig2(2000, 1, 42, 8e-3);
  const auto eight = RunFig2(2000, 8, 42, 8e-3);
  ASSERT_EQ(one.delivered.size(), eight.delivered.size());
  for (std::size_t k = 0; k < one.delivered.size(); ++k)
    EXPECT_EQ(one.delivered[k], eight.delivered[k]) << "point " << k;
  EXPECT_EQ(one.completion_s, eight.completion_s);
}

// ---- Figure 8: the optimum moves outward with risk --------------------------

TEST(PaperFidelity, Fig8OptimumMovesOutwardWithRho) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("fig8_utility_curves", &g));
  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    const auto model = scen.paper_throughput();
    std::vector<double> dopts;
    for (double rho : {scen.rho_per_m, 1e-3, 2e-3, 5e-3, 1e-2}) {
      const uav::FailureModel failure(rho);
      const core::CommDelayModel delay(model, scen.delivery_params());
      const core::UtilityFunction u(delay, failure);
      const auto r = core::optimize(u);
      ExpectGoldenMetric(g, scen.name + "_dopt_rho" + io::format_number(rho) + "_m", r.d_opt_m);
      dopts.push_back(r.d_opt_m);
    }
    for (std::size_t i = 1; i < dopts.size(); ++i)
      EXPECT_GE(dopts[i], dopts[i - 1] - 1e-9)
          << scen.name << ": d_opt must be monotone nondecreasing in rho";
  }
}

TEST(PaperFidelity, Fig8D0SensitivityFlipsToTransmitNow) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("fig8_utility_curves", &g));
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(2e-3);
  bool flipped = false;
  double prev_dopt = 1e300;
  for (double d0 : {300.0, 260.0, 220.0, 180.0, 140.0, 100.0, 60.0}) {
    core::DeliveryParams p = scen.delivery_params();
    p.d0_m = d0;
    const core::CommDelayModel delay(model, p);
    const core::UtilityFunction u(delay, failure);
    const auto r = core::optimize(u);
    if (d0 == 300.0 || d0 == 260.0 || d0 == 220.0)
      ExpectGoldenMetric(g, "d0sens_dopt_at_d0_" + io::format_number(d0), r.d_opt_m);
    EXPECT_LE(r.d_opt_m, prev_dopt + 1e-9) << "d_opt cannot grow as d0 shrinks";
    prev_dopt = r.d_opt_m;
    if (r.boundary == core::Boundary::kTransmitNow) flipped = true;
  }
  EXPECT_TRUE(flipped) << "once d0 <= d_opt the optimizer must transmit immediately";
}

// ---- Figure 9: Mdata x speed grid monotonicity ------------------------------

TEST(PaperFidelity, Fig9GridMonotoneReduced) {
  // Reduced 3x3 corner grid of the bench's 6x5; the paper's readings are
  // monotonicity claims, so the subgrid inherits them.
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  const std::vector<double> speeds{3.0, 10.0, 20.0};
  const std::vector<double> mdatas{5.0, 15.0, 45.0};
  std::vector<std::vector<double>> grid;
  std::vector<double> u_at_v10;
  for (double mdata_mb : mdatas) {
    std::vector<double> row;
    for (double v : speeds) {
      core::DeliveryParams p = scen.delivery_params();
      p.mdata_bytes = mdata_mb * 1e6;
      p.speed_mps = v;
      const core::CommDelayModel delay(model, p);
      const core::UtilityFunction u(delay, failure);
      const auto r = core::optimize(u);
      row.push_back(r.d_opt_m);
      if (v == 10.0) u_at_v10.push_back(r.utility);
    }
    grid.push_back(row);
  }
  for (const auto& row : grid)
    for (std::size_t i = 1; i < row.size(); ++i)
      EXPECT_LE(row[i], row[i - 1] + 1e-9) << "faster UAVs must move closer";
  for (std::size_t vi = 0; vi < speeds.size(); ++vi)
    for (std::size_t mi = 1; mi < grid.size(); ++mi)
      EXPECT_LE(grid[mi][vi], grid[mi - 1][vi] + 1e-9) << "bigger batches must move closer";
  for (std::size_t i = 1; i < u_at_v10.size(); ++i)
    EXPECT_LE(u_at_v10[i], u_at_v10[i - 1] + 1e-12) << "U(d_opt) must fall with Mdata";
}

// ---- Ablations: mixed dominance, non-stationary rho, contention -------------

TEST(PaperFidelity, MixedStrategyWeaklyDominatesShip) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("ablation_mixed_strategy", &g));
  const auto scen = core::Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const core::SpeedDegradation deg{};
  for (double mdata_mb : {5.0, 20.0, 56.2}) {
    core::DeliveryParams p = scen.delivery_params();
    p.mdata_bytes = mdata_mb * 1e6;
    const core::DelayedGratificationPlanner planner(model, scen.failure_model());
    const auto dec = planner.decide(p);
    auto run = [&](core::StrategyKind kind, double target) {
      core::StrategySpec spec;
      spec.kind = kind;
      spec.target_distance_m = target;
      return simulate_strategy(spec, model, deg, p, 0.02).completion_time_s;
    };
    const double t_now = run(core::StrategyKind::kTransmitNow, p.d0_m);
    const double t_ship = run(core::StrategyKind::kShipThenTransmit, dec.opt.d_opt_m);
    const double t_move = run(core::StrategyKind::kMoveAndTransmit, p.min_distance_m);
    const double t_mixed = run(core::StrategyKind::kMixed, dec.opt.d_opt_m);
    EXPECT_LE(t_mixed, t_ship + 1e-6)
        << "mixed must weakly dominate pure ship-then-transmit at " << mdata_mb << " MB";
    EXPECT_LE(std::min({t_now, t_ship, t_mixed}), t_move + 1e-9)
        << "move-and-transmit must never be the unique best at " << mdata_mb << " MB";
    if (mdata_mb == 56.2) {
      ExpectGoldenMetric(g, "mixed_baseline_56mb_s", t_mixed);
      ExpectGoldenMetric(g, "ship_baseline_56mb_s", t_ship);
    }
  }
}

TEST(PaperFidelity, NonstationaryHazardZoneMovesOptimumOffFloor) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("ablation_failure_models", &g));
  const auto scen = core::Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const core::CommDelayModel delay(model, scen.delivery_params());

  const auto baseline =
      core::optimize_nonstationary(delay, core::constant_rho(scen.rho_per_m));
  const auto hazard = core::optimize_nonstationary(
      delay, core::two_zone_rho(scen.rho_per_m, 0.05, 40.0));
  const auto linear = core::optimize_nonstationary(delay, core::linear_rho(0.05, -4.8e-4));

  EXPECT_LE(baseline.d_opt_m, 25.0) << "stationary quad optimum sits at the 20 m floor";
  EXPECT_GT(hazard.d_opt_m, 30.0) << "hazard zone must lift the optimum off the floor";
  ExpectGoldenMetric(g, "nonstationary_hazard_zone_dopt_m", hazard.d_opt_m);
  ExpectGoldenMetric(g, "nonstationary_linear_dopt_m", linear.d_opt_m);
}

TEST(PaperFidelity, ContentionMoreThanDoublesDelay) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("ablation_contention", &g));
  mac::MacTiming timing;
  mac::MpduFormat f;
  const double frame_s = mac::ampdu_duration_s(f, phy::mcs(2), phy::ChannelWidth::kCw40MHz,
                                               phy::GuardInterval::kShort400ns, 14);
  const double ack_s = mac::block_ack_duration_s(phy::ChannelWidth::kCw40MHz);
  const auto one = mac::analyze_contention(1, timing, frame_s, ack_s);
  const auto two = mac::analyze_contention(2, timing, frame_s, ack_s);
  ExpectGoldenMetric(g, "per_pair_mbps_n1", 11.0 * one.efficiency_vs_single);
  ExpectGoldenMetric(g, "per_pair_mbps_n2", 11.0 * two.efficiency_vs_single);
  EXPECT_LT(two.efficiency_vs_single, 0.5 * one.efficiency_vs_single)
      << "two pairs must more than double each batch's delay";
}

// ---- Distributions: fresh link-sim draws vs committed samples ---------------

TEST(PaperFidelity, Fig7HoverThroughputDistributionKs) {
  check::GoldenFile g;
  ASSERT_TRUE(LoadGolden("fig7_quadrocopter", &g));
  const check::GoldenSamples* ref = g.find_samples("hover_mbps_d60");
  ASSERT_NE(ref, nullptr) << "fig7 golden lacks the hover_mbps_d60 sample set";
  ASSERT_GE(ref->values.size(), 100u);

  // Fresh draws from the same configuration under a seed the bench never
  // uses: only a genuine distribution shift can fail the KS test.
  std::vector<double> fresh;
  for (int k = 0; k < 2; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = phy::ChannelConfig::quadrocopter();
    mac::ArfRate rc;
    mac::LinkSimulator sim(cfg, rc, 987654321ULL + 977ULL * k);
    const auto res = sim.run_saturated(60.0, mac::static_geometry(60.0));
    for (const auto& s : res.samples) fresh.push_back(s.mbps);
  }
  const auto r = check::DistributionExpect(ref->name, ref->values).ks(fresh, ref->ks_alpha);
  EXPECT_TRUE(r.ok) << r.message;
}

}  // namespace
}  // namespace skyferry
