// Calibration gate: the PHY+MAC simulator, run like the paper's iperf
// measurements (auto-rate, saturated UDP), must reproduce the *shape* of
// the paper's measured throughput-vs-distance medians — a log-linear
// decay with the right sign, a good log2 fit, and sane absolute values.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mac/link.h"
#include "stats/quantile.h"
#include "stats/regression.h"

namespace skyferry {
namespace {

/// Median auto-rate goodput [Mb/s] at a distance, averaged over several
/// independent runs (the slow shadowing needs long horizons to settle).
/// The instrument is the vendor-style ARF controller — what the paper's
/// Ralink radios ran — matching the channel calibration.
double median_autorate_mbps(const phy::ChannelConfig& ch, double d, std::uint64_t seed,
                            double secs = 60.0, int seeds = 3) {
  double sum = 0.0;
  for (int k = 0; k < seeds; ++k) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::ArfRate rc;
    mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
    const auto res = sim.run_saturated(secs, mac::static_geometry(d));
    std::vector<double> mbps;
    for (const auto& s : res.samples) mbps.push_back(s.mbps);
    sum += stats::median(mbps);
  }
  return sum / seeds;
}

TEST(Calibration, AirplaneMediansFollowLogFit) {
  const auto ch = phy::ChannelConfig::airplane();
  std::vector<double> ds, medians;
  for (double d = 20.0; d <= 300.0; d += 40.0) {
    ds.push_back(d);
    medians.push_back(median_autorate_mbps(ch, d, 1000 + static_cast<std::uint64_t>(d)));
  }
  // Overall decay: near vs far.
  EXPECT_GT(medians.front(), medians.back() + 3.0);
  // Log-linear shape, like the paper's fit (R^2 = 0.90 there; ours is
  // noisier because the airplane channel carries banking outages).
  const auto fit = stats::log2_fit(ds, medians);
  EXPECT_LT(fit.a, -2.0);
  EXPECT_GT(fit.r_squared, 0.55);
  // Paper's near-distance reality check: ~20-25 Mb/s at short range,
  // clearly below the 802.11n indoor regime.
  EXPECT_GT(medians.front(), 12.0);
  EXPECT_LT(medians.front(), 48.0);
}

TEST(Calibration, QuadrocopterMediansNearPaperFit) {
  const auto ch = phy::ChannelConfig::quadrocopter();
  std::vector<double> ds, medians;
  for (double d = 20.0; d <= 80.0; d += 20.0) {
    ds.push_back(d);
    medians.push_back(median_autorate_mbps(ch, d, 2000 + static_cast<std::uint64_t>(d)));
  }
  // Compare each median with the paper's fit within a factor band.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const double paper = -10.5 * std::log2(ds[i]) + 73.0;
    EXPECT_GT(medians[i], paper * 0.4) << "d=" << ds[i];
    EXPECT_LT(medians[i], paper * 2.5) << "d=" << ds[i];
  }
  const auto fit = stats::log2_fit(ds, medians);
  EXPECT_LT(fit.a, -3.0);
}

TEST(Calibration, QuadSpreadSmallerThanAirplane) {
  // Fig. 5 vs Fig. 7 (left): quad boxes are much tighter at comparable
  // distances. Compare relative spread (IQR / median) so the different
  // absolute rates do not confound the comparison.
  auto rel_iqr_at = [&](const phy::ChannelConfig& ch, double d, std::uint64_t seed) {
    std::vector<double> mbps;
    for (int k = 0; k < 3; ++k) {
      mac::LinkConfig cfg;
      cfg.channel = ch;
      mac::ArfRate rc;
      mac::LinkSimulator sim(cfg, rc, seed + 977ULL * k);
      const auto res = sim.run_saturated(60.0, mac::static_geometry(d));
      for (const auto& s : res.samples) mbps.push_back(s.mbps);
    }
    const auto b = stats::boxplot(mbps);
    return b.median > 0.0 ? b.iqr() / b.median : 1e9;
  };
  // Aggregate over each platform's measured range (quads 20-80 m,
  // airplanes 20-320 m) the way the paper's figures do.
  double air = 0.0, quad = 0.0;
  for (double d : {20.0, 80.0, 160.0, 240.0}) {
    air += rel_iqr_at(phy::ChannelConfig::airplane(), d, 31 + static_cast<std::uint64_t>(d));
  }
  for (double d : {20.0, 40.0, 60.0, 80.0}) {
    quad += rel_iqr_at(phy::ChannelConfig::quadrocopter(), d, 31 + static_cast<std::uint64_t>(d));
  }
  EXPECT_LT(quad / 4.0, air / 4.0 * 1.2);
}

TEST(Calibration, IndoorReachesHighThroughput) {
  // Paper Sec. 3.1: indoor lab tests reached ~176 Mb/s; aerial links got
  // 802.11g-like ~20 Mb/s. Our indoor preset must be several times
  // faster than any aerial distance.
  const double indoor = median_autorate_mbps(phy::ChannelConfig::indoor(), 5.0, 41, 10.0);
  const double aerial = median_autorate_mbps(phy::ChannelConfig::airplane(), 100.0, 41, 10.0);
  EXPECT_GT(indoor, 80.0);
  EXPECT_GT(indoor, 3.0 * aerial);
}

}  // namespace
}  // namespace skyferry
