// Shape tests for the paper's figures: each asserts the qualitative
// result (who wins, what is monotone, where the optimum sits) that the
// corresponding bench regenerates quantitatively.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/scenario.h"
#include "core/strategy.h"
#include "mac/link.h"
#include "stats/quantile.h"

namespace skyferry {
namespace {

double median_mbps(mac::LinkSimulator& sim, double secs, const mac::GeometryFn& geom) {
  const auto res = sim.run_saturated(secs, geom);
  std::vector<double> mbps;
  for (const auto& s : res.samples) mbps.push_back(s.mbps);
  return stats::median(mbps);
}

// ---- Figure 6: best fixed MCS vs auto rate --------------------------------

TEST(Fig6Shape, FixedMcsBeatsVendorAutorate) {
  // "the throughput obtained using the best among the set of MCS rates
  // outperforms PHY auto rate adaptation (with 100% or more higher
  // throughput at each distance)" — our vendor-ARF model reproduces a
  // conservative >= 1.3x at the near/mid distances (see EXPERIMENTS.md
  // for the far-range discussion).
  const auto ch = phy::ChannelConfig::airplane();
  for (double d : {40.0, 60.0, 100.0}) {
    mac::LinkConfig cfg;
    cfg.channel = ch;

    double auto_sum = 0.0;
    double best_sum = 0.0;
    for (int k = 0; k < 3; ++k) {
      mac::ArfRate auto_rc;
      mac::LinkSimulator auto_sim(cfg, auto_rc, 77 + 977ULL * k);
      auto_sum += median_mbps(auto_sim, 60.0, mac::static_geometry(d, 3.0));

      double best_fixed = 0.0;
      for (int mcs : {0, 1, 2, 3, 8}) {
        mac::FixedMcs rc(mcs);
        mac::LinkSimulator sim(cfg, rc, 77 + 977ULL * k);
        best_fixed = std::max(best_fixed, median_mbps(sim, 60.0, mac::static_geometry(d, 3.0)));
      }
      best_sum += best_fixed;
    }
    EXPECT_GT(best_sum, 1.3 * std::max(auto_sum, 0.5)) << "d=" << d;
  }
}

TEST(Fig6Shape, BestMcsShiftsDownWithDistance) {
  // MCS3 rules close in; far out a more robust (lower) single-stream MCS
  // takes over.
  const auto ch = phy::ChannelConfig::airplane();
  auto best_mcs_at = [&](double d) {
    double best = -1.0;
    int arg = -1;
    for (int mcs : {0, 1, 2, 3, 4}) {
      mac::FixedMcs rc(mcs);
      mac::LinkConfig cfg;
      cfg.channel = ch;
      mac::LinkSimulator sim(cfg, rc, 99);
      const double m = median_mbps(sim, 15.0, mac::static_geometry(d));
      if (m > best) {
        best = m;
        arg = mcs;
      }
    }
    return arg;
  };
  const int near_mcs = best_mcs_at(40.0);
  const int far_mcs = best_mcs_at(280.0);
  EXPECT_GE(near_mcs, 2);
  EXPECT_LE(far_mcs, near_mcs);
}

// ---- Figure 7: hover vs moving, speed sweep --------------------------------

TEST(Fig7Shape, MovingThroughputDropsVsHover) {
  const auto ch = phy::ChannelConfig::quadrocopter();
  mac::LinkConfig cfg;
  cfg.channel = ch;
  mac::ArfRate rc1, rc2;
  mac::LinkSimulator hover(cfg, rc1, 55);
  mac::LinkSimulator moving(cfg, rc2, 55);
  const double m_hover = median_mbps(hover, 60.0, mac::static_geometry(60.0, 0.0));
  const double m_moving = median_mbps(moving, 60.0, mac::static_geometry(60.0, 8.0));
  EXPECT_LT(m_moving, m_hover);
}

TEST(Fig7Shape, ThroughputMonotoneDecreasingInSpeed) {
  const auto ch = phy::ChannelConfig::quadrocopter();
  std::vector<double> medians;
  for (double v : {0.0, 4.0, 8.0, 15.0}) {
    mac::LinkConfig cfg;
    cfg.channel = ch;
    mac::ArfRate rc;
    mac::LinkSimulator sim(cfg, rc, 66);
    medians.push_back(median_mbps(sim, 60.0, mac::static_geometry(60.0, v)));
  }
  EXPECT_GT(medians[0], medians[2]);  // 0 vs 8 m/s: clear drop
  EXPECT_GT(medians[1], medians[3]);  // 4 vs 15 m/s
}

// ---- Figure 8: utility curves ----------------------------------------------

TEST(Fig8Shape, DoptIncreasesWithRhoBothScenarios) {
  for (const auto& scen : {core::Scenario::airplane(), core::Scenario::quadrocopter()}) {
    const auto model = scen.paper_throughput();
    double prev = 0.0;
    for (double rho : {scen.rho_per_m, 1e-3, 2e-3, 5e-3, 1e-2}) {
      const uav::FailureModel failure(rho);
      const core::CommDelayModel delay(model, scen.delivery_params());
      const core::UtilityFunction u(delay, failure);
      const auto r = core::optimize(u);
      EXPECT_GE(r.d_opt_m, prev - 1.0) << scen.name << " rho=" << rho;
      prev = r.d_opt_m;
    }
  }
}

TEST(Fig8Shape, DoptInvariantToD0UntilItBinds) {
  // Paper: "d_opt does not change having smaller d0 ... as long as d0
  // does not reach d_opt. Once d0 = d_opt, it becomes beneficial to
  // transmit immediately."
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);

  auto dopt_for = [&](double d0) {
    core::DeliveryParams p = scen.delivery_params();
    p.d0_m = d0;
    const core::CommDelayModel delay(model, p);
    const core::UtilityFunction u(delay, failure);
    return core::optimize(u).d_opt_m;
  };

  const double dopt_300 = dopt_for(300.0);
  ASSERT_LT(dopt_300, 250.0);
  EXPECT_NEAR(dopt_for(280.0), dopt_300, 1.0);
  EXPECT_NEAR(dopt_for(260.0), dopt_300, 1.0);
  // Once d0 <= dopt, transmit immediately (d_opt == d0).
  const double small_d0 = dopt_300 * 0.8;
  EXPECT_NEAR(dopt_for(small_d0), small_d0, 1.0);
}

// ---- Figure 9: Mdata and speed sweeps --------------------------------------

TEST(Fig9Shape, LargerDataMovesCloserAndLowersUtility) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  double prev_d = 1e9;
  double prev_u = 1e9;
  for (double mdata_mb : {5.0, 7.0, 10.0, 15.0, 25.0, 45.0}) {
    core::DeliveryParams p = scen.delivery_params();
    p.mdata_bytes = mdata_mb * 1e6;
    const core::CommDelayModel delay(model, p);
    const core::UtilityFunction u(delay, failure);
    const auto r = core::optimize(u);
    EXPECT_LE(r.d_opt_m, prev_d + 1.0) << mdata_mb;
    EXPECT_LT(r.utility, prev_u) << mdata_mb;
    prev_d = r.d_opt_m;
    prev_u = r.utility;
  }
}

TEST(Fig9Shape, HigherSpeedMovesCloser) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  double prev_d = 1e9;
  for (double v : {3.0, 5.0, 10.0, 15.0, 20.0}) {
    core::DeliveryParams p = scen.delivery_params();
    p.mdata_bytes = 10e6;
    p.speed_mps = v;
    const core::CommDelayModel delay(model, p);
    const core::UtilityFunction u(delay, failure);
    const auto r = core::optimize(u);
    EXPECT_LE(r.d_opt_m, prev_d + 1.0) << v;
    prev_d = r.d_opt_m;
  }
}

// ---- Figure 1 over the full stack ------------------------------------------

TEST(Fig1FullStack, ShipTo60BeatsTransmitAt80For20MB) {
  // Reproduce the headline crossover with the full PHY+MAC simulator
  // instead of the median model: ship 20 m (4.44 s at 4.5 m/s), then
  // transfer 20 MB at 60 m, vs transferring immediately at 80 m.
  // Averaged over several channel realizations (slow shadowing makes a
  // single transfer a coin-flip near the crossover).
  mac::LinkConfig cfg;
  cfg.channel = phy::ChannelConfig::quadrocopter();

  double sum60 = 0.0, sum80 = 0.0;
  const int kSeeds = 6;
  for (int k = 0; k < kSeeds; ++k) {
    mac::MinstrelConfig mcfg;
    mac::MinstrelHt rc80(mcfg, 3 + k), rc60(mcfg, 3 + k);
    mac::LinkSimulator sim80(cfg, rc80, 808 + 31ULL * k);
    mac::LinkSimulator sim60(cfg, rc60, 808 + 31ULL * k);
    const auto r80 = sim80.run_transfer(20'000'000, 600.0, mac::static_geometry(80.0));
    const auto r60 = sim60.run_transfer(20'000'000, 600.0, mac::static_geometry(60.0));
    ASSERT_TRUE(r80.completed);
    ASSERT_TRUE(r60.completed);
    sum80 += r80.duration_s;
    sum60 += r60.duration_s;
  }
  const double tship = 20.0 / 4.5;
  EXPECT_LT(tship + sum60 / kSeeds, sum80 / kSeeds);
}

}  // namespace
}  // namespace skyferry
