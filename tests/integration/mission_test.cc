// End-to-end mission: a collector quadrocopter has photographed its
// sector; a planner decides the rendezvous distance; the ferry flies
// there under the autopilot; the batch is transferred over the simulated
// 802.11n link with geometry taken from the actual flight; telemetry and
// the transmit command ride the XBee control channel.
#include <cmath>

#include <gtest/gtest.h>

#include "core/planner.h"
#include "ctrl/control_channel.h"
#include "ctrl/sector.h"
#include "mac/link.h"
#include "net/arq.h"
#include "net/flow.h"
#include "uav/uav.h"

namespace skyferry {
namespace {

class MissionTest : public ::testing::Test {
 protected:
  static constexpr double kDt = 0.05;

  /// Tick both UAVs until `pred` or timeout; returns elapsed time.
  template <typename Pred>
  double run_until(uav::Uav& a, uav::Uav& b, double& t, double timeout, Pred pred) {
    const double start = t;
    while (t - start < timeout && !pred()) {
      a.tick(t, kDt);
      b.tick(t, kDt);
      t += kDt;
    }
    return t - start;
  }
};

TEST_F(MissionTest, QuadFerryDeliversSectorBatch) {
  const core::Scenario scen = core::Scenario::quadrocopter();

  // Collector hovers at its sector center with the collected batch.
  uav::UavConfig hcfg;
  hcfg.id = "collector";
  hcfg.platform = scen.platform;
  hcfg.start_pos = {0.0, 0.0, 10.0};
  uav::Uav collector(hcfg, 1);
  collector.goto_and_hold({0.0, 0.0, 10.0});

  // Ferry comes into range at d0 = 100 m.
  uav::UavConfig fcfg;
  fcfg.id = "ferry";
  fcfg.platform = scen.platform;
  fcfg.start_pos = {100.0, 0.0, 10.0};
  uav::Uav ferry(fcfg, 2);

  // The batch the collector gathered (paper quad scenario: ~56 MB).
  const auto plan =
      ctrl::plan_sector_imaging(scen.camera, scen.sector_width_m * scen.sector_height_m,
                                scen.survey_altitude_m);
  EXPECT_NEAR(plan.batch.total_mb(), 56.2, 1.5);

  // Planner decision over the control channel.
  const auto model = scen.paper_throughput();
  const core::DelayedGratificationPlanner planner(model, scen.failure_model());
  core::DeliveryParams params = scen.delivery_params();
  params.mdata_bytes = plan.batch.total_bytes();
  const core::Decision dec = planner.decide(params);
  ASSERT_EQ(dec.strategy.kind, core::StrategyKind::kShipThenTransmit);

  sim::Simulator simclock;
  ctrl::ControlChannel channel(simclock);
  ctrl::TransmitCommand cmd;
  cmd.uav_id = "ferry";
  cmd.peer_id = "collector";
  cmd.transmit_distance_m = dec.strategy.target_distance_m;
  bool cmd_received = false;
  ASSERT_TRUE(channel.send(cmd, 100.0, [&](const ctrl::ControlMessage& m, double) {
    cmd_received = std::holds_alternative<ctrl::TransmitCommand>(m);
  }));
  simclock.run();
  ASSERT_TRUE(cmd_received);

  // Ferry flies to the commanded distance (on the line to the collector).
  ferry.goto_and_hold({dec.strategy.target_distance_m, 0.0, 10.0});
  double t = 0.0;
  const double ship_time = run_until(collector, ferry, t, 120.0, [&] {
    return geo::distance(ferry.position(), collector.position()) <=
           dec.strategy.target_distance_m + 4.0;
  });
  EXPECT_LT(ship_time, 119.0);  // arrived before timeout

  // Transfer the batch over the full-stack link, geometry from the live
  // UAV state (they keep hovering during the transfer).
  mac::LinkConfig lcfg;
  lcfg.channel = phy::ChannelConfig::quadrocopter();
  mac::MinstrelConfig mcfg;
  mac::MinstrelHt rc(mcfg, 3);
  mac::LinkSimulator link(lcfg, rc, 42);
  auto geom = [&](double) {
    return mac::Geometry{geo::distance(ferry.position(), collector.position()),
                         ferry.speed() + collector.speed()};
  };
  const auto res = link.run_transfer(
      static_cast<std::uint64_t>(plan.batch.total_bytes()), 600.0, geom);
  ASSERT_TRUE(res.completed);

  const double total_time = ship_time + res.duration_s;

  // Against naive transmit-now at 100 m: the paper quad fit gives
  // s(100) ~ 3.3 Mb/s -> ~137 s for 56 MB. The delayed plan must win.
  const core::CommDelayModel delay(model, params);
  const double naive = delay.cdelay_s(100.0);
  EXPECT_LT(total_time, naive);

  // And the batch is fully accounted for.
  EXPECT_GE(res.payload_bits_delivered / 8.0, plan.batch.total_bytes() * 0.999);
}

TEST_F(MissionTest, FailureMidFlightDeliversNothingOnceDown) {
  // Fig. 2's lesson: push too close and a failure voids the whole batch.
  // Force a battery failure during the approach and observe the loss.
  const core::Scenario scen = core::Scenario::quadrocopter();
  uav::UavConfig fcfg;
  fcfg.id = "ferry";
  fcfg.platform = scen.platform;
  fcfg.start_pos = {100.0, 0.0, 10.0};
  uav::Uav ferry(fcfg, 9);
  ferry.battery().drain(scen.platform.battery_autonomy_s * 0.999,
                        scen.platform.cruise_speed_mps);  // nearly empty
  ferry.goto_and_hold({20.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 4000 && !ferry.battery().depleted(); ++i) {
    ferry.tick(t, kDt);
    t += kDt;
  }
  EXPECT_TRUE(ferry.battery().depleted());
  // The vehicle is down before reaching the rendezvous.
  EXPECT_GT(geo::distance(ferry.position(), {20.0, 0.0, 10.0}), 5.0);
}

TEST_F(MissionTest, ArqDeliversEveryImageOverLossyLink) {
  // End-to-end reliability: the MAC loses MPDUs (Block-ACK recovers most
  // but the sender's view can desynchronize), so the mission runs a
  // selective-repeat ARQ over the datagram stream. Every image datagram
  // must eventually land, exactly once, over a 60 m quad link.
  const net::DataBatch batch{20, 0.39e6};  // 20 images, 7.8 MB
  net::ArqConfig acfg;
  const auto packets_per_image = static_cast<std::uint32_t>(
      std::ceil(batch.image_bytes / static_cast<double>(acfg.datagram_bytes)));
  const std::uint32_t total = packets_per_image * batch.num_images;

  net::ArqSender tx(acfg, total);
  net::ArqReceiver rx(acfg, total);
  net::FlowSink sink;

  // Datagram loss process derived from the PHY: sample the channel and
  // apply the MPDU PER at MCS1, like one A-MPDU subframe per datagram.
  phy::LinkChannel channel(phy::ChannelConfig::quadrocopter(), 99);
  const phy::ErrorModel error({}, 0.85);
  sim::Rng rng(7);
  double t = 0.0;
  std::uint64_t steps = 0;
  while (!tx.complete() && steps++ < 2'000'000) {
    auto p = tx.next_packet(t);
    if (!p) {
      tx.on_ack(rx.make_ack());
      continue;
    }
    t += 1.4e-3;  // ~exchange time per datagram
    const double snr = channel.snr_db(t, 60.0, 0.0);
    const double per = error.packet_error_rate(phy::mcs(1), snr, 1536 * 8);
    if (!rng.bernoulli(per)) {
      sink.deliver(*p, t);
      if (auto ack = rx.on_packet(*p)) tx.on_ack(*ack);
    }
  }
  ASSERT_TRUE(tx.complete());
  ASSERT_TRUE(rx.complete());
  EXPECT_EQ(sink.complete_images(packets_per_image), batch.num_images);
  // Reliability costs retransmissions but not unbounded ones.
  EXPECT_GT(tx.retransmissions(), 0u);
  EXPECT_LT(tx.transmissions(), static_cast<std::uint64_t>(total) * 3u);
}

TEST_F(MissionTest, SectorAssignmentOnePerUav) {
  // The paper's mission layout: the area is divided into sectors, one
  // UAV exclusively responsible per sector.
  const auto sectors = ctrl::make_sector_grid(200.0, 100.0, 2, 1, 10.0);
  ASSERT_EQ(sectors.size(), 2u);
  uav::UavConfig c1, c2;
  c1.platform = c2.platform = uav::PlatformSpec::arducopter();
  c1.id = "u1";
  c2.id = "u2";
  c1.start_pos = sectors[0].center();
  c2.start_pos = sectors[1].center();
  uav::Uav u1(c1, 11), u2(c2, 12);
  EXPECT_TRUE(sectors[0].contains(u1.position()));
  EXPECT_TRUE(sectors[1].contains(u2.position()));
  EXPECT_FALSE(sectors[0].contains(u2.position()));
}

}  // namespace
}  // namespace skyferry
