// Property suites (parameterized sweeps) over the delayed-gratification
// math: optimizer correctness against brute force, monotonicity laws,
// and unimodality of U in the small-rho regime.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/scenario.h"

namespace skyferry::core {
namespace {

// (platform: 0=airplane 1=quad, mdata_mb, speed, rho)
using ParamTuple = std::tuple<int, double, double, double>;

class DelayedGratificationProperty : public ::testing::TestWithParam<ParamTuple> {
 protected:
  void SetUp() override {
    const auto [plat, mdata_mb, v, rho] = GetParam();
    scen_ = plat == 0 ? Scenario::airplane() : Scenario::quadrocopter();
    params_ = scen_.delivery_params();
    params_.mdata_bytes = mdata_mb * 1e6;
    params_.speed_mps = v;
    rho_ = rho;
  }

  Scenario scen_;
  DeliveryParams params_;
  double rho_{0.0};
};

TEST_P(DelayedGratificationProperty, OptimizerMatchesBruteForce) {
  const auto model = scen_.paper_throughput();
  const uav::FailureModel failure(rho_);
  const CommDelayModel delay(model, params_);
  const UtilityFunction u(delay, failure);
  const auto fast = optimize(u);
  const auto slow = optimize_brute_force(u, 40000);
  // Equal utility (the argmax may sit on a flat stretch).
  EXPECT_NEAR(fast.utility, slow.utility, std::abs(slow.utility) * 1e-4 + 1e-12);
  EXPECT_NEAR(fast.d_opt_m, slow.d_opt_m, 1.0);
}

TEST_P(DelayedGratificationProperty, UtilityNonNegativeAndBounded) {
  const auto model = scen_.paper_throughput();
  const uav::FailureModel failure(rho_);
  const CommDelayModel delay(model, params_);
  const UtilityFunction u(delay, failure);
  for (const auto& pt : u.curve(100)) {
    EXPECT_GE(pt.utility, 0.0);
    EXPECT_LE(pt.discount, 1.0);
    EXPECT_GE(pt.discount, 0.0);
    if (std::isfinite(pt.cdelay_s)) {
      EXPECT_GE(pt.cdelay_s, 0.0);
    }
  }
}

TEST_P(DelayedGratificationProperty, SmallRhoCurveIsNearlyUnimodal) {
  // The paper: "U(d) can be approximated with a concave function for
  // rho << 1" — an approximation: shallow secondary bumps exist near the
  // 20 m clamp. We assert no *material* secondary structure: every
  // valley's depth (prominence of a second peak) stays within 3% of the
  // global maximum.
  if (rho_ > 2e-3) GTEST_SKIP() << "only claimed for small rho";
  const auto model = scen_.paper_throughput();
  const uav::FailureModel failure(rho_);
  const CommDelayModel delay(model, params_);
  const UtilityFunction u(delay, failure);
  const auto pts = u.curve(400);
  double peak = 0.0;
  for (const auto& p : pts) peak = std::max(peak, p.utility);
  ASSERT_GT(peak, 0.0);
  // Scan: once we've fallen below a running max, count it as a material
  // valley only if the curve later recovers by more than 3% of the peak.
  double running_max = 0.0;
  double valley_floor = 1e300;
  int material_valleys = 0;
  for (const auto& p : pts) {
    if (p.utility > running_max) {
      running_max = p.utility;
      valley_floor = 1e300;
      continue;
    }
    valley_floor = std::min(valley_floor, p.utility);
    if (p.utility - valley_floor > 0.03 * peak) {
      ++material_valleys;
      running_max = p.utility;
      valley_floor = 1e300;
    }
  }
  EXPECT_EQ(material_valleys, 0);
}

TEST_P(DelayedGratificationProperty, DiscountNeverIncreasesUtilityAnywhere) {
  // With failure risk, utility at every d is <= the risk-free utility.
  const auto model = scen_.paper_throughput();
  const uav::FailureModel failure(rho_);
  const uav::FailureModel no_failure(0.0);
  const CommDelayModel delay(model, params_);
  const UtilityFunction u(delay, failure);
  const UtilityFunction u0(delay, no_failure);
  for (double d = params_.min_distance_m; d <= params_.d0_m; d += 10.0) {
    EXPECT_LE(u(d), u0(d) + 1e-15);
  }
}

TEST_P(DelayedGratificationProperty, OptimalCdelayNeverWorseThanTransmitNow_WhenSafe) {
  // With rho = 0, the optimum minimizes Cdelay, so it can only improve on
  // transmitting immediately.
  const auto model = scen_.paper_throughput();
  const uav::FailureModel no_failure(0.0);
  const CommDelayModel delay(model, params_);
  const UtilityFunction u(delay, no_failure);
  const auto r = optimize(u);
  const double now_delay = delay.cdelay_s(params_.d0_m);
  if (std::isfinite(now_delay)) {
    EXPECT_LE(r.cdelay_s, now_delay + 0.05);
  } else {
    EXPECT_TRUE(std::isfinite(r.cdelay_s));
  }
}

std::string sweep_name(const ::testing::TestParamInfo<ParamTuple>& info) {
  const auto [plat, m, v, rho] = info.param;
  std::string name = plat == 0 ? "air" : "quad";
  name += "_m" + std::to_string(static_cast<int>(m));
  name += "_v" + std::to_string(static_cast<int>(v));
  name += "_rho" + std::to_string(static_cast<int>(rho * 1e6));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DelayedGratificationProperty,
    ::testing::Combine(::testing::Values(0, 1),                         // platform
                       ::testing::Values(1.0, 5.0, 15.0, 28.0, 45.0),   // Mdata MB
                       ::testing::Values(1.0, 4.5, 10.0, 20.0),         // speed
                       ::testing::Values(0.0, 1.11e-4, 1e-3, 1e-2)),    // rho
    sweep_name);

// Monotonicity sweeps need ordered comparisons across parameters, so they
// live outside the combinatorial fixture.

TEST(MonotonicityProperties, DoptMonotoneInRho) {
  for (int plat = 0; plat < 2; ++plat) {
    const Scenario scen = plat == 0 ? Scenario::airplane() : Scenario::quadrocopter();
    const auto model = scen.paper_throughput();
    double prev = 0.0;
    for (double rho = 1e-5; rho <= 3e-2; rho *= 2.0) {
      const uav::FailureModel failure(rho);
      const CommDelayModel delay(model, scen.delivery_params());
      const UtilityFunction u(delay, failure);
      const double dopt = optimize(u).d_opt_m;
      EXPECT_GE(dopt, prev - 1.0) << scen.name << " rho=" << rho;
      prev = dopt;
    }
  }
}

TEST(MonotonicityProperties, DoptMonotoneNonIncreasingInMdata) {
  const Scenario scen = Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  double prev = 1e9;
  for (double mb = 1.0; mb <= 64.0; mb *= 2.0) {
    DeliveryParams p = scen.delivery_params();
    p.mdata_bytes = mb * 1e6;
    const CommDelayModel delay(model, p);
    const UtilityFunction u(delay, failure);
    const double dopt = optimize(u).d_opt_m;
    EXPECT_LE(dopt, prev + 1.0) << mb;
    prev = dopt;
  }
}

TEST(MonotonicityProperties, UtilityAtOptimumMonotoneInRho) {
  // More risk can never increase the achievable utility.
  const Scenario scen = Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  double prev = 1e9;
  for (double rho = 0.0; rho <= 1e-2; rho += 1e-3) {
    const uav::FailureModel failure(rho);
    const CommDelayModel delay(model, scen.delivery_params());
    const UtilityFunction u(delay, failure);
    const double best = optimize(u).utility;
    EXPECT_LE(best, prev + 1e-12);
    prev = best;
  }
}

}  // namespace
}  // namespace skyferry::core
