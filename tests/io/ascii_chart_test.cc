#include "io/ascii_chart.h"

#include <gtest/gtest.h>

namespace skyferry::io {
namespace {

TEST(AsciiChart, EmptyChart) {
  AsciiChart c("empty");
  const std::string s = c.str();
  EXPECT_NE(s.find("(no data)"), std::string::npos);
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  AsciiChart c("U(d) curves", 60, 15);
  c.x_label("d (m)").y_label("U");
  Series s1{"rho=0.001", {20.0, 100.0, 300.0}, {0.01, 0.02, 0.005}};
  Series s2{"rho=0.01", {20.0, 100.0, 300.0}, {0.02, 0.015, 0.001}};
  c.add(s1).add(s2);
  const std::string out = c.str();
  EXPECT_NE(out.find("U(d) curves"), std::string::npos);
  EXPECT_NE(out.find("rho=0.001"), std::string::npos);
  EXPECT_NE(out.find("rho=0.01"), std::string::npos);
  EXPECT_NE(out.find("d (m)"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, SinglePointSeries) {
  AsciiChart c("point");
  c.add({"p", {1.0}, {1.0}});
  EXPECT_FALSE(c.str().empty());
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart c("flat");
  c.add({"flat", {0.0, 1.0, 2.0}, {5.0, 5.0, 5.0}});
  EXPECT_FALSE(c.str().empty());
}

TEST(AsciiChart, AxisTicksPresent) {
  AsciiChart c("ticks", 40, 10);
  c.add({"s", {0.0, 100.0}, {0.0, 50.0}});
  const std::string out = c.str();
  EXPECT_NE(out.find("100"), std::string::npos);  // x max tick
  EXPECT_NE(out.find("50"), std::string::npos);   // y max tick
}

}  // namespace
}  // namespace skyferry::io
