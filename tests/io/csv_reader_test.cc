#include "io/csv_reader.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "io/csv.h"

namespace skyferry::io {
namespace {

TEST(CsvReader, ParsesHeaderAndRows) {
  const auto doc = parse_csv("d_m,mbps\n20,25.2\n40,19.4\n");
  ASSERT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.header[0], "d_m");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "19.4");
}

TEST(CsvReader, NoHeaderMode) {
  const auto doc = parse_csv("1,2\n3,4\n", false);
  EXPECT_TRUE(doc.header.empty());
  ASSERT_EQ(doc.rows.size(), 2u);
}

TEST(CsvReader, QuotedFields) {
  const auto doc = parse_csv("label,x\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[1][0], "say \"hi\"");
}

TEST(CsvReader, ColumnLookup) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n");
  EXPECT_EQ(doc.column("b").value(), 1u);
  EXPECT_FALSE(doc.column("zz").has_value());
}

TEST(CsvReader, NumericColumnWithBadCells) {
  const auto doc = parse_csv("x\n1.5\nnot-a-number\n2.5\n");
  const auto xs = doc.numeric_column(0);
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 1.5);
  EXPECT_TRUE(std::isnan(xs[1]));
  EXPECT_DOUBLE_EQ(xs[2], 2.5);
}

TEST(CsvReader, HandlesCrlfAndBlankLines) {
  const auto doc = parse_csv("a,b\r\n1,2\r\n\r\n3,4\r\n");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][0], "3");
}

TEST(CsvReader, MissingFileIsNullopt) {
  EXPECT_FALSE(read_csv_file("/nonexistent/skyferry.csv").has_value());
}

TEST(CsvReader, RoundTripsCsvWriter) {
  const std::string path = ::testing::TempDir() + "/skyferry_roundtrip.csv";
  {
    CsvWriter w(path);
    w.header({"d_m", "mbps", "label,with,commas"});
    w.row({20.0, 25.25});
    w.row("fixed-mcs3", std::vector<double>{42.0});
  }
  const auto doc = read_csv_file(path);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->header[2], "label,with,commas");
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][1], "25.25");
  EXPECT_EQ(doc->rows[1][0], "fixed-mcs3");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skyferry::io
