#include "io/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::io {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/skyferry_csv_test.csv";
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter w(path_);
    ASSERT_TRUE(w.ok());
    w.header({"d_m", "throughput_mbps"});
    w.row({20.0, 25.16});
    w.row({40.0, 19.4});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  const std::string content = read_file(path_);
  EXPECT_EQ(content, "d_m,throughput_mbps\n20,25.16\n40,19.4\n");
}

TEST_F(CsvTest, QuotesSpecialFields) {
  {
    CsvWriter w(path_);
    w.header({"label,with,commas", "plain"});
  }
  const std::string content = read_file(path_);
  EXPECT_EQ(content, "\"label,with,commas\",plain\n");
}

TEST_F(CsvTest, EscapesQuotes) {
  {
    CsvWriter w(path_);
    w.header({"say \"hi\"", "x"});
  }
  EXPECT_EQ(read_file(path_), "\"say \"\"hi\"\"\",x\n");
}

TEST_F(CsvTest, LabeledRow) {
  {
    CsvWriter w(path_);
    const std::vector<double> vals{1.0, 2.5};
    w.row("mcs3", vals);
  }
  EXPECT_EQ(read_file(path_), "mcs3,1,2.5\n");
}

TEST_F(CsvTest, SpanRow) {
  {
    CsvWriter w(path_);
    const std::vector<double> vals{1.0, 2.0, 3.0};
    w.row(vals);
  }
  EXPECT_EQ(read_file(path_), "1,2,3\n");
}

TEST(FormatNumber, Roundish) {
  EXPECT_EQ(format_number(1.0), "1");
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(1e6), "1e+06");
  EXPECT_EQ(format_number(123456.0), "123456");
}

}  // namespace
}  // namespace skyferry::io
