#include "io/gnuplot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace skyferry::io {
namespace {

TEST(Gnuplot, BasicScriptStructure) {
  GnuplotScript gp("U(d)", "d (m)", "utility");
  gp.add({"fig8.csv", 2, 3, "rho=1e-3", "lines", 0, ""});
  const std::string s = gp.str();
  EXPECT_NE(s.find("set datafile separator ','"), std::string::npos);
  EXPECT_NE(s.find("set title 'U(d)'"), std::string::npos);
  EXPECT_NE(s.find("set xlabel 'd (m)'"), std::string::npos);
  EXPECT_NE(s.find("'fig8.csv' using 2:3 with lines title 'rho=1e-3'"), std::string::npos);
}

TEST(Gnuplot, MultipleSeriesJoinedWithCommas) {
  GnuplotScript gp("t", "x", "y");
  gp.add({"a.csv", 1, 2, "s1", "linespoints", 0, ""});
  gp.add({"a.csv", 1, 3, "s2", "lines", 0, ""});
  const std::string s = gp.str();
  EXPECT_NE(s.find("title 's1', \\"), std::string::npos);
  EXPECT_NE(s.find("using 1:3 with lines title 's2'"), std::string::npos);
}

TEST(Gnuplot, LongFormatFilter) {
  GnuplotScript gp("t", "x", "y");
  GnuplotSeries s;
  s.csv_path = "fig8.csv";
  s.x_column = 2;
  s.y_column = 3;
  s.title = "quad";
  s.filter_column = 1;
  s.filter_value = "quadrocopter/rho=0.001";
  gp.add(s);
  const std::string out = gp.str();
  EXPECT_NE(out.find("strcol(1) eq 'quadrocopter/rho=0.001'"), std::string::npos);
}

TEST(Gnuplot, TerminalAndOutput) {
  GnuplotScript gp("t", "x", "y");
  gp.terminal("svg", "fig.svg");
  gp.add({"a.csv", 1, 2, "s", "lines", 0, ""});
  const std::string s = gp.str();
  EXPECT_NE(s.find("set terminal svg"), std::string::npos);
  EXPECT_NE(s.find("set output 'fig.svg'"), std::string::npos);
}

TEST(Gnuplot, LogscaleOption) {
  GnuplotScript gp("t", "d", "y");
  gp.logscale_x();
  gp.add({"a.csv", 1, 2, "s", "lines", 0, ""});
  EXPECT_NE(gp.str().find("set logscale x 2"), std::string::npos);
}

TEST(Gnuplot, WritesFile) {
  const std::string path = ::testing::TempDir() + "/skyferry_test.gp";
  GnuplotScript gp("t", "x", "y");
  gp.add({"a.csv", 1, 2, "s", "lines", 0, ""});
  ASSERT_TRUE(gp.write(path));
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), gp.str());
  std::remove(path.c_str());
}

TEST(Gnuplot, WriteToBadPathFails) {
  GnuplotScript gp("t", "x", "y");
  EXPECT_FALSE(gp.write("/nonexistent/dir/x.gp"));
}

}  // namespace
}  // namespace skyferry::io
