#include "io/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace skyferry::io {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Json("a\"b\\c\n\t").dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwritesInPlace) {
  Json j = Json::object();
  j.set("b", 1);
  j.set("a", 2);
  j.set("b", 3);  // overwrite keeps position
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
  ASSERT_NE(j.find("a"), nullptr);
  EXPECT_EQ(j.find("a")->as_number(), 2.0);
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, ArrayPushBack) {
  Json j = Json::array();
  j.push_back(1);
  j.push_back("x");
  j.push_back(Json::object());
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.dump(), "[1,\"x\",{}]");
}

TEST(Json, SetOnNullBecomesObject) {
  Json j;
  j.set("k", 1);
  EXPECT_TRUE(j.is_object());
  Json a;
  a.push_back(1);
  EXPECT_TRUE(a.is_array());
}

TEST(Json, PrettyPrint) {
  Json j = Json::object();
  j.set("a", 1);
  Json arr = Json::array();
  arr.push_back(2);
  j.set("b", std::move(arr));
  // Pretty output ends in a newline so saved files are POSIX-clean.
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
  EXPECT_EQ(Json::object().dump(2), "{}\n");
  EXPECT_EQ(Json::array().dump(2), "[]\n");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"schema":1,"name":"fig1","values":[1,2.5,-0.03],"flags":{"x":true,"y":null}})";
  std::string error;
  const auto j = Json::parse(text, &error);
  ASSERT_TRUE(j.has_value()) << error;
  EXPECT_EQ(j->dump(), text);
}

TEST(Json, ParseNumbers) {
  const auto j = Json::parse("[0, -0.5, 1e3, 1E-3, 123456789.25]");
  ASSERT_TRUE(j.has_value());
  EXPECT_DOUBLE_EQ(j->items()[1].as_number(), -0.5);
  EXPECT_DOUBLE_EQ(j->items()[2].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(j->items()[4].as_number(), 123456789.25);
}

TEST(Json, NumberRoundTripIsExact) {
  // The golden files depend on dump/parse being bit-exact for doubles.
  const double values[] = {0.1, 1.0 / 3.0, 6.283185307179586, 1e-300, 9.007199254740993e15};
  for (const double v : values) {
    const auto j = Json::parse(json_number(v));
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->as_number(), v) << json_number(v);
  }
}

TEST(Json, ParseUnicodeEscapes) {
  const auto j = Json::parse(R"("\u0041\u00e9\u20ac")");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "A\xC3\xA9\xE2\x82\xAC");  // A, é, €
  const auto surrogate = Json::parse(R"("\ud83d\ude00")");
  ASSERT_TRUE(surrogate.has_value());
  EXPECT_EQ(surrogate->as_string(), "\xF0\x9F\x98\x80");  // 😀
}

TEST(Json, ParseErrors) {
  std::string error;
  EXPECT_FALSE(Json::parse("", &error).has_value());
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(Json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(Json::parse("nul", &error).has_value());
  EXPECT_FALSE(Json::parse("0x10", &error).has_value());
  EXPECT_FALSE(Json::parse("inf", &error).has_value());
  EXPECT_FALSE(Json::parse("nan", &error).has_value());
  EXPECT_FALSE(Json::parse("1 2", &error).has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(Json::parse("\"bad\x01ctrl\"", &error).has_value());
  EXPECT_FALSE(Json::parse("\"\\q\"", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Json, ParseErrorReportsOffset) {
  std::string error;
  EXPECT_FALSE(Json::parse("[1, 2, oops]", &error).has_value());
  EXPECT_NE(error.find("7"), std::string::npos) << error;
}

TEST(Json, TypedReadsFallBack) {
  const Json j(1.5);
  EXPECT_EQ(j.as_bool(true), true);      // wrong type -> fallback
  EXPECT_EQ(Json().as_number(7.0), 7.0);
  EXPECT_EQ(Json().as_string(), "");
}

}  // namespace
}  // namespace skyferry::io
