#include "io/table.h"

#include <gtest/gtest.h>

namespace skyferry::io {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Platforms");
  t.columns({"Feature", "Airplane", "Quadrocopter"});
  t.add_row({"Hovering", "No", "Yes"});
  t.add_row({"Weight", "500 g", "1.7 kg"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Platforms"), std::string::npos);
  EXPECT_NE(s.find("Feature"), std::string::npos);
  EXPECT_NE(s.find("Hovering"), std::string::npos);
  EXPECT_NE(s.find("1.7 kg"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, AlignsColumns) {
  Table t;
  t.columns({"a", "long-header"});
  t.add_row({"wide-cell-content", "x"});
  const std::string s = t.str();
  // Every rendered line between rules must be the same width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (width == 0) {
      width = len;
    } else {
      EXPECT_EQ(len, width);
    }
    pos = nl + 1;
  }
}

TEST(Table, NumericRowHelper) {
  Table t;
  t.columns({"d", "u"});
  t.add_row("20", std::vector<double>{0.0123});
  EXPECT_NE(t.str().find("0.0123"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t;
  t.columns({"a", "b", "c"});
  t.add_row({"only-one"});
  // Must not crash and must render three columns.
  const std::string s = t.str();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(Table, EmptyTable) {
  Table t;
  const std::string s = t.str();
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace skyferry::io
