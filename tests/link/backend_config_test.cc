// Adversarial configuration suite: validate() must refuse every
// non-finite / negative / inconsistent field, mismatched shared
// PER-table caches, and unknown tags; the LinkSet on-disk format must
// fail strict load on tampered or truncated files (the
// policy::PolicyTable contract).
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "link/backend.h"
#include "link/multilink.h"
#include "mac/link.h"
#include "phy/per_table.h"

namespace skyferry {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

using link::LinkBackendConfig;

void expect_rejected(LinkBackendConfig cfg, const char* why) {
  EXPECT_THROW(cfg.validate(), link::ConfigError) << why;
  EXPECT_THROW((void)link::make_backend(cfg), link::ConfigError) << why;
}

TEST(BackendConfig, PresetsValidateAndBuild) {
  for (const auto& make : {&LinkBackendConfig::wifi_80211n, &LinkBackendConfig::cellular,
                           &LinkBackendConfig::mesh, &LinkBackendConfig::leo}) {
    const LinkBackendConfig cfg = make();
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_NE(link::make_backend(cfg), nullptr);
  }
}

TEST(BackendConfig, RejectsNonFiniteAndNegativeFields) {
  {
    LinkBackendConfig c = LinkBackendConfig::wifi_80211n();
    c.wifi_a = kNan;
    expect_rejected(c, "NaN wifi_a");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.cell_peak_bps = kInf;
    expect_rejected(c, "infinite cell_peak_bps");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.cell_floor_bps = -1.0;
    expect_rejected(c, "negative cell_floor_bps");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.cell_floor_bps = c.cell_peak_bps * 2.0;
    expect_rejected(c, "floor above peak");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::mesh();
    c.mesh_hop_rate_bps = -18e6;
    expect_rejected(c, "negative mesh_hop_rate_bps");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::mesh();
    c.mesh_max_hops = 0;
    expect_rejected(c, "zero mesh_max_hops");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::leo();
    c.leo_rate_bps = 0.0;
    expect_rejected(c, "zero leo_rate_bps");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::leo();
    c.session_setup_s = -1.0;
    expect_rejected(c, "negative session_setup_s");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::leo();
    c.rtt_s = kNan;
    expect_rejected(c, "NaN rtt_s");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::wifi_80211n();
    c.min_distance_m = 0.0;
    expect_rejected(c, "zero min_distance_m");
  }
}

TEST(BackendConfig, RejectsBadAvailabilityAndOutage) {
  for (const double a : {0.0, -0.2, 1.5, kNan}) {
    LinkBackendConfig c = LinkBackendConfig::leo();
    c.outage.availability = a;
    expect_rejected(c, "availability outside (0,1]");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::leo();
    c.outage.mean_outage_s = -45.0;
    expect_rejected(c, "negative mean_outage_s");
  }
}

TEST(BackendConfig, RejectsBadPhyCurve) {
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.mcs_index = 16;
    expect_rejected(c, "mcs_index out of range");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.frame_bits = 0;
    expect_rejected(c, "zero frame_bits");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.frames_per_burst = 0;
    expect_rejected(c, "zero frames_per_burst");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.per_table.snr_min_db = c.per_table.snr_max_db + 1.0;
    expect_rejected(c, "inverted per_table SNR range");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.per_table.step_db = 0.0;
    expect_rejected(c, "zero per_table step");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.snr_ref_distance_m = 0.0;
    expect_rejected(c, "zero snr_ref_distance_m");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.spatial_correlation = 1.5;
    expect_rejected(c, "spatial_correlation above 1");
  }
  {
    LinkBackendConfig c = LinkBackendConfig::cellular();
    c.error.stbc_gain_db = kNan;
    expect_rejected(c, "NaN error-model gain");
  }
}

TEST(BackendConfig, RejectsMismatchedSharedTables) {
  LinkBackendConfig c = LinkBackendConfig::cellular();
  // A cache built for a *different* error model than c.error.
  phy::ErrorModelConfig other = c.error;
  other.stbc_gain_db += 1.0;
  c.shared_tables = std::make_shared<phy::PerTableCache>(
      phy::ErrorModel(other, c.spatial_correlation), c.per_table);
  expect_rejected(c, "shared_tables fingerprint mismatch");

  // The matching cache passes.
  c.shared_tables = std::make_shared<phy::PerTableCache>(
      phy::ErrorModel(c.error, c.spatial_correlation), c.per_table);
  EXPECT_NO_THROW(c.validate());
}

TEST(BackendConfig, RejectsMismatchedWifiMacSharedTables) {
  LinkBackendConfig c = LinkBackendConfig::wifi_80211n();
  mac::LinkConfig other = c.mac;
  other.error.stbc_gain_db += 1.0;
  c.mac.shared_tables = mac::make_shared_per_tables(other);
  expect_rejected(c, "mac.shared_tables fingerprint mismatch");

  c.mac.shared_tables = mac::make_shared_per_tables(c.mac);
  EXPECT_NO_THROW(c.validate());
}

TEST(BackendConfig, JsonRoundTripIsExact) {
  for (const auto& make : {&LinkBackendConfig::wifi_80211n, &LinkBackendConfig::cellular,
                           &LinkBackendConfig::mesh, &LinkBackendConfig::leo}) {
    const LinkBackendConfig cfg = make();
    const LinkBackendConfig back = LinkBackendConfig::from_json(cfg.to_json());
    EXPECT_EQ(cfg.to_json().dump(), back.to_json().dump()) << cfg.name;
    EXPECT_EQ(back.kind, cfg.kind);
    EXPECT_EQ(back.outage.availability, cfg.outage.availability);
  }
}

TEST(BackendConfig, JsonRejectsUnknownTags) {
  {
    io::Json j = LinkBackendConfig::cellular().to_json();
    j.set("kind", "carrier-pigeon");
    EXPECT_THROW((void)LinkBackendConfig::from_json(j), link::ConfigError);
  }
  {
    io::Json j = LinkBackendConfig::cellular().to_json();
    j.set("fidelity", "clairvoyant");
    EXPECT_THROW((void)LinkBackendConfig::from_json(j), link::ConfigError);
  }
  {
    io::Json j = LinkBackendConfig::wifi_80211n().to_json();
    j.set("wifi_rate_control", "vibes");
    EXPECT_THROW((void)LinkBackendConfig::from_json(j), link::ConfigError);
  }
  {
    // A value validate() rejects must not survive decode either.
    io::Json j = LinkBackendConfig::leo().to_json();
    j.set("availability", io::Json(0.0));
    EXPECT_THROW((void)LinkBackendConfig::from_json(j), link::ConfigError);
  }
}

// ---- LinkSet on-disk format -------------------------------------------------

link::LinkSet two_link_set() {
  return link::LinkSet({LinkBackendConfig::wifi_80211n(), LinkBackendConfig::cellular()});
}

TEST(LinkSetIo, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/link_set_roundtrip.json";
  const link::LinkSet set = two_link_set();
  set.save_atomic(path);
  const link::LinkSet back = link::LinkSet::load(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.checksum(), set.checksum());
  EXPECT_EQ(back.to_json().dump(), set.to_json().dump());
  std::remove(path.c_str());
}

TEST(LinkSetIo, TamperedFileFailsLoad) {
  const std::string path = ::testing::TempDir() + "/link_set_tampered.json";
  two_link_set().save_atomic(path);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  // Flip the cellular link's name; the checksum no longer matches.
  const std::string::size_type at = text.find("\"cellular\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 10, "\"cellulose\"");
  std::ofstream(path) << text;
  EXPECT_THROW((void)link::LinkSet::load(path), link::ConfigError);
  std::remove(path.c_str());
}

TEST(LinkSetIo, TruncatedFileFailsLoad) {
  const std::string path = ::testing::TempDir() + "/link_set_truncated.json";
  two_link_set().save_atomic(path);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path) << text.substr(0, text.size() / 2);
  EXPECT_THROW((void)link::LinkSet::load(path), link::ConfigError);
  std::remove(path.c_str());
}

TEST(LinkSetIo, MissingFileAndBadVersionFailLoad) {
  EXPECT_THROW((void)link::LinkSet::load("/nonexistent/link_set.json"), link::ConfigError);
  io::Json j = two_link_set().to_json();
  j.set("skyferry_link_set", 999);
  EXPECT_THROW((void)link::LinkSet::from_json(j), link::ConfigError);
}

}  // namespace
}  // namespace skyferry
