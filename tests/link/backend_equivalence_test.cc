// Differential suite, part 1: the 802.11n backend is a *wrapper*, not a
// reimplementation. Routing a transfer through link::LinkBackend /
// LinkSession must produce the bit-identical mac::LinkRunResult — same
// delivered bytes, same exchange timings, same RNG stream consumption —
// as constructing mac::LinkSimulator directly with the same config and
// seed, across both fidelity modes and any thread count.
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "link/backend.h"
#include "mac/link.h"
#include "mac/rate_control.h"

namespace skyferry {
namespace {

constexpr std::uint64_t kPayloadBytes = 200'000;
constexpr double kMaxDuration = 60.0;

/// Field-by-field bitwise comparison of two run results (EXPECT_EQ on
/// doubles is exact equality — that is the point of the suite).
void expect_identical(const mac::LinkRunResult& a, const mac::LinkRunResult& b) {
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.payload_bits_delivered, b.payload_bits_delivered);
  EXPECT_EQ(a.mpdus_attempted, b.mpdus_attempted);
  EXPECT_EQ(a.mpdus_delivered, b.mpdus_delivered);
  EXPECT_EQ(a.exchanges, b.exchanges);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].t_s, b.samples[i].t_s);
    EXPECT_EQ(a.samples[i].mbps, b.samples[i].mbps);
  }
  ASSERT_EQ(a.transfer_curve_mb.size(), b.transfer_curve_mb.size());
  for (std::size_t i = 0; i < a.transfer_curve_mb.size(); ++i) {
    EXPECT_EQ(a.transfer_curve_mb[i].t_s, b.transfer_curve_mb[i].t_s);
    EXPECT_EQ(a.transfer_curve_mb[i].mbps, b.transfer_curve_mb[i].mbps);
  }
}

link::LinkBackendConfig wifi_config(mac::LinkFidelity fidelity,
                                    link::WifiRateControl rc = link::WifiRateControl::kFixedMcs) {
  link::LinkBackendConfig cfg = link::LinkBackendConfig::wifi_80211n();
  cfg.mac.fidelity = fidelity;
  cfg.wifi_rate_control = rc;
  return cfg;
}

/// The legacy direct path: construct the controller and the simulator by
/// hand, exactly as every pre-multilink caller does.
mac::LinkRunResult legacy_transfer(const link::LinkBackendConfig& cfg, std::uint64_t seed,
                                   double distance_m) {
  std::unique_ptr<mac::RateController> rc;
  switch (cfg.wifi_rate_control) {
    case link::WifiRateControl::kFixedMcs:
      rc = std::make_unique<mac::FixedMcs>(cfg.mcs_index);
      break;
    case link::WifiRateControl::kArf:
      rc = std::make_unique<mac::ArfRate>(mac::ArfConfig{}, cfg.mac.channel.width,
                                          cfg.mac.channel.gi);
      break;
    case link::WifiRateControl::kMinstrel:
      ADD_FAILURE() << "not used in this suite";
      break;
  }
  mac::LinkSimulator sim(cfg.mac, *rc, seed);
  return sim.run_transfer(kPayloadBytes, kMaxDuration, mac::static_geometry(distance_m));
}

mac::LinkRunResult backend_transfer(const link::LinkBackendConfig& cfg, std::uint64_t seed,
                                    double distance_m) {
  const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
  return bk->make_session(seed)->run_transfer(kPayloadBytes, kMaxDuration,
                                              mac::static_geometry(distance_m));
}

TEST(BackendEquivalence, WifiTransferMatchesLegacyPerMpdu) {
  const link::LinkBackendConfig cfg = wifi_config(mac::LinkFidelity::kPerMpdu);
  for (const std::uint64_t seed : {1ULL, 42ULL, 9001ULL}) {
    for (const double d : {60.0, 120.0}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " d=" + std::to_string(d));
      expect_identical(backend_transfer(cfg, seed, d), legacy_transfer(cfg, seed, d));
    }
  }
}

TEST(BackendEquivalence, WifiTransferMatchesLegacyAggregate) {
  const link::LinkBackendConfig cfg = wifi_config(mac::LinkFidelity::kAggregate);
  for (const std::uint64_t seed : {1ULL, 42ULL, 9001ULL}) {
    for (const double d : {60.0, 120.0}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " d=" + std::to_string(d));
      expect_identical(backend_transfer(cfg, seed, d), legacy_transfer(cfg, seed, d));
    }
  }
}

TEST(BackendEquivalence, WifiArfControllerMatchesLegacy) {
  const link::LinkBackendConfig cfg =
      wifi_config(mac::LinkFidelity::kAggregate, link::WifiRateControl::kArf);
  expect_identical(backend_transfer(cfg, 7, 100.0), legacy_transfer(cfg, 7, 100.0));
}

TEST(BackendEquivalence, WifiSaturatedMatchesLegacy) {
  const link::LinkBackendConfig cfg = wifi_config(mac::LinkFidelity::kAggregate);
  mac::FixedMcs rc(cfg.mcs_index);
  mac::LinkSimulator sim(cfg.mac, rc, 5);
  const mac::LinkRunResult legacy = sim.run_saturated(3.0, mac::static_geometry(90.0));
  const mac::LinkRunResult wrapped =
      link::make_backend(cfg)->make_session(5)->run_saturated(3.0, mac::static_geometry(90.0));
  expect_identical(wrapped, legacy);
}

/// RNG stream consumption: a session is one evolving stream, so the
/// *second* transfer on the same session only matches the legacy path if
/// the first consumed exactly the same number of draws.
TEST(BackendEquivalence, WifiRngStreamConsumptionMatchesAcrossRuns) {
  for (const mac::LinkFidelity f : {mac::LinkFidelity::kPerMpdu, mac::LinkFidelity::kAggregate}) {
    const link::LinkBackendConfig cfg = wifi_config(f);
    mac::FixedMcs rc(cfg.mcs_index);
    mac::LinkSimulator sim(cfg.mac, rc, 17);
    const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
    const std::unique_ptr<link::LinkSession> sess = bk->make_session(17);
    for (int run = 0; run < 3; ++run) {
      SCOPED_TRACE("run " + std::to_string(run));
      const auto legacy =
          sim.run_transfer(kPayloadBytes / 4, kMaxDuration, mac::static_geometry(110.0));
      const auto wrapped =
          sess->run_transfer(kPayloadBytes / 4, kMaxDuration, mac::static_geometry(110.0));
      expect_identical(wrapped, legacy);
    }
  }
}

/// Thread invariance: the same (seed, distance) jobs produce bitwise the
/// same results whether run serially or spread over 2 or 8 threads, with
/// every worker hammering one shared PER-table cache.
TEST(BackendEquivalence, ThreadCountInvariant) {
  link::LinkBackendConfig cfg = wifi_config(mac::LinkFidelity::kAggregate);
  cfg.mac.shared_tables = mac::make_shared_per_tables(cfg.mac);

  struct Job {
    std::uint64_t seed;
    double distance_m;
  };
  std::vector<Job> jobs;
  for (std::uint64_t s = 1; s <= 8; ++s) jobs.push_back({s, 60.0 + 10.0 * static_cast<double>(s)});

  std::vector<mac::LinkRunResult> reference(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    reference[i] = backend_transfer(cfg, jobs[i].seed, jobs[i].distance_m);
  }

  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::vector<mac::LinkRunResult> got(jobs.size());
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = static_cast<std::size_t>(t); i < jobs.size();
             i += static_cast<std::size_t>(threads)) {
          got[i] = backend_transfer(cfg, jobs[i].seed, jobs[i].distance_m);
        }
      });
    }
    for (std::thread& th : pool) th.join();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      expect_identical(got[i], reference[i]);
    }
  }
}

/// Generic (non-wifi) sessions are deterministic per seed too: same seed
/// bit-identical, different seeds draw independent streams.
TEST(BackendEquivalence, GenericSessionsDeterministicPerSeed) {
  for (const auto& make : {&link::LinkBackendConfig::cellular, &link::LinkBackendConfig::mesh,
                           &link::LinkBackendConfig::leo}) {
    // Park the mean SNR in the PER transition with a heavy per-burst
    // fade so frame fates actually consume the RNG — at the presets'
    // nominal SNR the PER rounds to 0 and every seed coincides.
    link::LinkBackendConfig cfg = make();
    cfg.mcs_index = 3;
    cfg.snr_ref_db = 15.0;
    cfg.snr_fade_sigma_db = 6.0;
    const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
    SCOPED_TRACE(bk->name());
    const auto geometry = mac::static_geometry(cfg.snr_ref_distance_m);
    const auto a = bk->make_session(11)->run_transfer(50'000, 600.0, geometry);
    const auto b = bk->make_session(11)->run_transfer(50'000, 600.0, geometry);
    expect_identical(a, b);
    const auto c = bk->make_session(12)->run_transfer(50'000, 600.0, geometry);
    EXPECT_TRUE(a.duration_s != c.duration_s || a.mpdus_delivered != c.mpdus_delivered)
        << "distinct seeds should draw distinct streams";
  }
}

}  // namespace
}  // namespace skyferry
