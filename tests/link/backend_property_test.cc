// Property suite over every backend kind: rate curves non-increasing in
// distance, PER non-increasing in SNR and non-decreasing in frame size,
// latency finite and non-negative, and the outage process hitting its
// configured stationary availability (chi-square over 10^3 seeds).
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "link/backend.h"
#include "link/outage.h"
#include "support/proptest.h"

namespace skyferry {
namespace {

std::vector<link::LinkBackendConfig> preset_configs() {
  return {link::LinkBackendConfig::wifi_80211n(), link::LinkBackendConfig::cellular(),
          link::LinkBackendConfig::mesh(), link::LinkBackendConfig::leo()};
}

TEST(BackendProperty, RateNonIncreasingInDistance) {
  for (const link::LinkBackendConfig& cfg : preset_configs()) {
    const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
    SCOPED_TRACE(bk->name());
    const double span = std::min(bk->max_range_m() * 1.2, 5e4);
    FOR_ALL(300, 0xD157ULL, g) {
      const double d1 = g.uniform(1.0, span);
      const double d2 = d1 + g.uniform(0.0, span - d1 + 1.0);
      EXPECT_GE(bk->rate_bps(d1), bk->rate_bps(d2))
          << "rate must not increase with distance: d1=" << d1 << " d2=" << d2;
    }
    // Past max range the link is dead; inside it the rate is finite.
    EXPECT_EQ(bk->rate_bps(bk->max_range_m() * 1.5), 0.0);
    EXPECT_TRUE(std::isfinite(bk->rate_bps(cfg.min_distance_m)));
  }
}

TEST(BackendProperty, FramePerMonotoneInSnr) {
  for (const link::LinkBackendConfig& cfg : preset_configs()) {
    const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
    SCOPED_TRACE(bk->name());
    FOR_ALL(200, 0x9E12ULL, g) {
      const double lo = g.uniform(-5.0, 45.0);
      const double hi = lo + g.uniform(0.0, 50.0 - lo);
      const double per_lo = bk->frame_per(lo);
      const double per_hi = bk->frame_per(hi);
      EXPECT_GE(per_lo, 0.0);
      EXPECT_LE(per_lo, 1.0);
      EXPECT_GE(per_lo + 1e-12, per_hi)
          << "PER must not increase with SNR: snr_lo=" << lo << " snr_hi=" << hi;
    }
  }
}

TEST(BackendProperty, FramePerMonotoneInFrameBits) {
  link::LinkBackendConfig small = link::LinkBackendConfig::cellular();
  small.frame_bits = 4'000;
  link::LinkBackendConfig big = small;
  big.frame_bits = 32'000;
  const std::unique_ptr<link::LinkBackend> bk_small = link::make_backend(small);
  const std::unique_ptr<link::LinkBackend> bk_big = link::make_backend(big);
  for (double snr = 0.0; snr <= 45.0; snr += 2.5) {
    EXPECT_LE(bk_small->frame_per(snr), bk_big->frame_per(snr) + 1e-9)
        << "longer frames must not be more reliable, snr=" << snr;
  }
}

TEST(BackendProperty, LatencyFiniteAndNonNegative) {
  for (const link::LinkBackendConfig& cfg : preset_configs()) {
    const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
    EXPECT_TRUE(std::isfinite(bk->latency_s())) << bk->name();
    EXPECT_GE(bk->latency_s(), 0.0) << bk->name();
  }
  FOR_ALL(100, 0x1A7EULL, g) {
    link::LinkBackendConfig cfg = link::LinkBackendConfig::leo();
    cfg.session_setup_s = g.uniform(0.0, 30.0);
    cfg.rtt_s = g.uniform(0.0, 3.0);
    const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
    EXPECT_TRUE(std::isfinite(bk->latency_s()));
    EXPECT_GE(bk->latency_s(), 0.0);
    EXPECT_EQ(bk->latency_s(), cfg.session_setup_s + 0.5 * cfg.rtt_s);
  }
}

/// The alternating-renewal process starts stationary, so P(up at t) ==
/// availability at *every* t. Pearson chi-square on up/down counts over
/// 10^3 independent seeds, 1 dof; 10.83 is the p = 0.001 critical value.
TEST(BackendProperty, OutageMatchesAvailabilityChiSquare) {
  const link::OutageConfig cfg{0.85, 45.0};
  constexpr int kSeeds = 1000;
  for (const double t : {0.0, 123.0, 2'000.0}) {
    int up = 0;
    for (int s = 0; s < kSeeds; ++s) {
      link::OutageProcess p(cfg, static_cast<std::uint64_t>(s));
      if (p.is_up(t)) ++up;
    }
    const double e_up = cfg.availability * kSeeds;
    const double e_down = (1.0 - cfg.availability) * kSeeds;
    const double o_up = up;
    const double o_down = kSeeds - up;
    const double chi2 = (o_up - e_up) * (o_up - e_up) / e_up +
                        (o_down - e_down) * (o_down - e_down) / e_down;
    EXPECT_LT(chi2, 10.83) << "t=" << t << " observed up fraction " << o_up / kSeeds;
  }
}

TEST(BackendProperty, OutageLongRunUpFractionMatchesAvailability) {
  const link::OutageConfig cfg{0.85, 45.0};
  link::OutageProcess p(cfg, 99);
  const double horizon = 1e6;
  const double frac = p.up_seconds(0.0, horizon) / horizon;
  EXPECT_NEAR(frac, cfg.availability, 0.02);
}

TEST(BackendProperty, AlwaysUpOutageNeverDrops) {
  link::OutageProcess p(link::OutageConfig{1.0, 30.0}, 5);
  for (double t = 0.0; t < 1e4; t += 997.0) EXPECT_TRUE(p.is_up(t));
  EXPECT_EQ(p.up_seconds(0.0, 1e4), 1e4);
}

/// An unbounded run against a geometry that never comes back in range
/// must terminate (incomplete) instead of idling forever: the session
/// caps continuous out-of-range idling when max_duration_s is infinite.
TEST(BackendProperty, UnboundedTransferOutOfRangeTerminates) {
  const link::LinkBackendConfig cfg = link::LinkBackendConfig::mesh();
  const std::unique_ptr<link::LinkBackend> bk = link::make_backend(cfg);
  const double far = bk->max_range_m() * 4.0;  // mesh routes never form here
  const mac::LinkRunResult r = bk->make_session(17)->run_transfer(
      1'000'000, std::numeric_limits<double>::infinity(), mac::static_geometry(far));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.payload_bits_delivered, 0u);
  EXPECT_TRUE(std::isfinite(r.duration_s));
}

}  // namespace
}  // namespace skyferry
