// The two exact contracts of the joint (link, d) optimizer:
//
//  - *Bit-identity*: one 802.11n backend reduces optimize_multilink (and
//    DecisionService::decide_multilink) to the legacy core::optimize()
//    path, bit for bit — every EXPECT_EQ on a double below is exact.
//  - *Dominance*: on a randomized (d0, Mdata, rho, v) grid the joint
//    utility is >= the best single-link utility (trickling never hurts),
//    with exact equality when only one backend is enabled.
#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/delay.h"
#include "core/optimizer.h"
#include "core/throughput_model.h"
#include "core/utility.h"
#include "fleet/engine.h"
#include "link/multilink.h"
#include "policy/service.h"
#include "support/proptest.h"
#include "uav/failure.h"

namespace skyferry {
namespace {

std::shared_ptr<const link::LinkSet> full_link_set() {
  return std::make_shared<const link::LinkSet>(std::vector<link::LinkBackendConfig>{
      link::LinkBackendConfig::wifi_80211n(), link::LinkBackendConfig::cellular(),
      link::LinkBackendConfig::mesh(), link::LinkBackendConfig::leo()});
}

TEST(MultiLinkContract, SingleWifiBackendBitIdenticalToCoreOptimize) {
  const link::LinkBackendConfig cfg = link::LinkBackendConfig::wifi_80211n();
  const link::LinkSet set({cfg});
  const core::PaperLogThroughput model(cfg.wifi_a, cfg.wifi_b, cfg.name, cfg.wifi_scale,
                                       cfg.min_distance_m);
  FOR_ALL(60, 0xB171DULL, g) {
    const link::MultiLinkParams p{g.uniform(50.0, 4000.0), g.uniform(1.0, 30.0),
                                  g.uniform(1e5, 2e9), 20.0};
    const uav::FailureModel failure(g.chance(0.2) ? 0.0 : g.uniform(1e-5, 5e-3));

    const core::DeliveryParams params{p.d0_m, p.speed_mps, p.mdata_bytes, p.min_distance_m};
    const core::CommDelayModel delay(model, params);
    const core::UtilityFunction u(delay, failure);
    const core::OptimizeResult want = core::optimize(u);

    const link::MultiLinkResult got = link::optimize_multilink(set.views(), p, failure);
    EXPECT_EQ(got.burst_link, 0);
    EXPECT_EQ(got.trickle_bytes, 0.0);
    EXPECT_EQ(got.burst_bytes, p.mdata_bytes);
    EXPECT_EQ(got.decision.d_opt_m, want.d_opt_m);
    EXPECT_EQ(got.decision.utility, want.utility);
    EXPECT_EQ(got.decision.cdelay_s, want.cdelay_s);
    EXPECT_EQ(got.decision.discount, want.discount);
    EXPECT_EQ(got.decision.boundary, want.boundary);
    EXPECT_EQ(got.decision.evaluations, want.evaluations);
  }
}

TEST(MultiLinkContract, JointUtilityDominatesBestSingleLink) {
  const std::shared_ptr<const link::LinkSet> set = full_link_set();
  const std::vector<const link::LinkBackend*> views = set->views();
  FOR_ALL(120, 0xD0F1ULL, g) {
    const link::MultiLinkParams p{g.uniform(50.0, 5000.0), g.uniform(1.0, 30.0),
                                  g.uniform(1e5, 5e8), 20.0};
    const uav::FailureModel failure(g.chance(0.25) ? 0.0 : g.uniform(1e-5, 1e-2));
    const link::MultiLinkResult r = link::optimize_multilink(views, p, failure);

    ASSERT_EQ(r.single.size(), views.size());
    double best_single = 0.0;
    for (const core::OptimizeResult& s : r.single) best_single = std::max(best_single, s.utility);
    EXPECT_GE(r.decision.utility, best_single)
        << "d0=" << p.d0_m << " v=" << p.speed_mps << " M=" << p.mdata_bytes
        << " rho=" << failure.rho();

    // The split is a partition of the batch.
    EXPECT_GE(r.trickle_bytes, 0.0);
    EXPECT_LE(r.trickle_bytes, p.mdata_bytes);
    EXPECT_EQ(r.burst_bytes, p.mdata_bytes - r.trickle_bytes);
    ASSERT_GE(r.burst_link, 0);
    ASSERT_LT(r.burst_link, static_cast<int>(views.size()));
    EXPECT_EQ(r.trickle_by_link[static_cast<std::size_t>(r.burst_link)], 0.0);
    // The per-link split always sums to the reported total, including
    // when the Mdata cap binds (the vector is rescaled proportionally).
    double split_sum = 0.0;
    for (const double v : r.trickle_by_link) split_sum += v;
    EXPECT_NEAR(split_sum, r.trickle_bytes, 1e-9 * std::max(1.0, r.trickle_bytes));
  }
}

TEST(MultiLinkContract, ForcedBurstElectionIsHonored) {
  const std::shared_ptr<const link::LinkSet> set = full_link_set();
  const std::vector<const link::LinkBackend*> views = set->views();
  const link::MultiLinkParams p{1500.0, 10.0, 5e7, 20.0};
  const uav::FailureModel failure(1e-3);
  for (int j = 0; j < static_cast<int>(views.size()); ++j) {
    const link::MultiLinkResult r = link::optimize_multilink(views, p, failure, {}, j);
    EXPECT_EQ(r.burst_link, j);
  }
  // A free election picks the argmax over forced elections.
  const link::MultiLinkResult free = link::optimize_multilink(views, p, failure);
  for (int j = 0; j < static_cast<int>(views.size()); ++j) {
    const link::MultiLinkResult forced = link::optimize_multilink(views, p, failure, {}, j);
    EXPECT_GE(free.decision.utility, forced.decision.utility) << "forced=" << j;
  }
  // Out-of-range forced index: no usable election.
  const link::MultiLinkResult oob = link::optimize_multilink(views, p, failure, {}, 99);
  EXPECT_EQ(oob.burst_link, -1);
  EXPECT_EQ(oob.decision.utility, 0.0);
  // Empty link list: same.
  const link::MultiLinkResult none = link::optimize_multilink({}, p, failure);
  EXPECT_EQ(none.burst_link, -1);
}

TEST(MultiLinkContract, TrickleBytesBasics) {
  const std::shared_ptr<const link::LinkSet> set = full_link_set();
  const link::LinkBackend& cell = set->backend(1);
  const link::MultiLinkParams p{2000.0, 10.0, 1e9, 20.0};
  // No ferry leg, no trickle (and cdelay can never hit zero because of it).
  EXPECT_EQ(link::trickle_bytes(cell, p.d0_m, p), 0.0);
  // A real ferry leg ships a positive, finite trickle bounded by
  // availability * window * peak rate.
  const double tr = link::trickle_bytes(cell, 100.0, p);
  EXPECT_GT(tr, 0.0);
  const double window = (p.d0_m - 100.0) / p.speed_mps - cell.config().session_setup_s;
  EXPECT_LE(tr, cell.availability() * window * cell.config().cell_peak_bps / 8.0);
  // A session setup longer than the ferry leg leaves no window.
  const link::MultiLinkParams quick{120.0, 100.0, 1e9, 20.0};
  EXPECT_EQ(link::trickle_bytes(cell, 119.0, quick), 0.0);
}

// ---- DecisionService wiring -------------------------------------------------

TEST(MultiLinkContract, ServiceSingletonMatchesLegacyDecide) {
  const link::LinkBackendConfig cfg = link::LinkBackendConfig::wifi_80211n();
  const core::PaperLogThroughput model(cfg.wifi_a, cfg.wifi_b, cfg.name, cfg.wifi_scale,
                                       cfg.min_distance_m);
  policy::DecisionService service(model);
  service.install_links(std::make_shared<const link::LinkSet>(
      std::vector<link::LinkBackendConfig>{cfg}));
  ASSERT_TRUE(service.has_links());

  FOR_ALL(40, 0x5E4EULL, g) {
    policy::Query q;
    q.d0_m = g.uniform(50.0, 3000.0);
    q.speed_mps = g.uniform(1.0, 25.0);
    q.mdata_bytes = g.uniform(1e5, 1e9);
    q.rho_per_m = g.chance(0.2) ? 0.0 : g.uniform(1e-5, 5e-3);
    const policy::Decision want = service.decide_one(q);
    const policy::MultiLinkDecision got = service.decide_multilink_one(q);
    EXPECT_EQ(got.decision.d_opt_m, want.d_opt_m);
    EXPECT_EQ(got.decision.utility, want.utility);
    EXPECT_EQ(got.decision.cdelay_s, want.cdelay_s);
    EXPECT_EQ(got.decision.discount, want.discount);
    EXPECT_EQ(got.decision.boundary, want.boundary);
    EXPECT_EQ(got.decision.evaluations, want.evaluations);
    EXPECT_EQ(got.burst_link, 0);
    EXPECT_EQ(got.trickle_bytes, 0.0);
  }
}

TEST(MultiLinkContract, ServiceBatchMatchesOneByOneAndValidates) {
  const link::LinkBackendConfig cfg = link::LinkBackendConfig::wifi_80211n();
  const core::PaperLogThroughput model(cfg.wifi_a, cfg.wifi_b, cfg.name, cfg.wifi_scale,
                                       cfg.min_distance_m);
  policy::DecisionService bare(model);
  EXPECT_FALSE(bare.has_links());
  policy::Query q;
  q.d0_m = 500.0;
  q.mdata_bytes = 1e7;
  q.speed_mps = 10.0;
  // Graceful degradation: no installed link set answers with the
  // single-link exact optimum, tagged — not an exception.
  const policy::MultiLinkDecision fb = bare.decide_multilink_one(q);
  EXPECT_EQ(fb.decision.fallback_reason, policy::FallbackReason::kNoLinkSet);
  EXPECT_EQ(fb.burst_link, -1);
  EXPECT_EQ(fb.trickle_bytes, 0.0);
  EXPECT_EQ(fb.burst_bytes, q.mdata_bytes);
  const policy::Decision exact = bare.decide_one(q);
  EXPECT_EQ(fb.decision.d_opt_m, exact.d_opt_m);
  EXPECT_EQ(fb.decision.utility, exact.utility);

  policy::DecisionService service(model);
  service.install_links(full_link_set());
  std::vector<policy::Query> queries(3, q);
  queries[1].d0_m = 1500.0;
  queries[2].burst_link = 1;
  std::vector<policy::MultiLinkDecision> out(3);
  service.decide_multilink(queries, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const policy::MultiLinkDecision one = service.decide_multilink_one(queries[i]);
    EXPECT_EQ(out[i].decision.d_opt_m, one.decision.d_opt_m);
    EXPECT_EQ(out[i].decision.utility, one.decision.utility);
    EXPECT_EQ(out[i].burst_link, one.burst_link);
    EXPECT_EQ(out[i].trickle_bytes, one.trickle_bytes);
  }
  EXPECT_EQ(out[2].burst_link, 1);

  std::vector<policy::MultiLinkDecision> wrong(2);
  EXPECT_THROW(service.decide_multilink(queries, wrong), std::invalid_argument);
}

/// decide_multilink is const and shared: the TSan tree runs this to
/// prove concurrent multi-link decisions on one service are race-free.
TEST(MultiLinkContract, ServiceConcurrentDecidesAreRaceFree) {
  const link::LinkBackendConfig cfg = link::LinkBackendConfig::wifi_80211n();
  const core::PaperLogThroughput model(cfg.wifi_a, cfg.wifi_b, cfg.name, cfg.wifi_scale,
                                       cfg.min_distance_m);
  policy::DecisionService service(model);
  service.install_links(full_link_set());

  policy::Query q;
  q.d0_m = 1200.0;
  q.speed_mps = 12.0;
  q.mdata_bytes = 4e7;
  q.rho_per_m = 1e-3;
  const policy::MultiLinkDecision want = service.decide_multilink_one(q);

  std::vector<std::thread> pool;
  std::vector<policy::MultiLinkDecision> got(8);
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] { got[static_cast<std::size_t>(t)] = service.decide_multilink_one(q); });
  }
  for (std::thread& th : pool) th.join();
  for (const policy::MultiLinkDecision& d : got) {
    EXPECT_EQ(d.decision.d_opt_m, want.decision.d_opt_m);
    EXPECT_EQ(d.decision.utility, want.decision.utility);
    EXPECT_EQ(d.burst_link, want.burst_link);
    EXPECT_EQ(d.trickle_bytes, want.trickle_bytes);
  }
}

/// End-to-end smoke: a FleetEngine with FleetConfig::links set routes
/// spawn decisions through the joint optimizer — missions report an
/// elected burst link, trickled bytes are credited on arrival, and the
/// run is bit-identical across thread counts. A null-links engine on
/// the same missions keeps the legacy path (burst_link stays -1).
TEST(MultiLinkContract, FleetEngineRoutesSpawnDecisionsThroughLinks) {
  const auto run_fleet = [](std::shared_ptr<const link::LinkSet> links, int threads) {
    fleet::FleetConfig cfg;
    cfg.links = std::move(links);
    cfg.threads = threads;
    fleet::FleetEngine eng(cfg, /*seed=*/7);
    for (int i = 0; i < 6; ++i) {
      fleet::MissionSpec m;
      m.start_pos = {150.0 + 40.0 * i, 30.0 * i, 50.0};
      m.receiver_pos = {0.0, 0.0, 0.0};
      m.mdata_bytes = 2e6;
      m.rho_per_m = 0.0;
      eng.add_mission(m);
    }
    eng.run_until(240.0);
    std::vector<fleet::MissionStatus> out;
    for (int i = 0; i < 6; ++i) out.push_back(eng.mission(i));
    return out;
  };

  const auto multi = run_fleet(full_link_set(), 1);
  for (const fleet::MissionStatus& st : multi) {
    EXPECT_GE(st.burst_link, 0);
    EXPECT_LT(st.burst_link, 4);
    EXPECT_LE(st.trickle_bytes, st.bytes_total);
    EXPECT_GT(st.utility, 0.0);
  }
  EXPECT_TRUE(std::any_of(multi.begin(), multi.end(), [](const fleet::MissionStatus& st) {
    return st.bytes_delivered > 0;
  })) << "multi-link fleet should make progress within the horizon";

  // Thread-count bit-identity carries over to the multi-link path.
  const auto multi8 = run_fleet(full_link_set(), 8);
  ASSERT_EQ(multi.size(), multi8.size());
  for (std::size_t i = 0; i < multi.size(); ++i) {
    EXPECT_EQ(multi[i].burst_link, multi8[i].burst_link);
    EXPECT_EQ(multi[i].trickle_bytes, multi8[i].trickle_bytes);
    EXPECT_EQ(multi[i].d_star_m, multi8[i].d_star_m);
    EXPECT_EQ(multi[i].bytes_delivered, multi8[i].bytes_delivered);
    EXPECT_EQ(multi[i].completed_t_s, multi8[i].completed_t_s);
  }

  // Null links: legacy path, no election, no trickle.
  for (const fleet::MissionStatus& st : run_fleet(nullptr, 1)) {
    EXPECT_EQ(st.burst_link, -1);
    EXPECT_EQ(st.trickle_bytes, 0u);
  }
}

/// The burst *simulation* honors the election. A contact far beyond
/// wifi range elects a non-wifi link, and the transfer must run over
/// that backend's rate/PER model — before this was wired through, the
/// fleet reported a non-wifi decision yet simulated the burst over the
/// 802.11n MAC at PER ~1, stalling the mission forever.
TEST(MultiLinkContract, FleetSimulatesBurstOverElectedBackend) {
  const auto run_fleet = [](int threads) {
    fleet::FleetConfig cfg;
    // wifi (dead past ~450 m) + LEO (distance-independent rate): at
    // d0 = 3 km the election must leave wifi.
    cfg.links = std::make_shared<const link::LinkSet>(std::vector<link::LinkBackendConfig>{
        link::LinkBackendConfig::wifi_80211n(), link::LinkBackendConfig::leo()});
    cfg.threads = threads;
    fleet::FleetEngine eng(cfg, /*seed=*/11);
    fleet::MissionSpec m;
    m.start_pos = {3000.0, 0.0, 50.0};
    m.receiver_pos = {0.0, 0.0, 0.0};
    m.mdata_bytes = 2e6;
    m.rho_per_m = 1e-3;
    eng.add_mission(m);
    eng.run_until(600.0);
    return eng.mission(0);
  };

  const fleet::MissionStatus st = run_fleet(1);
  EXPECT_EQ(st.burst_link, 1) << "3 km contact must elect the LEO link over dead wifi";
  EXPECT_EQ(st.phase, fleet::Phase::kDone)
      << "the elected backend must actually deliver the burst";
  EXPECT_EQ(st.bytes_delivered, st.bytes_total);
  EXPECT_GT(st.mpdus_attempted, 0u);
  EXPECT_GT(st.completed_t_s, st.arrived_t_s) << "LEO session setup + ARQ rounds take time";

  // Row-local generic transfers keep thread-count bit-identity.
  const fleet::MissionStatus st8 = run_fleet(8);
  EXPECT_EQ(st.bytes_delivered, st8.bytes_delivered);
  EXPECT_EQ(st.completed_t_s, st8.completed_t_s);
  EXPECT_EQ(st.mpdus_attempted, st8.mpdus_attempted);
  EXPECT_EQ(st.mpdus_delivered, st8.mpdus_delivered);
}

}  // namespace
}  // namespace skyferry
