// Extreme-regime coverage for link::OutageProcess and the generic
// frame-burst session: availability driven toward zero, up/down means
// spanning six orders of magnitude, long-run up-fractions under chaos
// overlays, and the incomplete-run failure taxonomy (starved-by-outage
// vs out-of-range vs setup-failed vs plain time limit) that chaos
// campaigns sort their losses by.
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "fault/link_chaos.h"
#include "link/backend.h"
#include "link/outage.h"
#include "mac/link.h"

namespace skyferry {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(OutageExtreme, NearZeroAvailabilityIsAlmostAlwaysDown) {
  const link::OutageConfig cfg{1e-6, 30.0};
  int up = 0, samples = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    link::OutageProcess p(cfg, seed);
    for (double t = 0.0; t < 2000.0; t += 1.0) {
      up += p.is_up(t) ? 1 : 0;
      ++samples;
    }
  }
  EXPECT_LT(static_cast<double>(up) / samples, 0.01);

  // up_seconds integrates the tiny up slivers exactly.
  link::OutageProcess p(cfg, 99);
  const double frac = p.up_seconds(0.0, 50000.0) / 50000.0;
  EXPECT_LT(frac, 1e-4);
}

TEST(OutageExtreme, SegmentEndStaysFiniteAndMonotone) {
  link::OutageProcess p({1e-6, 30.0}, 5);
  double prev = 0.0;
  for (double t = 0.0; t < 5000.0; t += 13.0) {
    const double end = p.segment_end_s(t);
    ASSERT_TRUE(std::isfinite(end));
    ASSERT_GT(end, t);
    ASSERT_GE(end, prev);
    prev = end;
  }
}

// Sub-millisecond flapping: mean up and mean outage both 1 ms. The
// process must walk millions of segments without losing the long-run
// availability.
TEST(OutageExtreme, MillisecondFlappingKeepsStationaryFraction) {
  const link::OutageConfig cfg{0.5, 1e-3};
  ASSERT_NEAR(cfg.mean_up_s(), 1e-3, 1e-12);
  link::OutageProcess p(cfg, 17);
  const double frac = p.up_seconds(0.0, 200.0) / 200.0;
  EXPECT_NEAR(frac, 0.5, 0.02);
}

// Kilosecond segments at the other end of the span: six orders above
// the flapping case. Few renewals fit any window, so the check is the
// stationary mean over many seeds (the process seeds its initial state
// from the stationary distribution).
TEST(OutageExtreme, KilosecondSegmentsMatchStationaryMeanOverSeeds) {
  const link::OutageConfig cfg{0.999, 1e3};
  double frac = 0.0;
  constexpr int kSeeds = 300;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    link::OutageProcess p(cfg, seed);
    frac += p.up_seconds(0.0, 1e5) / 1e5;
  }
  EXPECT_NEAR(frac / kSeeds, 0.999, 0.01);
}

// Chi-square-style pinning of the long-run up fraction under a chaos
// overlay: effective up = own outage process up AND no injected
// blackout. The processes are independent, so the fractions multiply.
TEST(OutageExtreme, UpFractionUnderChaosOverlayIsProductOfAvailabilities) {
  const link::OutageConfig outage_cfg{0.9, 20.0};
  fault::LinkChaosConfig chaos_cfg;
  chaos_cfg.blackout_rate_per_hour = 120.0;  // gap mean 30 s
  chaos_cfg.blackout_mean_s = 15.0;
  const double chaos_quiet = 30.0 / (30.0 + 15.0);
  const double expected = 0.9 * chaos_quiet;

  constexpr int kSeeds = 24;
  constexpr double kHorizon = 20000.0;
  constexpr double kDt = 1.0;
  const int per_seed = static_cast<int>(kHorizon / kDt);
  int within = 0;
  double pooled = 0.0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    link::OutageProcess outage(outage_cfg, seed);
    fault::LinkChaosStream chaos(chaos_cfg, seed ^ 0x9e3779b9ULL);
    int up = 0;
    for (double t = 0.0; t < kHorizon; t += kDt)
      up += (outage.is_up(t) && !chaos.blacked_out(t)) ? 1 : 0;
    const double frac = static_cast<double>(up) / per_seed;
    pooled += frac;
    // Generous per-seed band: samples are serially correlated (segment
    // lengths of tens of seconds), so the effective sample count is
    // horizon / segment scale, not horizon / dt.
    within += std::abs(frac - expected) < 0.05 ? 1 : 0;
  }
  EXPECT_NEAR(pooled / kSeeds, expected, 0.01);
  EXPECT_GE(within, kSeeds * 9 / 10);
}

// ---------------------------------------------------------------------------
// GenericSession failure taxonomy under extreme regimes.

std::unique_ptr<link::LinkBackend> cellular_backend() {
  return link::make_backend(link::LinkBackendConfig::cellular());
}

TEST(OutageExtreme, DisabledChaosSessionBitIdenticalToPlain) {
  const auto bk = cellular_backend();
  const auto a = bk->make_session(42)->run_transfer(2'000'000, 120.0, mac::static_geometry(800.0));
  const auto b = bk->make_session(42, fault::LinkChaosConfig{})
                     ->run_transfer(2'000'000, 120.0, mac::static_geometry(800.0));
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.payload_bits_delivered, b.payload_bits_delivered);
  EXPECT_EQ(a.mpdus_attempted, b.mpdus_attempted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.incomplete_reason, b.incomplete_reason);
}

TEST(OutageExtreme, PermanentChaosBlackoutBailsStarved) {
  const auto bk = cellular_backend();
  fault::LinkChaosConfig chaos;
  chaos.blackout_rate_per_hour = 3.6e6;  // first gap ~1 ms
  chaos.blackout_mean_s = 1e9;           // never lifts
  const auto r = bk->make_session(1, chaos)->run_transfer(1'000'000, kInf,
                                                          mac::static_geometry(800.0));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kStarvedByOutage);
}

TEST(OutageExtreme, HundredPercentOutageBailsStarved) {
  link::LinkBackendConfig cfg = link::LinkBackendConfig::cellular();
  cfg.outage = {1e-6, 1e5};  // availability -> 0+, outages outlast the idle cap
  const auto bk = link::make_backend(cfg);
  const auto r = bk->make_session(2)->run_transfer(1'000'000, kInf, mac::static_geometry(800.0));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kStarvedByOutage);
}

TEST(OutageExtreme, OutOfRangeGeometryBailsTagged) {
  const auto bk = cellular_backend();
  const double beyond = bk->max_range_m() * 2.0;
  const auto r = bk->make_session(3)->run_transfer(1'000'000, kInf, mac::static_geometry(beyond));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.payload_bits_delivered, 0u);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kOutOfRange);
}

TEST(OutageExtreme, CertainSetupFailureBailsTagged) {
  const auto bk = cellular_backend();
  fault::LinkChaosConfig chaos;
  chaos.setup_fail_p = 1.0;
  const auto r = bk->make_session(4, chaos)->run_transfer(1'000'000, 120.0,
                                                          mac::static_geometry(800.0));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.payload_bits_delivered, 0u);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kSessionSetupFailed);
}

TEST(OutageExtreme, PlainTimeLimitKeepsTimeLimitTag) {
  const auto bk = cellular_backend();
  const auto r = bk->make_session(5)->run_transfer(1'000'000'000'000ULL, 2.0,
                                                   mac::static_geometry(800.0));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kTimeLimit);
}

TEST(OutageExtreme, CompletedRunCarriesNoTag) {
  const auto bk = cellular_backend();
  const auto r = bk->make_session(6)->run_transfer(500'000, 600.0, mac::static_geometry(800.0));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.incomplete_reason, mac::IncompleteReason::kNone);
}

// Permanent degradation epochs stretch the burst airtime by exactly
// 1/scale without starving the transfer. RTT, setup and outage are
// zeroed so airtime is the whole duration; the frame-fate RNG stream is
// untouched by chaos, so both runs deliver the same bursts and the
// durations differ by the scale factor alone.
TEST(OutageExtreme, DegradationScalesDurationWithoutStarving) {
  link::LinkBackendConfig cfg = link::LinkBackendConfig::cellular();
  cfg.outage = {1.0, 30.0};  // isolate the chaos axis from outage noise
  cfg.rtt_s = 0.0;
  cfg.session_setup_s = 0.0;
  const auto bk = link::make_backend(cfg);
  const auto plain = bk->make_session(7)->run_transfer(4'000'000, 3600.0,
                                                       mac::static_geometry(800.0));
  fault::LinkChaosConfig chaos;
  chaos.degrade_rate_per_hour = 3.6e6;
  chaos.degrade_mean_s = 1e9;
  chaos.degrade_rate_scale = 0.25;
  const auto slow = bk->make_session(7, chaos)->run_transfer(4'000'000, 3600.0,
                                                             mac::static_geometry(800.0));
  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(slow.completed);
  ASSERT_GT(plain.duration_s, 0.0);
  // The epoch *arrives* (~1 ms in), so the first burst runs unscaled and
  // the ratio lands just under 1/scale.
  EXPECT_NEAR(slow.duration_s / plain.duration_s, 4.0, 0.1);
  EXPECT_EQ(slow.payload_bits_delivered, plain.payload_bits_delivered);
}

}  // namespace
}  // namespace skyferry
