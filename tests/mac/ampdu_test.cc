#include "mac/ampdu.h"

#include <gtest/gtest.h>

namespace skyferry::mac {
namespace {

constexpr auto kW = phy::ChannelWidth::kCw40MHz;
constexpr auto kGi = phy::GuardInterval::kShort400ns;

TEST(MpduFormat, BitCounts) {
  MpduFormat f;
  // 1470 + 28 + 8 + 26 + 4 = 1536 bytes = 12288 bits.
  EXPECT_EQ(f.mpdu_bits(), 12288);
  // + 4 delimiter = 1540, already 4-aligned.
  EXPECT_EQ(f.subframe_bits(), 12320);
  EXPECT_EQ(f.payload_bits(), 11760);
}

TEST(MpduFormat, PaddingRoundsUp) {
  MpduFormat f;
  f.msdu_bytes = 1471;  // forces a 1541-byte subframe -> pad to 1544
  EXPECT_EQ(f.subframe_bits(), 1544 * 8);
}

TEST(SubframesFor, RespectsBacklogAndCap) {
  AmpduPolicy p;
  MpduFormat f;
  EXPECT_EQ(subframes_for(p, f, phy::mcs(7), kW, kGi, 100), 14);  // cap at default
  EXPECT_EQ(subframes_for(p, f, phy::mcs(7), kW, kGi, 3), 3);     // backlog-limited
  EXPECT_EQ(subframes_for(p, f, phy::mcs(7), kW, kGi, 0), 1);     // at least one
}

TEST(SubframesFor, ByteCap) {
  AmpduPolicy p;
  p.max_subframes = 64;
  p.max_ampdu_bytes = 10000;  // fits only 6 subframes of 1540 B
  MpduFormat f;
  EXPECT_EQ(subframes_for(p, f, phy::mcs(7), kW, kGi, 64), 6);
}

TEST(SubframesFor, DurationCapBitesAtLowMcs) {
  AmpduPolicy p;
  p.max_duration_s = 2e-3;
  MpduFormat f;
  // At MCS0 (15 Mb/s), 14 subframes (172 kbit) would take ~11.5 ms.
  const int n = subframes_for(p, f, phy::mcs(0), kW, kGi, 14);
  EXPECT_LT(n, 14);
  EXPECT_GE(n, 1);
  EXPECT_LE(ampdu_duration_s(f, phy::mcs(0), kW, kGi, n), p.max_duration_s * 1.05);
}

TEST(SubframesFor, SlowHostLimitsAggregation) {
  // The paper: "If the physical rate is too high, the embedded system may
  // not fill the buffer fast enough, resulting in fewer A-MPDU sub-frames."
  AmpduPolicy fast_host;
  AmpduPolicy slow_host;
  slow_host.host_fill_rate_bps = 30e6;
  MpduFormat f;
  const int n_fast = subframes_for(fast_host, f, phy::mcs(7), kW, kGi, 14);
  const int n_slow = subframes_for(slow_host, f, phy::mcs(7), kW, kGi, 14);
  EXPECT_EQ(n_fast, 14);
  EXPECT_LT(n_slow, 14);
  // At a low PHY rate the slow host keeps up again.
  EXPECT_EQ(subframes_for(slow_host, f, phy::mcs(0), kW, kGi, 14),
            subframes_for(fast_host, f, phy::mcs(0), kW, kGi, 14));
}

TEST(AmpduDuration, GrowsWithSubframes) {
  MpduFormat f;
  const double d1 = ampdu_duration_s(f, phy::mcs(7), kW, kGi, 1);
  const double d14 = ampdu_duration_s(f, phy::mcs(7), kW, kGi, 14);
  EXPECT_GT(d14, d1 * 10.0);
}

TEST(ExchangeDuration, IncludesOverheads) {
  MacTiming t;
  MpduFormat f;
  const double ampdu = ampdu_duration_s(f, phy::mcs(7), kW, kGi, 14);
  const double exch = exchange_duration_s(t, f, phy::mcs(7), kW, kGi, 14, 0);
  EXPECT_GT(exch, ampdu + t.difs_s() + t.sifs_s);
}

TEST(IdealGoodput, Mcs7FortyMhzAggregated) {
  MacTiming t;
  AmpduPolicy p;
  MpduFormat f;
  const double gp = ideal_goodput_bps(t, p, f, phy::mcs(7), kW, kGi) / 1e6;
  // 14 aggregated 1470 B datagrams at 150 Mb/s PHY: ~120 Mb/s goodput.
  EXPECT_GT(gp, 110.0);
  EXPECT_LT(gp, 130.0);
}

TEST(IdealGoodput, MonotoneInSingleStreamMcs) {
  MacTiming t;
  AmpduPolicy p;
  MpduFormat f;
  double prev = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double gp = ideal_goodput_bps(t, p, f, phy::mcs(i), kW, kGi);
    EXPECT_GT(gp, prev) << "mcs" << i;
    prev = gp;
  }
}

TEST(IdealGoodput, EfficiencyDropsAtHighRate) {
  // Fixed per-exchange overhead: MAC efficiency (goodput/PHY rate) falls
  // as the PHY rate rises.
  MacTiming t;
  AmpduPolicy p;
  MpduFormat f;
  const double eff0 =
      ideal_goodput_bps(t, p, f, phy::mcs(0), kW, kGi) / phy::mcs(0).phy_rate_bps(kW, kGi);
  const double eff7 =
      ideal_goodput_bps(t, p, f, phy::mcs(7), kW, kGi) / phy::mcs(7).phy_rate_bps(kW, kGi);
  EXPECT_GT(eff0, eff7);
  EXPECT_GT(eff7, 0.6);  // aggregation keeps 11n efficient
}

}  // namespace
}  // namespace skyferry::mac
