// Property tests for the Bianchi contention solver. The fleet engine
// applies analyze_contention per shared-channel cell (one call per
// distinct (station count, MCS) pair per sweep, memoized), so these pin
// the properties that path relies on across the whole station range a
// cell can reach — not just the single n=2 point the ablation exercises.
#include "mac/contention.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mac/ampdu.h"

namespace skyferry::mac {
namespace {

struct Fixture {
  MacTiming timing{};
  double frame_s{0.0};
  double ack_s{0.0};

  explicit Fixture(int mcs = 3) {
    MpduFormat f;
    frame_s = ampdu_duration_s(f, phy::mcs(mcs), phy::ChannelWidth::kCw40MHz,
                               phy::GuardInterval::kShort400ns, 14);
    ack_s = block_ack_duration_s(phy::ChannelWidth::kCw40MHz);
  }
};

/// Bianchi's tau(p) — duplicated from the solver so the residual check
/// is against the published closed form, not the implementation's own
/// internals.
double tau_of_p(double p, const MacTiming& timing) {
  const int w = timing.cw_min + 1;
  int m = 0;
  while ((w << m) - 1 < timing.cw_max) ++m;
  if (std::abs(1.0 - 2.0 * p) < 1e-6) {
    return 4.0 / (2.0 * (w + 1.0) + static_cast<double>(w) * m);
  }
  return 2.0 * (1.0 - 2.0 * p) /
         ((1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - std::pow(2.0 * p, m)));
}

TEST(ContentionProperty, EfficiencyIsOneAtSingleStation) {
  for (int mcs : {0, 3, 7, 15}) {
    Fixture f(mcs);
    const auto r = analyze_contention(1, f.timing, f.frame_s, f.ack_s);
    EXPECT_DOUBLE_EQ(r.efficiency_vs_single, 1.0) << "mcs " << mcs;
    EXPECT_DOUBLE_EQ(r.collision_probability, 0.0) << "mcs " << mcs;
  }
}

TEST(ContentionProperty, EfficiencyMonotonicallyNonIncreasingInN) {
  // Every additional contender can only shrink a station's share. Swept
  // densely over the cell sizes the fleet scheduler can admit, at the
  // frame airtimes of a slow and a fast MCS.
  for (int mcs : {0, 7, 15}) {
    Fixture f(mcs);
    double prev = 1.0 + 1e-12;
    for (int n = 1; n <= 128; ++n) {
      const auto r = analyze_contention(n, f.timing, f.frame_s, f.ack_s);
      EXPECT_LE(r.efficiency_vs_single, prev) << "mcs " << mcs << " n " << n;
      EXPECT_GT(r.efficiency_vs_single, 0.0) << "mcs " << mcs << " n " << n;
      prev = r.efficiency_vs_single;
    }
  }
}

TEST(ContentionProperty, FixedPointResidualBelow1e9) {
  // The returned p must satisfy Bianchi's coupled equations
  // p = 1 - (1 - tau(p))^(n-1) to high accuracy — a sloppily converged
  // fixed point would silently bias every fleet cell's throughput.
  Fixture f;
  for (int n = 2; n <= 1024; n = n < 16 ? n + 1 : n * 2) {
    const auto r = analyze_contention(n, f.timing, f.frame_s, f.ack_s);
    const double tau = tau_of_p(r.collision_probability, f.timing);
    const double residual =
        std::abs(r.collision_probability - (1.0 - std::pow(1.0 - tau, n - 1)));
    EXPECT_LT(residual, 1e-9) << "n " << n;
    EXPECT_NEAR(r.tau, tau, 1e-12) << "n " << n;
  }
}

TEST(ContentionProperty, ProbabilitiesStayInRange) {
  Fixture f;
  for (int n = 1; n <= 512; n = n < 8 ? n + 1 : n * 2) {
    const auto r = analyze_contention(n, f.timing, f.frame_s, f.ack_s);
    EXPECT_GT(r.tau, 0.0) << n;
    EXPECT_LT(r.tau, 1.0) << n;
    EXPECT_GE(r.collision_probability, 0.0) << n;
    EXPECT_LT(r.collision_probability, 1.0) << n;
  }
}

TEST(ContentionProperty, NonPositiveStationCountClampsToOne) {
  Fixture f;
  for (int n : {0, -1, -100}) {
    const auto r = analyze_contention(n, f.timing, f.frame_s, f.ack_s);
    EXPECT_EQ(r.stations, 1) << n;
    EXPECT_DOUBLE_EQ(r.efficiency_vs_single, 1.0) << n;
  }
}

}  // namespace
}  // namespace skyferry::mac
