#include "mac/contention.h"

#include <gtest/gtest.h>

#include "mac/ampdu.h"

namespace skyferry::mac {
namespace {

struct Fixture {
  MacTiming timing{};
  double frame_s{0.0};
  double ack_s{0.0};

  Fixture() {
    MpduFormat f;
    frame_s = ampdu_duration_s(f, phy::mcs(3), phy::ChannelWidth::kCw40MHz,
                               phy::GuardInterval::kShort400ns, 14);
    ack_s = block_ack_duration_s(phy::ChannelWidth::kCw40MHz);
  }
};

TEST(Contention, SingleStationIsBaseline) {
  Fixture f;
  const auto r = analyze_contention(1, f.timing, f.frame_s, f.ack_s);
  EXPECT_EQ(r.stations, 1);
  EXPECT_DOUBLE_EQ(r.collision_probability, 0.0);
  EXPECT_DOUBLE_EQ(r.efficiency_vs_single, 1.0);
  EXPECT_NEAR(r.tau, 2.0 / 17.0, 1e-9);
}

TEST(Contention, CollisionProbabilityGrowsWithStations) {
  Fixture f;
  double prev = 0.0;
  for (int n : {2, 4, 8, 16, 32}) {
    const auto r = analyze_contention(n, f.timing, f.frame_s, f.ack_s);
    EXPECT_GT(r.collision_probability, prev) << n;
    EXPECT_LT(r.collision_probability, 1.0) << n;
    prev = r.collision_probability;
  }
}

TEST(Contention, PerStationShareShrinksFasterThanOneOverN) {
  // Collisions waste airtime, so n stations each get less than 1/n of
  // the lone-station throughput.
  Fixture f;
  for (int n : {2, 4, 8}) {
    const auto r = analyze_contention(n, f.timing, f.frame_s, f.ack_s);
    EXPECT_LT(r.efficiency_vs_single, 1.0 / n * 1.05) << n;
    EXPECT_GT(r.efficiency_vs_single, 1.0 / n * 0.5) << n;
  }
}

TEST(Contention, TwoBianchiFixedPointProperties) {
  Fixture f;
  const auto r = analyze_contention(2, f.timing, f.frame_s, f.ack_s);
  // For n=2, p = 1-(1-tau): the fixed point must satisfy itself.
  EXPECT_NEAR(r.collision_probability, r.tau, 0.01);
}

TEST(SharedGoodput, ScalesSingleStationRate) {
  Fixture f;
  const double single = 20e6;
  const double two = shared_goodput_bps(single, 2, f.timing, f.frame_s, f.ack_s);
  const double four = shared_goodput_bps(single, 4, f.timing, f.frame_s, f.ack_s);
  EXPECT_LT(two, single / 2.0 * 1.05);
  EXPECT_LT(four, two);
  EXPECT_GT(four, 0.0);
}

TEST(SharedGoodput, MissionPlanningExample) {
  // Two UAV pairs delivering simultaneously near the same relay halve
  // (a bit worse than halve) each pair's throughput: the planner should
  // stagger the rendezvous instead.
  Fixture f;
  const double alone_mbps = 11.0;  // quad link at 60 m
  const double shared = shared_goodput_bps(alone_mbps * 1e6, 2, f.timing, f.frame_s, f.ack_s);
  EXPECT_LT(shared / 1e6, 5.6);
  EXPECT_GT(shared / 1e6, 3.0);
}

}  // namespace
}  // namespace skyferry::mac
