#include "mac/link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::mac {
namespace {

LinkConfig quad_cfg() {
  LinkConfig cfg;
  cfg.channel = phy::ChannelConfig::quadrocopter();
  return cfg;
}

TEST(LinkSimulator, CloseRangeFixedMcsDeliversWell) {
  // MCS1 (QPSK 1/2 + STBC) is the right rate at 20 m on the calibrated
  // quad link — consistent with the paper measuring only ~27 Mb/s there.
  LinkConfig cfg = quad_cfg();
  FixedMcs rc(1);
  LinkSimulator sim(cfg, rc, 42);
  const auto res = sim.run_saturated(10.0, static_geometry(20.0));
  EXPECT_GT(res.mean_goodput_mbps(), 15.0);
  EXPECT_LT(res.loss_rate(), 0.3);
  EXPECT_GT(res.exchanges, 100u);
}

TEST(LinkSimulator, ThroughputDecreasesWithDistance) {
  double prev = 1e9;
  for (double d : {20.0, 60.0, 100.0}) {
    FixedMcs rc(1);
    LinkSimulator sim(quad_cfg(), rc, 7);
    const auto res = sim.run_saturated(20.0, static_geometry(d));
    EXPECT_LT(res.mean_goodput_mbps(), prev + 1.0) << d;
    prev = res.mean_goodput_mbps();
  }
}

TEST(LinkSimulator, MovingDegradesThroughput) {
  // The paper's Fig. 7 center: transmitting while approaching at ~8 m/s
  // loses badly against hovering at the same distance.
  MinstrelConfig mc;
  MinstrelHt rc_hover(mc, 1);
  MinstrelHt rc_move(mc, 1);
  LinkSimulator hover(quad_cfg(), rc_hover, 11);
  LinkSimulator move(quad_cfg(), rc_move, 11);
  const auto r_hover = hover.run_saturated(30.0, static_geometry(60.0, 0.0));
  const auto r_move = move.run_saturated(30.0, static_geometry(60.0, 8.0));
  EXPECT_LT(r_move.mean_goodput_mbps(), r_hover.mean_goodput_mbps() * 0.8);
}

TEST(LinkSimulator, TransferCompletesAndIsMonotone) {
  FixedMcs rc(1);
  LinkSimulator sim(quad_cfg(), rc, 13);
  const auto res = sim.run_transfer(5'000'000, 120.0, static_geometry(40.0));
  EXPECT_TRUE(res.completed);
  EXPECT_GE(res.payload_bits_delivered, 5'000'000ull * 8ull);
  // Cumulative transfer curve must be nondecreasing.
  for (std::size_t i = 1; i < res.transfer_curve_mb.size(); ++i) {
    EXPECT_GE(res.transfer_curve_mb[i].mbps, res.transfer_curve_mb[i - 1].mbps);
    EXPECT_GT(res.transfer_curve_mb[i].t_s, res.transfer_curve_mb[i - 1].t_s);
  }
}

TEST(LinkSimulator, TransferTimesOutOutOfRange) {
  FixedMcs rc(7);  // high MCS at extreme range: nothing gets through
  LinkConfig cfg = quad_cfg();
  LinkSimulator sim(cfg, rc, 17);
  const auto res = sim.run_transfer(1'000'000, 5.0, static_geometry(400.0));
  EXPECT_FALSE(res.completed);
  EXPECT_GE(res.duration_s, 5.0);
  EXPECT_LT(res.payload_bits_delivered, 1'000'000ull * 8ull);
}

TEST(LinkSimulator, DeterministicForSeed) {
  FixedMcs rc1(3), rc2(3);
  LinkSimulator a(quad_cfg(), rc1, 99);
  LinkSimulator b(quad_cfg(), rc2, 99);
  const auto ra = a.run_saturated(5.0, static_geometry(50.0));
  const auto rb = b.run_saturated(5.0, static_geometry(50.0));
  EXPECT_EQ(ra.payload_bits_delivered, rb.payload_bits_delivered);
  EXPECT_EQ(ra.exchanges, rb.exchanges);
}

TEST(LinkSimulator, GeometryFunctionIsHonored) {
  // Approach geometry: distance shrinks over time, so later windows see
  // higher throughput than the first ones.
  FixedMcs rc(2);
  LinkSimulator sim(quad_cfg(), rc, 21);
  auto geom = [](double t) {
    const double d = std::max(100.0 - 4.0 * t, 20.0);
    return Geometry{d, d > 20.0 ? 4.0 : 0.0};
  };
  const auto res = sim.run_saturated(40.0, geom);
  ASSERT_GE(res.samples.size(), 10u);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < 5; ++i) early += res.samples[i].mbps;
  for (std::size_t i = res.samples.size() - 5; i < res.samples.size(); ++i)
    late += res.samples[i].mbps;
  EXPECT_GT(late, early);
}

TEST(LinkSimulator, SamplesCoverDuration) {
  FixedMcs rc(3);
  LinkSimulator sim(quad_cfg(), rc, 23);
  const auto res = sim.run_saturated(10.0, static_geometry(30.0));
  ASSERT_FALSE(res.samples.empty());
  EXPECT_NEAR(res.samples.back().t_s, res.duration_s, 0.6);
}

TEST(LinkSimulator, InfiniteMeterWindowSkipsSampling) {
  LinkConfig cfg = quad_cfg();
  cfg.meter_window_s = std::numeric_limits<double>::infinity();
  FixedMcs rc(1);
  LinkSimulator sim(cfg, rc, 31);
  const auto res = sim.run_saturated(5.0, static_geometry(40.0));
  EXPECT_TRUE(res.samples.empty());
  EXPECT_TRUE(res.transfer_curve_mb.empty());
  // Totals are unaffected by disabling the meter.
  FixedMcs rc2(1);
  LinkSimulator metered(quad_cfg(), rc2, 31);
  const auto ref = metered.run_saturated(5.0, static_geometry(40.0));
  EXPECT_EQ(res.payload_bits_delivered, ref.payload_bits_delivered);
  EXPECT_EQ(res.exchanges, ref.exchanges);
}

// --- kPerMpdu / kAggregate statistical equivalence -----------------------
//
// The aggregate fast path must reproduce the per-MPDU reference
// *distribution*: same delivered-MPDU mean, same loss rate, same
// windowed-throughput spread — not the same draws. Averaging over many
// seeds bounds the Monte-Carlo error of the comparison.

struct FidelityStats {
  double mean_goodput{0.0};
  double goodput_var{0.0};
  double loss{0.0};
  double delivered_mean{0.0};
  double delivered_var{0.0};
};

void mean_and_var(const std::vector<double>& xs, double& mean, double& var) {
  mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
}

FidelityStats run_fidelity(LinkFidelity f, double jitter_db, double distance_m, int seeds) {
  FidelityStats out;
  std::vector<double> delivered, goodput;
  for (int s = 0; s < seeds; ++s) {
    LinkConfig cfg = quad_cfg();
    cfg.fidelity = f;
    cfg.per_mpdu_snr_jitter_db = jitter_db;
    FixedMcs rc(1);
    LinkSimulator sim(cfg, rc, 1000 + static_cast<std::uint64_t>(s));
    const auto res = sim.run_saturated(5.0, static_geometry(distance_m));
    out.loss += res.loss_rate();
    goodput.push_back(res.mean_goodput_mbps());
    delivered.push_back(static_cast<double>(res.mpdus_delivered));
  }
  out.loss /= seeds;
  mean_and_var(goodput, out.mean_goodput, out.goodput_var);
  mean_and_var(delivered, out.delivered_mean, out.delivered_var);
  return out;
}

class FidelityEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(FidelityEquivalenceTest, AggregateMatchesPerMpduMoments) {
  // The quadrocopter channel's fade coherence is on the order of a whole
  // 5 s run, so per-seed delivered counts have an across-seed CoV near
  // 30% at mid-waterfall distances: no affordable seed count resolves a
  // fixed 2% band. The tolerances are therefore noise-aware — 3.5 Monte-
  // Carlo standard errors of the mode difference, floored at 2% — which
  // flags any bias that rises above the comparison's own resolution. An
  // offline 400-seed paired experiment bounds the systematic difference
  // between the two fidelities at |z| < 2 for every (jitter, distance)
  // cell asserted here.
  const int kSeeds = 24;
  const double jitter_db = GetParam();
  for (double d : {40.0, 60.0, 70.0}) {
    const auto ref = run_fidelity(LinkFidelity::kPerMpdu, jitter_db, d, kSeeds);
    const auto fast = run_fidelity(LinkFidelity::kAggregate, jitter_db, d, kSeeds);
    const double se_gp = std::sqrt((ref.goodput_var + fast.goodput_var) / kSeeds);
    EXPECT_NEAR(fast.mean_goodput, ref.mean_goodput,
                std::max(0.02 * ref.mean_goodput, 3.5 * se_gp))
        << "d=" << d;
    EXPECT_NEAR(fast.loss, ref.loss, 0.03) << "d=" << d;
    const double se_del = std::sqrt((ref.delivered_var + fast.delivered_var) / kSeeds);
    EXPECT_NEAR(fast.delivered_mean, ref.delivered_mean,
                std::max(0.02 * ref.delivered_mean, 3.5 * se_del))
        << "d=" << d;
    // Across-seed delivered-count variances agree within a loose factor
    // (variance estimates from 24 seeds are themselves noisy).
    if (ref.delivered_var > 1000.0) {
      EXPECT_LT(fast.delivered_var, ref.delivered_var * 3.0) << "d=" << d;
      EXPECT_GT(fast.delivered_var, ref.delivered_var / 3.0) << "d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(JitterOnAndOff, FidelityEquivalenceTest, ::testing::Values(0.0, 2.0));

TEST(LinkSimulator, SharedTableCacheMatchesPrivateCache) {
  LinkConfig cfg = quad_cfg();
  cfg.fidelity = LinkFidelity::kAggregate;
  FixedMcs rc1(1), rc2(1);
  LinkSimulator private_sim(cfg, rc1, 77);
  cfg.shared_tables = make_shared_per_tables(cfg);
  LinkSimulator shared_sim(cfg, rc2, 77);
  const auto a = private_sim.run_saturated(5.0, static_geometry(60.0));
  const auto b = shared_sim.run_saturated(5.0, static_geometry(60.0));
  // Identical seeds + identical tables => identical trajectories.
  EXPECT_EQ(a.payload_bits_delivered, b.payload_bits_delivered);
  EXPECT_EQ(a.mpdus_delivered, b.mpdus_delivered);
  EXPECT_EQ(a.exchanges, b.exchanges);
}

TEST(LinkSimulator, AggregateDeterministicForSeed) {
  LinkConfig cfg = quad_cfg();
  cfg.fidelity = LinkFidelity::kAggregate;
  FixedMcs rc1(3), rc2(3);
  LinkSimulator a(cfg, rc1, 99);
  LinkSimulator b(cfg, rc2, 99);
  const auto ra = a.run_saturated(5.0, static_geometry(50.0));
  const auto rb = b.run_saturated(5.0, static_geometry(50.0));
  EXPECT_EQ(ra.payload_bits_delivered, rb.payload_bits_delivered);
  EXPECT_EQ(ra.exchanges, rb.exchanges);
}

}  // namespace
}  // namespace skyferry::mac
