#include "mac/link.h"

#include <gtest/gtest.h>

namespace skyferry::mac {
namespace {

LinkConfig quad_cfg() {
  LinkConfig cfg;
  cfg.channel = phy::ChannelConfig::quadrocopter();
  return cfg;
}

TEST(LinkSimulator, CloseRangeFixedMcsDeliversWell) {
  // MCS1 (QPSK 1/2 + STBC) is the right rate at 20 m on the calibrated
  // quad link — consistent with the paper measuring only ~27 Mb/s there.
  LinkConfig cfg = quad_cfg();
  FixedMcs rc(1);
  LinkSimulator sim(cfg, rc, 42);
  const auto res = sim.run_saturated(10.0, static_geometry(20.0));
  EXPECT_GT(res.mean_goodput_mbps(), 15.0);
  EXPECT_LT(res.loss_rate(), 0.3);
  EXPECT_GT(res.exchanges, 100u);
}

TEST(LinkSimulator, ThroughputDecreasesWithDistance) {
  double prev = 1e9;
  for (double d : {20.0, 60.0, 100.0}) {
    FixedMcs rc(1);
    LinkSimulator sim(quad_cfg(), rc, 7);
    const auto res = sim.run_saturated(20.0, static_geometry(d));
    EXPECT_LT(res.mean_goodput_mbps(), prev + 1.0) << d;
    prev = res.mean_goodput_mbps();
  }
}

TEST(LinkSimulator, MovingDegradesThroughput) {
  // The paper's Fig. 7 center: transmitting while approaching at ~8 m/s
  // loses badly against hovering at the same distance.
  MinstrelConfig mc;
  MinstrelHt rc_hover(mc, 1);
  MinstrelHt rc_move(mc, 1);
  LinkSimulator hover(quad_cfg(), rc_hover, 11);
  LinkSimulator move(quad_cfg(), rc_move, 11);
  const auto r_hover = hover.run_saturated(30.0, static_geometry(60.0, 0.0));
  const auto r_move = move.run_saturated(30.0, static_geometry(60.0, 8.0));
  EXPECT_LT(r_move.mean_goodput_mbps(), r_hover.mean_goodput_mbps() * 0.8);
}

TEST(LinkSimulator, TransferCompletesAndIsMonotone) {
  FixedMcs rc(1);
  LinkSimulator sim(quad_cfg(), rc, 13);
  const auto res = sim.run_transfer(5'000'000, 120.0, static_geometry(40.0));
  EXPECT_TRUE(res.completed);
  EXPECT_GE(res.payload_bits_delivered, 5'000'000ull * 8ull);
  // Cumulative transfer curve must be nondecreasing.
  for (std::size_t i = 1; i < res.transfer_curve_mb.size(); ++i) {
    EXPECT_GE(res.transfer_curve_mb[i].mbps, res.transfer_curve_mb[i - 1].mbps);
    EXPECT_GT(res.transfer_curve_mb[i].t_s, res.transfer_curve_mb[i - 1].t_s);
  }
}

TEST(LinkSimulator, TransferTimesOutOutOfRange) {
  FixedMcs rc(7);  // high MCS at extreme range: nothing gets through
  LinkConfig cfg = quad_cfg();
  LinkSimulator sim(cfg, rc, 17);
  const auto res = sim.run_transfer(1'000'000, 5.0, static_geometry(400.0));
  EXPECT_FALSE(res.completed);
  EXPECT_GE(res.duration_s, 5.0);
  EXPECT_LT(res.payload_bits_delivered, 1'000'000ull * 8ull);
}

TEST(LinkSimulator, DeterministicForSeed) {
  FixedMcs rc1(3), rc2(3);
  LinkSimulator a(quad_cfg(), rc1, 99);
  LinkSimulator b(quad_cfg(), rc2, 99);
  const auto ra = a.run_saturated(5.0, static_geometry(50.0));
  const auto rb = b.run_saturated(5.0, static_geometry(50.0));
  EXPECT_EQ(ra.payload_bits_delivered, rb.payload_bits_delivered);
  EXPECT_EQ(ra.exchanges, rb.exchanges);
}

TEST(LinkSimulator, GeometryFunctionIsHonored) {
  // Approach geometry: distance shrinks over time, so later windows see
  // higher throughput than the first ones.
  FixedMcs rc(2);
  LinkSimulator sim(quad_cfg(), rc, 21);
  auto geom = [](double t) {
    const double d = std::max(100.0 - 4.0 * t, 20.0);
    return Geometry{d, d > 20.0 ? 4.0 : 0.0};
  };
  const auto res = sim.run_saturated(40.0, geom);
  ASSERT_GE(res.samples.size(), 10u);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < 5; ++i) early += res.samples[i].mbps;
  for (std::size_t i = res.samples.size() - 5; i < res.samples.size(); ++i)
    late += res.samples[i].mbps;
  EXPECT_GT(late, early);
}

TEST(LinkSimulator, SamplesCoverDuration) {
  FixedMcs rc(3);
  LinkSimulator sim(quad_cfg(), rc, 23);
  const auto res = sim.run_saturated(10.0, static_geometry(30.0));
  ASSERT_FALSE(res.samples.empty());
  EXPECT_NEAR(res.samples.back().t_s, res.duration_s, 0.6);
}

}  // namespace
}  // namespace skyferry::mac
