#include "mac/rate_control.h"

#include <gtest/gtest.h>

namespace skyferry::mac {
namespace {

TEST(FixedMcs, AlwaysReturnsConfigured) {
  FixedMcs rc(3);
  for (double t = 0.0; t < 10.0; t += 0.5) EXPECT_EQ(rc.select_mcs(t), 3);
  rc.report(1.0, {3, 14, 0});  // feedback is ignored
  EXPECT_EQ(rc.select_mcs(11.0), 3);
  EXPECT_EQ(rc.name(), "fixed-mcs3");
}

TEST(ArfRate, LadderOrderedByRateWithSdmInterleaved) {
  ArfRate rc;
  ASSERT_EQ(rc.ladder_size(), phy::kNumMcs);
  // Rung 0 is the most robust rate; rates are nondecreasing up the ladder.
  EXPECT_EQ(rc.mcs_at(0), 0);
  double prev = 0.0;
  bool sdm_seen_before_top_single_stream = false;
  int top_single_rung = 0;
  for (int r = 0; r < rc.ladder_size(); ++r) {
    const auto& m = phy::mcs(rc.mcs_at(r));
    const double rate =
        m.phy_rate_bps(phy::ChannelWidth::kCw40MHz, phy::GuardInterval::kShort400ns);
    EXPECT_GE(rate, prev - 1.0);
    prev = rate;
    if (rc.mcs_at(r) == 7) top_single_rung = r;
  }
  for (int r = 0; r < top_single_rung; ++r) {
    if (phy::mcs(rc.mcs_at(r)).is_sdm()) sdm_seen_before_top_single_stream = true;
  }
  // The pathological property: broken SDM rungs sit *inside* the ladder,
  // so ARF keeps probing them on the way up.
  EXPECT_TRUE(sdm_seen_before_top_single_stream);
}

TEST(ArfRate, ClimbsOnSuccessStreak) {
  ArfConfig cfg;
  cfg.up_after_successes = 5;
  ArfRate rc(cfg);
  EXPECT_EQ(rc.rung(), 0);
  for (int i = 0; i < 5; ++i) rc.report(0.0, {rc.select_mcs(0.0), 14, 14});
  EXPECT_EQ(rc.rung(), 1);
}

TEST(ArfRate, DropsAfterConsecutiveFailures) {
  ArfConfig cfg;
  cfg.up_after_successes = 5;
  cfg.down_after_failures = 3;
  ArfRate rc(cfg);
  for (int i = 0; i < 5; ++i) rc.report(0.0, {rc.select_mcs(0.0), 14, 14});
  ASSERT_EQ(rc.rung(), 1);
  for (int i = 0; i < 3; ++i) rc.report(0.0, {rc.select_mcs(0.0), 14, 0});
  EXPECT_EQ(rc.rung(), 0);
  // Never below the bottom rung.
  for (int i = 0; i < 10; ++i) rc.report(0.0, {rc.select_mcs(0.0), 14, 0});
  EXPECT_EQ(rc.rung(), 0);
}

TEST(ArfRate, ProbeTimeoutKeepsRetestingBrokenRung) {
  // With a broken rung above, ARF keeps wasting exchanges on probes —
  // the airtime leak behind the paper's fixed-vs-auto gap.
  ArfConfig cfg;
  ArfRate rc(cfg);
  int probes_at_rung1 = 0;
  for (int i = 0; i < 400; ++i) {
    const int mcs = rc.select_mcs(0.0);
    const bool works = rc.rung() == 0;  // rung 1 is broken
    if (rc.rung() == 1) ++probes_at_rung1;
    rc.report(0.0, {mcs, 14, works ? 14 : 0});
  }
  EXPECT_GT(probes_at_rung1, 10);
  EXPECT_LE(rc.rung(), 1);
}

TEST(ArfRate, PartialDeliveryThresholdGovernsSuccess) {
  ArfConfig cfg;
  cfg.up_after_successes = 2;
  cfg.success_fraction = 0.5;
  ArfRate rc(cfg);
  // 6/14 delivered (43%) is a failure; 8/14 (57%) is a success.
  rc.report(0.0, {0, 14, 8});
  rc.report(0.0, {0, 14, 8});
  EXPECT_EQ(rc.rung(), 1);
  ArfRate rc2(cfg);
  for (int i = 0; i < 4; ++i) rc2.report(0.0, {0, 14, 6});
  EXPECT_EQ(rc2.rung(), 0);
}

class MinstrelTest : public ::testing::Test {
 protected:
  MinstrelConfig cfg_;
};

TEST_F(MinstrelTest, StartsOnLowestAllowedRate) {
  MinstrelHt rc(cfg_, 1);
  EXPECT_EQ(rc.best_mcs(), 0);

  MinstrelConfig masked = cfg_;
  masked.allowed.fill(false);
  masked.allowed[2] = true;
  masked.allowed[5] = true;
  MinstrelHt rc2(masked, 1);
  EXPECT_EQ(rc2.best_mcs(), 2);
}

TEST_F(MinstrelTest, LearnsGoodHighRate) {
  MinstrelHt rc(cfg_, 2);
  // Perfect channel: every attempted rate succeeds fully.
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const int m = rc.select_mcs(t);
    rc.report(t, {m, 14, 14});
    t += 0.002;
  }
  // With everything succeeding, the elected rate must be the highest
  // ideal-goodput one (MCS15).
  EXPECT_EQ(rc.best_mcs(), 15);
}

TEST_F(MinstrelTest, AvoidsFailingHighRates) {
  MinstrelHt rc(cfg_, 3);
  // Channel where anything above MCS2 always fails.
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const int m = rc.select_mcs(t);
    const int ok = (m <= 2) ? 14 : 0;
    rc.report(t, {m, 14, ok});
    t += 0.002;
  }
  EXPECT_LE(rc.best_mcs(), 2);
  EXPECT_GT(rc.probability(1), 0.9);
  EXPECT_LT(rc.probability(7), 0.1);
}

TEST_F(MinstrelTest, SamplesOtherRates) {
  MinstrelHt rc(cfg_, 4);
  // Even with a stable best rate, sampling must occasionally pick others.
  double t = 0.0;
  bool sampled_other = false;
  for (int i = 0; i < 500; ++i) {
    const int m = rc.select_mcs(t);
    if (m != rc.best_mcs()) sampled_other = true;
    rc.report(t, {m, 14, m == 0 ? 14 : 0});
    t += 0.002;
  }
  EXPECT_TRUE(sampled_other);
}

TEST_F(MinstrelTest, EwmaIsSticky) {
  // After learning a good rate, a short failure burst within one update
  // interval must not immediately dethrone it (that staleness is the
  // aerial-channel pathology).
  MinstrelConfig cfg = cfg_;
  cfg.update_interval_s = 0.5;
  MinstrelHt rc(cfg, 5);
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const int m = rc.select_mcs(t);
    rc.report(t, {m, 14, m <= 7 ? 14 : 0});
    t += 0.002;
  }
  const int learned = rc.best_mcs();
  EXPECT_EQ(learned, 7);
  // Burst of failures for 100 ms (within the 500 ms window).
  for (int i = 0; i < 50; ++i) {
    const int m = rc.select_mcs(t);
    rc.report(t, {m, 14, 0});
    t += 0.002;
  }
  EXPECT_EQ(rc.best_mcs(), learned);
}

TEST_F(MinstrelTest, CollapsesToLowestWhenAllFail) {
  MinstrelHt rc(cfg_, 6);
  double t = 0.0;
  // Learn a good state first.
  for (int i = 0; i < 2000; ++i) {
    const int m = rc.select_mcs(t);
    rc.report(t, {m, 14, 14});
    t += 0.002;
  }
  EXPECT_GT(rc.best_mcs(), 0);
  // Then the channel dies. Minstrel's stale EWMA stats cascade through
  // the rarely-sampled rates, so full collapse takes many intervals —
  // give it an extended outage.
  for (int i = 0; i < 30000; ++i) {
    const int m = rc.select_mcs(t);
    rc.report(t, {m, 14, 0});
    t += 0.002;
  }
  EXPECT_EQ(rc.best_mcs(), 0);
}

TEST_F(MinstrelTest, DeterministicForSeed) {
  MinstrelHt a(cfg_, 77), b(cfg_, 77);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const int ma = a.select_mcs(t);
    const int mb = b.select_mcs(t);
    EXPECT_EQ(ma, mb);
    a.report(t, {ma, 14, 7});
    b.report(t, {mb, 14, 7});
    t += 0.002;
  }
}

}  // namespace
}  // namespace skyferry::mac
