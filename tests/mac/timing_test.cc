#include "mac/timing.h"

#include <gtest/gtest.h>

namespace skyferry::mac {
namespace {

TEST(MacTiming, StandardConstants) {
  MacTiming t;
  EXPECT_DOUBLE_EQ(t.slot_s, 9e-6);
  EXPECT_DOUBLE_EQ(t.sifs_s, 16e-6);
  EXPECT_DOUBLE_EQ(t.difs_s(), 34e-6);
  EXPECT_EQ(t.cw_min, 15);
  EXPECT_EQ(t.cw_max, 1023);
}

TEST(MacTiming, ContentionWindowDoubling) {
  MacTiming t;
  EXPECT_EQ(t.cw_for_stage(0), 15);
  EXPECT_EQ(t.cw_for_stage(1), 31);
  EXPECT_EQ(t.cw_for_stage(2), 63);
  EXPECT_EQ(t.cw_for_stage(6), 1023);
  EXPECT_EQ(t.cw_for_stage(10), 1023);  // saturates
}

TEST(MacTiming, MeanBackoffGrowsWithStage) {
  MacTiming t;
  EXPECT_DOUBLE_EQ(t.mean_backoff_s(0), 9e-6 * 7.5);
  EXPECT_GT(t.mean_backoff_s(3), t.mean_backoff_s(1));
}

TEST(BlockAck, ShortButNonZero) {
  const double d = block_ack_duration_s(phy::ChannelWidth::kCw40MHz);
  EXPECT_GT(d, 30e-6);   // at least a preamble
  EXPECT_LT(d, 100e-6);  // but a tiny frame
}

TEST(Ack, ShorterThanBlockAck) {
  EXPECT_LE(ack_duration_s(phy::ChannelWidth::kCw40MHz),
            block_ack_duration_s(phy::ChannelWidth::kCw40MHz));
}

}  // namespace
}  // namespace skyferry::mac
