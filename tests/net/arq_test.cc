#include "net/arq.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::net {
namespace {

/// Drive a full batch through a Bernoulli-lossy channel until complete.
struct LossyRun {
  std::uint64_t transmissions{0};
  std::uint64_t retransmissions{0};
  std::uint64_t acks{0};
  bool completed{false};
};

LossyRun run_lossy(std::uint32_t packets, double loss, std::uint64_t seed,
                   std::uint64_t max_steps = 2000000) {
  ArqConfig cfg;
  ArqSender tx(cfg, packets);
  ArqReceiver rx(cfg, packets);
  sim::Rng rng(seed);
  LossyRun out;
  std::uint64_t steps = 0;
  while (!tx.complete() && steps++ < max_steps) {
    auto p = tx.next_packet(0.0);
    if (!p) {
      // Window stalled: receiver-side ack timer fires.
      tx.on_ack(rx.make_ack());
      ++out.acks;
      continue;
    }
    if (!rng.bernoulli(loss)) {
      if (auto ack = rx.on_packet(*p)) {
        tx.on_ack(*ack);  // acks assumed reliable (tiny frames)
        ++out.acks;
      }
    }
  }
  out.transmissions = tx.transmissions();
  out.retransmissions = tx.retransmissions();
  out.completed = tx.complete() && rx.complete();
  return out;
}

TEST(Arq, LosslessChannelNoRetransmissions) {
  const auto r = run_lossy(1000, 0.0, 1);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.transmissions, 1000u);
  EXPECT_EQ(r.retransmissions, 0u);
}

TEST(Arq, CompletesUnderHeavyLoss) {
  const auto r = run_lossy(2000, 0.4, 2);
  EXPECT_TRUE(r.completed);
  // Expected transmissions ~ n / (1 - loss).
  EXPECT_NEAR(static_cast<double>(r.transmissions), 2000.0 / 0.6, 2000.0 * 0.15);
}

TEST(Arq, RetransmissionCountMatchesLossRate) {
  const auto r = run_lossy(5000, 0.1, 3);
  EXPECT_TRUE(r.completed);
  const double retx_rate =
      static_cast<double>(r.retransmissions) / static_cast<double>(r.transmissions);
  EXPECT_NEAR(retx_rate, 0.1, 0.03);
}

TEST(Arq, WindowLimitsInFlight) {
  ArqConfig cfg;
  cfg.window = 8;
  ArqSender tx(cfg, 100);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(tx.next_packet(0.0).has_value());
  EXPECT_FALSE(tx.next_packet(0.0).has_value());  // window full
  EXPECT_EQ(tx.in_flight(), 8u);
}

TEST(Arq, SelectiveAckReleasesWindow) {
  ArqConfig cfg;
  cfg.window = 4;
  ArqSender tx(cfg, 100);
  for (int i = 0; i < 4; ++i) tx.next_packet(0.0);
  SelectiveAck ack;
  ack.cumulative = 2;  // first two landed
  tx.on_ack(ack);
  EXPECT_TRUE(tx.next_packet(0.0).has_value());
}

TEST(Arq, GapIsRetransmittedFirst) {
  ArqConfig cfg;
  cfg.window = 8;
  ArqSender tx(cfg, 100);
  for (int i = 0; i < 4; ++i) tx.next_packet(0.0);
  // Packet 1 lost: bitmap says 0 received, 1 missing, 2/3 received.
  SelectiveAck ack;
  ack.cumulative = 1;
  ack.window_bitmap = {false, true, true};
  tx.on_ack(ack);
  const auto p = tx.next_packet(0.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 1u);
  EXPECT_EQ(tx.retransmissions(), 1u);
}

TEST(Arq, ReceiverTracksDuplicates) {
  ArqConfig cfg;
  ArqReceiver rx(cfg, 10);
  Packet p;
  p.seq = 0;
  rx.on_packet(p);
  rx.on_packet(p);
  EXPECT_EQ(rx.duplicates(), 1u);
  EXPECT_EQ(rx.received_count(), 1u);
}

TEST(Arq, AckCadence) {
  ArqConfig cfg;
  cfg.ack_every = 4;
  ArqReceiver rx(cfg, 100);
  int acks = 0;
  for (std::uint32_t s = 0; s < 12; ++s) {
    Packet p;
    p.seq = s;
    if (rx.on_packet(p)) ++acks;
  }
  EXPECT_EQ(acks, 3);
}

TEST(Arq, FinalPacketForcesAck) {
  ArqConfig cfg;
  cfg.ack_every = 100;  // cadence would never fire
  ArqReceiver rx(cfg, 3);
  Packet p;
  p.seq = 0;
  EXPECT_FALSE(rx.on_packet(p).has_value());
  p.seq = 1;
  EXPECT_FALSE(rx.on_packet(p).has_value());
  p.seq = 2;
  const auto ack = rx.on_packet(p);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->cumulative, 3u);
  EXPECT_TRUE(rx.complete());
}

TEST(Arq, OutOfRangeSequenceIgnored) {
  ArqConfig cfg;
  ArqReceiver rx(cfg, 5);
  Packet p;
  p.seq = 99;
  EXPECT_FALSE(rx.on_packet(p).has_value());
  EXPECT_EQ(rx.received_count(), 0u);
}

}  // namespace
}  // namespace skyferry::net
