#include "net/flow.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skyferry::net {
namespace {

TEST(BatchSource, PacketizesPaperQuadBatch) {
  // Quad scenario: 145 images x 0.39 MB = 56.55 MB (paper rounds 56.2).
  DataBatch batch{145, 0.39e6};
  BatchSource src(1, batch);
  EXPECT_NEAR(batch.total_mb(), 56.55, 0.01);
  // ceil(0.39e6/1470) = 266 packets per image.
  EXPECT_EQ(src.total_packets(), 266u * 145u);

  PacketQueue q;
  EXPECT_EQ(src.load_into(q, 0.0), src.total_packets());
  EXPECT_EQ(q.size(), src.total_packets());
}

TEST(BatchSource, PacketsCarryImageIndex) {
  DataBatch batch{3, 2940.0};  // 2 packets per image
  BatchSource src(1, batch);
  PacketQueue q;
  src.load_into(q, 1.5);
  EXPECT_EQ(q.size(), 6u);
  int seq = 0;
  while (auto p = q.pop()) {
    EXPECT_EQ(p->seq, static_cast<std::uint32_t>(seq));
    EXPECT_EQ(p->image_index, static_cast<std::uint32_t>(seq / 2));
    EXPECT_DOUBLE_EQ(p->created_t_s, 1.5);
    ++seq;
  }
}

TEST(BatchSource, StopsWhenQueueFull) {
  DataBatch batch{10, 14700.0};
  BatchSource src(1, batch);
  PacketQueue q(1470 * 5);
  EXPECT_EQ(src.load_into(q, 0.0), 5u);
}

TEST(IperfSource, SaturatedKeepsBacklog) {
  IperfSource src(2);
  PacketQueue q;
  src.pump(q, 0.0, 64);
  EXPECT_EQ(q.size(), 64u);
  // Drain some; the next pump refills.
  for (int i = 0; i < 10; ++i) q.pop();
  src.pump(q, 0.1, 64);
  EXPECT_EQ(q.size(), 64u);
}

TEST(IperfSource, PacedRate) {
  const double rate = 8e6;  // 1 MB/s
  IperfSource src(3, 1000, rate);
  PacketQueue q;
  src.pump(q, 0.0, 0);
  const auto before = q.size();
  src.pump(q, 1.0, 0);  // one second: 1000 packets of 1000 B
  EXPECT_EQ(q.size() - before, 1000u);
}

TEST(FlowSink, CountsUniqueAndDuplicates) {
  FlowSink sink;
  Packet p;
  p.seq = 0;
  p.payload_bytes = 100;
  sink.deliver(p, 1.0);
  sink.deliver(p, 2.0);  // duplicate
  p.seq = 1;
  sink.deliver(p, 3.0);
  EXPECT_EQ(sink.unique_packets(), 2u);
  EXPECT_EQ(sink.duplicate_packets(), 1u);
  EXPECT_EQ(sink.bytes(), 200u);
  EXPECT_DOUBLE_EQ(sink.last_delivery_t_s(), 3.0);
}

TEST(FlowSink, CompleteImagesRequiresAllPackets) {
  FlowSink sink;
  Packet p;
  p.payload_bytes = 10;
  // Images of 3 packets each; deliver image0 fully, image1 partially.
  for (std::uint32_t s : {0u, 1u, 2u, 3u, 5u}) {
    p.seq = s;
    sink.deliver(p, 0.0);
  }
  EXPECT_EQ(sink.complete_images(3), 1u);
  p.seq = 4;
  sink.deliver(p, 0.0);
  EXPECT_EQ(sink.complete_images(3), 2u);
}

TEST(FlowSink, EmptySink) {
  FlowSink sink;
  EXPECT_EQ(sink.unique_packets(), 0u);
  EXPECT_EQ(sink.complete_images(10), 0u);
  EXPECT_EQ(sink.highest_seq_plus_one(), 0u);
}

}  // namespace
}  // namespace skyferry::net
