#include "net/meter.h"

#include <gtest/gtest.h>

namespace skyferry::net {
namespace {

TEST(ThroughputMeter, WindowedSamples) {
  ThroughputMeter m(1.0);
  // 1 MB per second for 3 seconds.
  for (int i = 0; i < 30; ++i) m.record(i * 0.1, 100000);
  m.flush();
  ASSERT_GE(m.samples().size(), 2u);
  // Each full window: 1e6 bytes -> 8 Mb/s.
  EXPECT_NEAR(m.samples()[0].mbps, 8.0, 0.9);
  EXPECT_NEAR(m.samples()[1].mbps, 8.0, 0.9);
}

TEST(ThroughputMeter, TotalBytes) {
  ThroughputMeter m(0.5);
  m.record(0.0, 100);
  m.record(0.2, 200);
  EXPECT_EQ(m.total_bytes(), 300u);
}

TEST(ThroughputMeter, FlushClosesPartialWindow) {
  ThroughputMeter m(10.0);
  m.record(0.0, 1000);
  m.record(1.0, 1000);
  EXPECT_TRUE(m.samples().empty());
  m.flush();
  ASSERT_EQ(m.samples().size(), 1u);
  EXPECT_NEAR(m.samples()[0].mbps, 2000.0 * 8.0 / 1.0 / 1e6, 1e-6);
}

TEST(ThroughputMeter, EmptyFlushIsSafe) {
  ThroughputMeter m;
  m.flush();
  EXPECT_TRUE(m.samples().empty());
  EXPECT_DOUBLE_EQ(m.mean_mbps(), 0.0);
}

TEST(ThroughputMeter, MeanOverRun) {
  ThroughputMeter m(0.5);
  // 2 MB over 4 seconds = 4 Mb/s.
  for (int i = 1; i <= 4; ++i) m.record(static_cast<double>(i), 500000);
  EXPECT_NEAR(m.mean_mbps(), 4.0, 0.1);
}

TEST(ThroughputMeter, IdleGapYieldsZeroWindows) {
  ThroughputMeter m(1.0);
  m.record(0.0, 1000);
  m.record(5.0, 1000);  // 4 idle windows in between
  ASSERT_GE(m.samples().size(), 4u);
  // Middle windows must report ~0.
  bool has_zero = false;
  for (const auto& s : m.samples()) {
    if (s.mbps == 0.0) has_zero = true;
  }
  EXPECT_TRUE(has_zero);
}

}  // namespace
}  // namespace skyferry::net
