#include "net/queue.h"

#include <gtest/gtest.h>

namespace skyferry::net {
namespace {

Packet pkt(std::uint32_t seq, std::uint32_t bytes = 1470) {
  Packet p;
  p.seq = seq;
  p.payload_bytes = bytes;
  return p;
}

TEST(PacketQueue, FifoOrder) {
  PacketQueue q;
  q.push(pkt(1));
  q.push(pkt(2));
  q.push(pkt(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop()->seq, 1u);
  EXPECT_EQ(q.pop()->seq, 2u);
  EXPECT_EQ(q.pop()->seq, 3u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(PacketQueue, ByteAccounting) {
  PacketQueue q;
  q.push(pkt(1, 100));
  q.push(pkt(2, 200));
  EXPECT_EQ(q.bytes(), 300u);
  q.pop();
  EXPECT_EQ(q.bytes(), 200u);
  q.clear();
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, CapacityDrops) {
  PacketQueue q(250);
  EXPECT_TRUE(q.push(pkt(1, 100)));
  EXPECT_TRUE(q.push(pkt(2, 100)));
  EXPECT_FALSE(q.push(pkt(3, 100)));  // would exceed 250
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(PacketQueue, UnboundedByDefault) {
  PacketQueue q;
  for (std::uint32_t i = 0; i < 10000; ++i) ASSERT_TRUE(q.push(pkt(i)));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(PacketQueue, FrontPeeks) {
  PacketQueue q;
  EXPECT_EQ(q.front(), nullptr);
  q.push(pkt(42));
  ASSERT_NE(q.front(), nullptr);
  EXPECT_EQ(q.front()->seq, 42u);
  EXPECT_EQ(q.size(), 1u);  // peek does not consume
}

TEST(PacketQueue, PushFrontForRetransmission) {
  PacketQueue q(1470 * 2);
  q.push(pkt(1));
  q.push(pkt(2));
  auto head = q.pop();
  // Retransmission path bypasses the capacity check.
  q.push_front(*head);
  EXPECT_EQ(q.front()->seq, 1u);
  EXPECT_EQ(q.size(), 2u);
}

}  // namespace
}  // namespace skyferry::net
