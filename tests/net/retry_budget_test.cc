#include "net/retry_budget.h"

#include <limits>

#include <gtest/gtest.h>

namespace skyferry::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RetryBudget, AttemptCountGates) {
  RetryBudgetConfig cfg;
  cfg.max_attempts = 2;
  RetryBudget budget(cfg);
  EXPECT_TRUE(budget.allow(0.0, 1.0, 1.0));
  budget.consume();
  EXPECT_TRUE(budget.allow(0.0, 1.0, 1.0));
  budget.consume();
  EXPECT_FALSE(budget.allow(0.0, 1.0, 1.0));
  EXPECT_TRUE(budget.attempts_exhausted());
  EXPECT_EQ(budget.used(), 2);
  EXPECT_EQ(budget.remaining(), 0);
}

TEST(RetryBudget, NoDeadlineAlwaysFitsTheClock) {
  RetryBudget budget;  // deadline defaults to +inf
  EXPECT_TRUE(budget.allow(1e9, 1e6, 1e6));
}

TEST(RetryBudget, DeadlineRejectsAttemptsThatCannotFinish) {
  RetryBudgetConfig cfg;
  cfg.deadline_s = 100.0;
  RetryBudget budget(cfg);
  EXPECT_TRUE(budget.allow(50.0, 10.0, 30.0));    // finishes at 90
  EXPECT_FALSE(budget.allow(50.0, 10.0, 50.0));   // would finish at 110
  EXPECT_FALSE(budget.allow(101.0, 0.0, 0.0));    // already past the deadline
}

TEST(RetryBudget, HeadroomReservesMarginBeforeTheDeadline) {
  RetryBudgetConfig cfg;
  cfg.deadline_s = 100.0;
  cfg.headroom_s = 20.0;
  RetryBudget budget(cfg);
  EXPECT_TRUE(budget.allow(50.0, 10.0, 15.0));   // 75 + 20 <= 100
  EXPECT_FALSE(budget.allow(50.0, 10.0, 30.0));  // 90 + 20 > 100
}

TEST(RetryBudget, UnknownEstimateOnlyGatesOnAttempts) {
  // A non-finite or negative attempt estimate means "unknown": the
  // deadline test cannot price it, so only the attempt count gates.
  RetryBudgetConfig cfg;
  cfg.deadline_s = 100.0;
  RetryBudget budget(cfg);
  EXPECT_TRUE(budget.allow(50.0, 10.0, kInf));
  EXPECT_TRUE(budget.allow(50.0, 10.0, -1.0));
  // ... but a backoff alone that blows the deadline still rejects.
  EXPECT_FALSE(budget.allow(95.0, 10.0, kInf));
}

}  // namespace
}  // namespace skyferry::net
