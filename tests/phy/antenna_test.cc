#include "phy/antenna.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geo/geodesy.h"

namespace skyferry::phy {
namespace {

TEST(DipoleAntenna, PeakInEquatorialPlane) {
  DipoleAntenna ant;
  const Attitude level{};  // antenna axis straight up
  // Horizontal directions get the peak gain.
  EXPECT_NEAR(ant.gain_dbi(level, {1.0, 0.0, 0.0}), 2.15, 0.01);
  EXPECT_NEAR(ant.gain_dbi(level, {0.0, 1.0, 0.0}), 2.15, 0.01);
  EXPECT_NEAR(ant.gain_dbi(level, {-1.0, -1.0, 0.0}), 2.15, 0.01);
}

TEST(DipoleAntenna, NullAlongAxis) {
  DipoleAntenna ant;
  const Attitude level{};
  EXPECT_LT(ant.gain_dbi(level, {0.0, 0.0, 1.0}), -20.0);
  EXPECT_LT(ant.gain_dbi(level, {0.0, 0.0, -1.0}), -20.0);
}

TEST(DipoleAntenna, BankSwingsNullTowardPeer) {
  DipoleAntenna ant;
  // Peer due east at the same altitude. Banking 90 degrees points the
  // antenna axis east: the peer falls into the null.
  const geo::Vec3 to_peer{1.0, 0.0, 0.0};
  const Attitude level{};
  Attitude banked{};
  banked.roll = geo::deg2rad(90.0);
  banked.yaw = 0.0;  // heading north: roll tilts the z-axis east
  EXPECT_GT(ant.gain_dbi(level, to_peer), 0.0);
  EXPECT_LT(ant.gain_dbi(banked, to_peer), -15.0);
}

TEST(DipoleAntenna, ModerateBankLosesModerately) {
  DipoleAntenna ant;
  const geo::Vec3 to_peer{1.0, 0.0, 0.0};
  Attitude banked{};
  banked.roll = geo::deg2rad(27.0);  // the loiter-circle bank (see below)
  const double loss = ant.gain_dbi(Attitude{}, to_peer) - ant.gain_dbi(banked, to_peer);
  EXPECT_GT(loss, 0.2);
  EXPECT_LT(loss, 6.0);
}

TEST(DipoleAntenna, BodyAxisRotation) {
  // Level flight: body z == world up.
  const geo::Vec3 up = DipoleAntenna::body_z_in_world(Attitude{});
  EXPECT_NEAR(up.z, 1.0, 1e-12);
  // 90-degree roll at yaw 0 (heading north): z-axis points east.
  Attitude a{};
  a.roll = geo::deg2rad(90.0);
  const geo::Vec3 east = DipoleAntenna::body_z_in_world(a);
  EXPECT_NEAR(east.x, 1.0, 1e-9);
  EXPECT_NEAR(east.z, 0.0, 1e-9);
}

TEST(LinkAntennaGain, SymmetricLevelLink) {
  DipoleAntenna ant;
  const double g = link_antenna_gain_db(ant, {0.0, 0.0, 80.0}, Attitude{}, {100.0, 0.0, 80.0},
                                        Attitude{});
  EXPECT_NEAR(g, 2.0 * 2.15, 0.05);
}

TEST(LinkAntennaGain, AltitudeOffsetCostsGain) {
  DipoleAntenna ant;
  // The paper separates the airplanes by 20 m of altitude: at short
  // ranges that elevates the peer out of the equatorial plane.
  const double level = link_antenna_gain_db(ant, {0.0, 0.0, 80.0}, Attitude{},
                                            {30.0, 0.0, 80.0}, Attitude{});
  const double offset = link_antenna_gain_db(ant, {0.0, 0.0, 80.0}, Attitude{},
                                             {30.0, 0.0, 100.0}, Attitude{});
  EXPECT_LT(offset, level);
}

TEST(CoordinatedTurn, LoiterBankAngle) {
  // Swinglet loitering: 10 m/s on a 20 m circle -> tan(phi) = 100/196.
  const double bank = coordinated_turn_bank_rad(10.0, 20.0);
  EXPECT_NEAR(bank, std::atan2(100.0, 9.80665 * 20.0), 1e-12);
  EXPECT_NEAR(geo::rad2deg(bank), 27.0, 1.0);
  // Degenerate radius.
  EXPECT_DOUBLE_EQ(coordinated_turn_bank_rad(10.0, 0.0), 0.0);
}

TEST(CoordinatedTurn, FasterOrTighterBanksMore) {
  EXPECT_GT(coordinated_turn_bank_rad(15.0, 20.0), coordinated_turn_bank_rad(10.0, 20.0));
  EXPECT_GT(coordinated_turn_bank_rad(10.0, 20.0), coordinated_turn_bank_rad(10.0, 40.0));
}

}  // namespace
}  // namespace skyferry::phy
