#include "phy/channel.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/quantile.h"

namespace skyferry::phy {
namespace {

TEST(ChannelConfig, PresetsDiffer) {
  const auto air = ChannelConfig::airplane();
  const auto quad = ChannelConfig::quadrocopter();
  EXPECT_GT(air.fading.attitude_event_rate_hz, quad.fading.attitude_event_rate_hz);
  EXPECT_GT(air.fading.shadowing_sigma_db, quad.fading.shadowing_sigma_db);
  const auto indoor = ChannelConfig::indoor();
  EXPECT_LT(indoor.spatial_correlation, quad.spatial_correlation);
}

TEST(LinkChannel, MedianSnrTracksModel) {
  LinkChannel ch(ChannelConfig::airplane(), 1);
  EXPECT_DOUBLE_EQ(ch.median_snr_db(100.0),
                   AerialSnrModel::airplane().median_snr_db(100.0));
}

TEST(LinkChannel, SampledMedianNearModelMedian) {
  LinkChannel ch(ChannelConfig::quadrocopter(), 17);
  std::vector<double> snrs;
  for (double t = 0.0; t < 3000.0; t += 1.1) snrs.push_back(ch.snr_db(t, 60.0, 0.0));
  const double med = stats::median(snrs);
  EXPECT_NEAR(med, ch.median_snr_db(60.0), 3.0);
}

TEST(LinkChannel, AirplaneSpreadExceedsQuad) {
  // The paper's Fig. 5 vs Fig. 7: airplane links show far more variance.
  LinkChannel air(ChannelConfig::airplane(), 3);
  LinkChannel quad(ChannelConfig::quadrocopter(), 3);
  stats::RunningStats sa, sq;
  for (double t = 0.0; t < 2000.0; t += 1.1) {
    sa.add(air.snr_db(t, 60.0, 0.0));
    sq.add(quad.snr_db(t, 60.0, 0.0));
  }
  EXPECT_GT(sa.stddev(), sq.stddev());
}

TEST(LinkChannel, CloserIsBetter) {
  LinkChannel ch(ChannelConfig::airplane(), 5);
  stats::RunningStats near_snr, far_snr;
  for (double t = 0.0; t < 1000.0; t += 1.1) {
    near_snr.add(ch.snr_db(t, 40.0, 0.0));
  }
  LinkChannel ch2(ChannelConfig::airplane(), 5);
  for (double t = 0.0; t < 1000.0; t += 1.1) {
    far_snr.add(ch2.snr_db(t, 240.0, 0.0));
  }
  EXPECT_GT(near_snr.mean(), far_snr.mean() + 5.0);
}

TEST(LinkChannel, DefaultsAre40MHzShortGi) {
  const ChannelConfig cfg = ChannelConfig::airplane();
  EXPECT_EQ(cfg.width, ChannelWidth::kCw40MHz);
  EXPECT_EQ(cfg.gi, GuardInterval::kShort400ns);
}

}  // namespace
}  // namespace skyferry::phy
