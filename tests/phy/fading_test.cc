#include "phy/fading.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace skyferry::phy {
namespace {

TEST(CoherenceTime, ShrinksWithSpeed) {
  const double f = 5.2e9;
  const double t_slow = coherence_time_s(1.0, f);
  const double t_fast = coherence_time_s(20.0, f);
  EXPECT_GT(t_slow, t_fast);
  EXPECT_NEAR(t_slow / t_fast, 20.0, 0.01);
}

TEST(CoherenceTime, ClampedWhenStatic) {
  EXPECT_DOUBLE_EQ(coherence_time_s(0.0, 5.2e9, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(coherence_time_s(1e-9, 5.2e9, 1.0), 1.0);
}

TEST(CoherenceTime, KnownValue) {
  // v=10 m/s at 5.2 GHz: fD = 173.4 Hz, Tc = 0.423/fD ~ 2.44 ms.
  EXPECT_NEAR(coherence_time_s(10.0, 5.2e9), 2.44e-3, 0.05e-3);
}

TEST(FadingProcess, KFactorInterpolatesWithSpeed) {
  FadingConfig cfg;
  cfg.rician_k_hover = 10.0;
  cfg.rician_k_moving = 2.0;
  cfg.speed_k_rolloff = 4.0;
  FadingProcess fp(cfg, sim::Rng(1));
  EXPECT_DOUBLE_EQ(fp.k_factor(0.0), 10.0);
  EXPECT_LT(fp.k_factor(8.0), 6.0);
  EXPECT_GT(fp.k_factor(8.0), 2.0);
  EXPECT_NEAR(fp.k_factor(1000.0), 2.0, 0.1);
}

TEST(FadingProcess, HoverIsLessVariableThanMoving) {
  FadingConfig cfg;
  auto spread = [&](double speed) {
    FadingProcess fp(cfg, sim::Rng(7));
    stats::RunningStats rs;
    for (double t = 0.0; t < 60.0; t += 0.02) rs.add(fp.sample_db(t, speed));
    return rs.stddev();
  };
  EXPECT_LT(spread(0.0), spread(10.0));
}

TEST(FadingProcess, MeanGainNearZeroDb) {
  // Unit-mean-power fading: mean *linear power* gain ~ 1. (The mean of
  // the dB samples is negative by Jensen; check the linear domain.)
  FadingConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.attitude_event_rate_hz = 0.0;
  FadingProcess fp(cfg, sim::Rng(3));
  stats::RunningStats lin;
  for (double t = 0.0; t < 2000.0; t += 1.1) {  // > coherence: fresh draws
    lin.add(std::pow(10.0, fp.sample_db(t, 0.0) / 10.0));
  }
  EXPECT_NEAR(lin.mean(), 1.0, 0.1);
}

TEST(FadingProcess, AttitudeEventsOnlyLose) {
  // Frequent banking events must push the average gain down.
  FadingConfig base;
  base.shadowing_sigma_db = 0.0;
  FadingConfig with = base;
  with.attitude_event_rate_hz = 1.0;
  with.attitude_loss_mean_db = 10.0;
  with.attitude_duration_mean_s = 1.0;
  FadingProcess a(base, sim::Rng(5));
  FadingProcess b(with, sim::Rng(5));
  stats::RunningStats da, db;
  for (double t = 0.0; t < 500.0; t += 1.1) {
    da.add(a.sample_db(t, 0.0));
    db.add(b.sample_db(t, 0.0));
  }
  EXPECT_LT(db.mean(), da.mean() - 2.0);
}

TEST(FadingProcess, AttitudeEventsPersistForSeconds) {
  // Once a banking event starts, the loss must hold for a macroscopic
  // duration — this persistence is what defeats the auto-rate loop.
  FadingConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.rician_k_hover = 1e6;  // freeze fast fading at ~0 dB
  cfg.attitude_event_rate_hz = 5.0;
  cfg.attitude_loss_mean_db = 20.0;
  cfg.attitude_duration_mean_s = 2.0;
  FadingProcess fp(cfg, sim::Rng(21));
  int run_len = 0, max_run = 0;
  for (double t = 0.0; t < 200.0; t += 0.05) {
    if (fp.sample_db(t, 0.0) < -5.0) {
      ++run_len;
      max_run = std::max(max_run, run_len);
    } else {
      run_len = 0;
    }
  }
  // At least one event lasting >= 1 s (20 consecutive 50 ms samples).
  EXPECT_GE(max_run, 20);
}

TEST(FadingProcess, MobilityLossScalesWithSpeed) {
  FadingConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.rician_k_hover = 1e6;
  cfg.rician_k_moving = 1e6;  // isolate the deterministic mobility term
  cfg.mobility_loss_db_per_mps = 0.8;
  FadingProcess fp(cfg, sim::Rng(1));
  const double at0 = fp.sample_db(0.0, 0.0);
  FadingProcess fp2(cfg, sim::Rng(1));
  const double at10 = fp2.sample_db(0.0, 10.0);
  EXPECT_NEAR(at0 - at10, 8.0, 0.5);
}

TEST(FadingProcess, DeterministicForSeed) {
  FadingConfig cfg;
  FadingProcess a(cfg, sim::Rng(9));
  FadingProcess b(cfg, sim::Rng(9));
  for (double t = 0.0; t < 10.0; t += 0.3) {
    EXPECT_EQ(a.sample_db(t, 3.0), b.sample_db(t, 3.0));
  }
}

TEST(FadingProcess, ConstantWithinCoherenceInterval) {
  FadingConfig cfg;
  cfg.shadowing_sigma_db = 0.0;  // isolate the fast component
  FadingProcess fp(cfg, sim::Rng(11));
  const double v = 0.0;  // coherence clamped to 1 s
  const double g0 = fp.sample_db(0.0, v);
  const double g1 = fp.sample_db(0.5, v);  // same coherence interval
  EXPECT_DOUBLE_EQ(g0, g1);
  const double g2 = fp.sample_db(1.5, v);  // next interval: re-drawn
  EXPECT_NE(g0, g2);
}

}  // namespace
}  // namespace skyferry::phy
