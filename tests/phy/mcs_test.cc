#include "phy/mcs.h"

#include <gtest/gtest.h>

namespace skyferry::phy {
namespace {

TEST(McsTable, HasSixteenEntriesWithMatchingIndex) {
  const auto& table = mcs_table();
  ASSERT_EQ(table.size(), 16u);
  for (int i = 0; i < kNumMcs; ++i) {
    EXPECT_EQ(table[static_cast<std::size_t>(i)].index, i);
    EXPECT_EQ(&mcs(i), &table[static_cast<std::size_t>(i)]);
  }
}

TEST(McsTable, StreamCounts) {
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(mcs(i).spatial_streams, 1) << i;
    EXPECT_FALSE(mcs(i).is_sdm());
  }
  for (int i = 8; i < 16; ++i) {
    EXPECT_EQ(mcs(i).spatial_streams, 2) << i;
    EXPECT_TRUE(mcs(i).is_sdm());
  }
}

// Standard 802.11n data rates (Mb/s), cross-checked against IEEE
// 802.11n-2009 Tables 20-30/20-32: {MCS, width, GI, rate}.
struct RateCase {
  int mcs;
  ChannelWidth w;
  GuardInterval gi;
  double mbps;
};

class McsRateTest : public ::testing::TestWithParam<RateCase> {};

TEST_P(McsRateTest, MatchesStandardRate) {
  const RateCase c = GetParam();
  EXPECT_NEAR(mcs(c.mcs).phy_rate_bps(c.w, c.gi) / 1e6, c.mbps, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    StandardRates, McsRateTest,
    ::testing::Values(
        RateCase{0, ChannelWidth::kCw20MHz, GuardInterval::kLong800ns, 6.5},
        RateCase{7, ChannelWidth::kCw20MHz, GuardInterval::kLong800ns, 65.0},
        RateCase{0, ChannelWidth::kCw20MHz, GuardInterval::kShort400ns, 7.2222},
        RateCase{7, ChannelWidth::kCw20MHz, GuardInterval::kShort400ns, 72.2222},
        RateCase{0, ChannelWidth::kCw40MHz, GuardInterval::kLong800ns, 13.5},
        RateCase{7, ChannelWidth::kCw40MHz, GuardInterval::kLong800ns, 135.0},
        RateCase{0, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 15.0},
        RateCase{1, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 30.0},
        RateCase{2, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 45.0},
        RateCase{3, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 60.0},
        RateCase{4, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 90.0},
        RateCase{5, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 120.0},
        RateCase{6, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 135.0},
        RateCase{7, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 150.0},
        RateCase{8, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 30.0},
        RateCase{15, ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, 300.0}));

TEST(Mcs, TwoStreamDoublesRate) {
  for (int i = 0; i < 8; ++i) {
    const double one = mcs(i).phy_rate_bps(ChannelWidth::kCw40MHz, GuardInterval::kShort400ns);
    const double two = mcs(i + 8).phy_rate_bps(ChannelWidth::kCw40MHz, GuardInterval::kShort400ns);
    EXPECT_NEAR(two, 2.0 * one, 1.0);
  }
}

TEST(Preamble, GrowsWithStreams) {
  EXPECT_NEAR(preamble_duration_s(1), 36e-6, 1e-9);
  EXPECT_NEAR(preamble_duration_s(2), 40e-6, 1e-9);
}

TEST(FrameDuration, IncludesPreambleAndRoundsSymbols) {
  // 1 bit payload still costs preamble + at least one symbol.
  const double d = frame_duration_s(mcs(0), ChannelWidth::kCw20MHz, GuardInterval::kLong800ns, 1);
  EXPECT_GE(d, 36e-6 + 4e-6);
  // Duration is monotone in size.
  const double big =
      frame_duration_s(mcs(0), ChannelWidth::kCw20MHz, GuardInterval::kLong800ns, 12000);
  EXPECT_GT(big, d);
}

TEST(FrameDuration, HigherMcsIsFaster) {
  const int bits = 8 * 1500 * 14;  // a full aggregate
  const double slow =
      frame_duration_s(mcs(0), ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, bits);
  const double fast =
      frame_duration_s(mcs(7), ChannelWidth::kCw40MHz, GuardInterval::kShort400ns, bits);
  EXPECT_GT(slow, fast);
  // Roughly the rate ratio (10x) once the preamble is amortized.
  EXPECT_NEAR(slow / fast, 9.5, 1.0);
}

TEST(Modulation, BitsPerSymbol) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6);
}

TEST(Modulation, Names) {
  EXPECT_EQ(to_string(Modulation::kBpsk), "BPSK");
  EXPECT_EQ(to_string(Modulation::kQam64), "64-QAM");
}

}  // namespace
}  // namespace skyferry::phy
