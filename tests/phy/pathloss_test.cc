#include "phy/pathloss.h"

#include <gtest/gtest.h>

namespace skyferry::phy {
namespace {

TEST(FreeSpace, KnownValueAt5GHz) {
  // FSPL at 100 m, 5.2 GHz: 32.45 + 20log10(5200) + 20log10(0.1) ~ 86.77 dB.
  EXPECT_NEAR(free_space_path_loss_db(100.0, 5.2e9), 86.77, 0.1);
}

TEST(FreeSpace, SixDbPerOctave) {
  const double l1 = free_space_path_loss_db(50.0, 5.2e9);
  const double l2 = free_space_path_loss_db(100.0, 5.2e9);
  EXPECT_NEAR(l2 - l1, 6.02, 0.01);
}

TEST(FreeSpace, ClampsTinyDistance) {
  EXPECT_LT(free_space_path_loss_db(0.0, 5.2e9), free_space_path_loss_db(1.0, 5.2e9));
}

TEST(LogDistance, MatchesFreeSpaceWithExponentTwo) {
  const auto pl = LogDistancePathLoss::from_freespace_ref(2.0, 5.2e9);
  for (double d : {10.0, 100.0, 1000.0}) {
    EXPECT_NEAR(pl.loss_db(d), free_space_path_loss_db(d, 5.2e9), 0.01) << d;
  }
}

TEST(LogDistance, HigherExponentLosesMore) {
  const auto pl2 = LogDistancePathLoss::from_freespace_ref(2.0, 5.2e9);
  const auto pl3 = LogDistancePathLoss::from_freespace_ref(3.0, 5.2e9);
  EXPECT_GT(pl3.loss_db(100.0), pl2.loss_db(100.0));
  EXPECT_NEAR(pl3.loss_db(10.0) - pl2.loss_db(10.0), 10.0, 0.01);  // 10(n2-n1)log10(10)
}

TEST(LinkBudget, NoiseFloor40MHz) {
  LinkBudget lb;
  // -174 + 10log10(40e6) + 6 = -91.98 dBm.
  EXPECT_NEAR(lb.noise_floor_dbm(), -92.0, 0.1);
}

TEST(AerialSnrModel, MonotoneDecreasing) {
  const auto m = AerialSnrModel::airplane();
  double prev = m.median_snr_db(20.0);
  for (double d = 40.0; d <= 400.0; d += 20.0) {
    const double snr = m.median_snr_db(d);
    EXPECT_LT(snr, prev);
    prev = snr;
  }
}

TEST(AerialSnrModel, QuadDecaysFasterThanAirplane) {
  // The quad link (10 m altitude, ground interaction) dies much sooner
  // than the airplane link, mirroring the paper's fits (range ~124 m vs
  // ~450 m).
  const auto air = AerialSnrModel::airplane();
  const auto quad = AerialSnrModel::quadrocopter();
  const double air_drop = air.median_snr_db(20.0) - air.median_snr_db(80.0);
  const double quad_drop = quad.median_snr_db(20.0) - quad.median_snr_db(80.0);
  EXPECT_GT(quad_drop, air_drop);
  EXPECT_LT(quad.median_snr_db(150.0), air.median_snr_db(150.0));
}

TEST(AerialSnrModel, ClampsBelowOneMeter) {
  const auto m = AerialSnrModel::airplane();
  EXPECT_DOUBLE_EQ(m.median_snr_db(0.1), m.median_snr_db(1.0));
}

TEST(AerialSnrModel, CalibratedRangesAreSane) {
  // Airplane link: marginal (near 0 dB median) out at ~300 m where the
  // paper still measures a trickle, moderate SNR at 20 m (the aerial
  // links are far below the indoor regime even up close).
  const auto air = AerialSnrModel::airplane();
  EXPECT_GT(air.median_snr_db(300.0), -3.0);
  EXPECT_LT(air.median_snr_db(300.0), 5.0);
  EXPECT_GT(air.median_snr_db(20.0), 10.0);
  EXPECT_LT(air.median_snr_db(20.0), 22.0);
  // Quad link dies somewhere beyond ~120 m (paper fit hits zero there).
  const auto quad = AerialSnrModel::quadrocopter();
  EXPECT_LT(quad.median_snr_db(150.0), 2.0);
  EXPECT_GT(quad.median_snr_db(20.0), 8.0);
  EXPECT_LT(quad.median_snr_db(20.0), 22.0);
}

}  // namespace
}  // namespace skyferry::phy
