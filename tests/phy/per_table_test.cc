#include "phy/per_table.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "phy/mcs.h"

namespace skyferry::phy {
namespace {

constexpr int kMpduBits = 1540 * 8;

class PerTableAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(PerTableAccuracyTest, ExactAtEveryKnot) {
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(GetParam());
  const PerTable tab(em, m, kMpduBits);
  for (int i = 0; i < tab.knots(); ++i) {
    const double snr = tab.knot_snr_db(i);
    // Bit-exact: the knot values ARE the analytic model.
    EXPECT_EQ(tab.per(snr), em.packet_error_rate(m, snr, kMpduBits)) << "knot " << i;
  }
}

TEST_P(PerTableAccuracyTest, WithinAbsoluteToleranceEverywhere) {
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(GetParam());
  const PerTableConfig cfg;
  const PerTable tab(em, m, kMpduBits, cfg);
  // Dense off-knot sweep: 16 probes per grid step across the full grid.
  double max_err = 0.0;
  for (double snr = cfg.snr_min_db; snr <= cfg.snr_max_db; snr += cfg.step_db / 16.0) {
    const double err = std::abs(tab.per(snr) - em.packet_error_rate(m, snr, kMpduBits));
    max_err = std::max(max_err, err);
  }
  EXPECT_LE(max_err, 1e-4);  // the documented accuracy contract
}

TEST_P(PerTableAccuracyTest, MonotoneNonIncreasingInSnr) {
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(GetParam());
  const PerTable tab(em, m, kMpduBits);
  double prev = 1.0;
  for (double snr = -14.0; snr <= 50.0; snr += 0.03) {
    const double p = tab.per(snr);
    EXPECT_LE(p, prev + 1e-12) << "snr=" << snr;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMcs, PerTableAccuracyTest, ::testing::Range(0, kNumMcs));

TEST(PerTable, ClampsOutsideGrid) {
  const ErrorModel em({}, 0.9);
  const PerTableConfig cfg;
  const PerTable tab(em, mcs(3), kMpduBits, cfg);
  EXPECT_EQ(tab.per(cfg.snr_min_db - 50.0), tab.per(cfg.snr_min_db));
  EXPECT_EQ(tab.per(cfg.snr_max_db + 50.0), tab.per(cfg.snr_max_db));
  // The default grid edges sit in the saturated regions for every MCS.
  EXPECT_EQ(tab.per(cfg.snr_min_db), 1.0);
  EXPECT_EQ(tab.per(cfg.snr_max_db), 0.0);
}

TEST(PerTable, MarginalMatchesDenseNumericIntegration) {
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(1);
  const PerTable tab(em, m, kMpduBits);
  const double sigma = 2.0;
  for (double snr = 0.0; snr <= 20.0; snr += 1.0) {
    // Riemann sum of E[per(snr + sigma*Z)] over +-6 sigma.
    double num = 0.0, wsum = 0.0;
    for (double z = -6.0; z <= 6.0; z += 0.01) {
      const double w = std::exp(-0.5 * z * z);
      num += w * em.packet_error_rate(m, snr + sigma * z, kMpduBits);
      wsum += w;
    }
    num /= wsum;
    // The 31-node Gauss-Hermite rule truncates at ~1e-3 worst-case on
    // the steep mid-waterfall sigmoid; end-to-end accuracy is gated by
    // the fidelity-equivalence tests in tests/mac/link_test.cc.
    EXPECT_NEAR(tab.marginal_per(snr, sigma), num, 2.5e-3) << "snr=" << snr;
  }
}

TEST(PerTable, MarginalZeroSigmaIsPlainLookup) {
  const ErrorModel em({}, 0.9);
  const PerTable tab(em, mcs(2), kMpduBits);
  for (double snr = -5.0; snr <= 30.0; snr += 0.7) {
    EXPECT_EQ(tab.marginal_per(snr, 0.0), tab.per(snr));
  }
}

TEST(PerTable, MarginalizedBuildMatchesRuntimeQuadrature) {
  // A table built with jitter_sigma_db answers per() as the plain
  // table's marginal_per() — same quadrature, folded into the knots.
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(1);
  const double sigma = 2.0;
  const PerTable plain(em, m, kMpduBits);
  const PerTable marg(em, m, kMpduBits, {}, sigma);
  for (int i = 0; i < marg.knots(); ++i) {
    const double snr = marg.knot_snr_db(i);
    EXPECT_NEAR(marg.per(snr), plain.marginal_per(snr, sigma), 1e-12) << "knot " << i;
  }
  // Off-knot queries lerp the smooth marginal: small absolute error.
  for (double snr = -5.0; snr <= 25.0; snr += 0.0317) {
    EXPECT_NEAR(marg.per(snr), plain.marginal_per(snr, sigma), 2e-4) << "snr=" << snr;
  }
}

TEST(PerTable, MarginalizedIsMonotoneNonIncreasing) {
  const ErrorModel em({}, 0.9);
  const PerTable marg(em, mcs(4), kMpduBits, {}, 2.0);
  double prev = 1.0;
  for (double snr = -14.0; snr <= 50.0; snr += 0.05) {
    const double p = marg.per(snr);
    EXPECT_LE(p, prev + 1e-12) << "snr=" << snr;
    prev = p;
  }
}

TEST(PerTableCache, BuildsLazilyAndReuses) {
  const ErrorModel em({}, 0.9);
  PerTableCache cache(em);
  EXPECT_EQ(cache.size(), 0u);
  const PerTable& a = cache.table(mcs(3), kMpduBits);
  EXPECT_EQ(cache.size(), 1u);
  const PerTable& b = cache.table(mcs(3), kMpduBits);
  EXPECT_EQ(&a, &b);  // same table, not a rebuild
  EXPECT_EQ(cache.size(), 1u);
  std::ignore = cache.table(mcs(3), 256);             // different frame size class
  std::ignore = cache.table(mcs(3), kMpduBits, 2.0);  // jitter-marginalized variant
  std::ignore = cache.table(mcs(5), kMpduBits);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(PerTableCache, TableMatchesDirectConstruction) {
  const ErrorModel em({}, 0.85);
  PerTableCache cache(em);
  const PerTable direct(em, mcs(2), kMpduBits);
  const PerTable& cached = cache.table(mcs(2), kMpduBits);
  for (double snr = -10.0; snr <= 40.0; snr += 0.4) {
    EXPECT_EQ(cached.per(snr), direct.per(snr));
  }
}

}  // namespace
}  // namespace skyferry::phy
