#include "phy/per.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace skyferry::phy {
namespace {

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.1587, 1e-3);
  EXPECT_NEAR(q_function(3.0), 0.00135, 1e-4);
  EXPECT_NEAR(q_function(-1.0), 0.8413, 1e-3);
}

TEST(UncodedBer, DecreasesWithSnr) {
  for (auto m : {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16, Modulation::kQam64}) {
    double prev = 1.0;
    for (double snr_db = -5.0; snr_db <= 30.0; snr_db += 1.0) {
      const double s = std::pow(10.0, snr_db / 10.0);
      const double ber = uncoded_ber(m, s);
      EXPECT_LE(ber, prev + 1e-15);
      EXPECT_GE(ber, 0.0);
      EXPECT_LE(ber, 0.5);
      prev = ber;
    }
  }
}

TEST(UncodedBer, HigherOrderModulationIsWorse) {
  const double s = std::pow(10.0, 12.0 / 10.0);  // 12 dB
  EXPECT_LT(uncoded_ber(Modulation::kBpsk, s), uncoded_ber(Modulation::kQpsk, s));
  EXPECT_LT(uncoded_ber(Modulation::kQpsk, s), uncoded_ber(Modulation::kQam16, s));
  EXPECT_LT(uncoded_ber(Modulation::kQam16, s), uncoded_ber(Modulation::kQam64, s));
}

TEST(UncodedBer, BpskKnownPoint) {
  // BPSK at 9.6 dB Eb/N0: BER ~ 1e-5 (classic waterfall point).
  const double s = std::pow(10.0, 9.6 / 10.0);
  const double ber = uncoded_ber(Modulation::kBpsk, s);
  EXPECT_GT(ber, 1e-6);
  EXPECT_LT(ber, 1e-4);
}

class PerMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(PerMonotonicityTest, PerDecreasesWithSnr) {
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(GetParam());
  const int bits = 1540 * 8;
  double prev = 1.0;
  for (double snr = -10.0; snr <= 45.0; snr += 0.5) {
    const double per = em.packet_error_rate(m, snr, bits);
    EXPECT_LE(per, prev + 1e-12) << "snr=" << snr;
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    prev = per;
  }
  // Extremes pin to ~1 and ~0.
  EXPECT_GT(em.packet_error_rate(m, -10.0, bits), 0.99);
  EXPECT_LT(em.packet_error_rate(m, 45.0, bits), 0.05);
}

TEST_P(PerMonotonicityTest, PerNonDecreasingInBits) {
  // Longer frames can only fail more: PER = 1 - (1-BER)^bits.
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(GetParam());
  for (double snr = -10.0; snr <= 45.0; snr += 1.5) {
    double prev = 0.0;
    for (int bits = 256; bits <= 16384; bits *= 2) {
      const double per = em.packet_error_rate(m, snr, bits);
      EXPECT_GE(per, prev - 1e-12) << "snr=" << snr << " bits=" << bits;
      prev = per;
    }
  }
}

TEST_P(PerMonotonicityTest, SaturationEarlyOutMatchesLogDomainFormula) {
  // The BER≈0 / BER≈0.5 early-outs must return what the full
  // pow/erfc/log1p chain would: rebuild the PER from the (un-shortcut)
  // public BER and compare across the whole SNR range, early-out
  // regions included.
  const ErrorModel em({}, 0.9);
  const McsInfo& m = mcs(GetParam());
  const int bits = 1540 * 8;
  for (double snr = -20.0; snr <= 50.0; snr += 0.05) {
    const double ber = em.bit_error_rate(m, snr);
    const double ref = (ber <= 0.0) ? 0.0
                                    : std::clamp(1.0 - std::exp(bits * std::log1p(-ber)), 0.0, 1.0);
    EXPECT_NEAR(em.packet_error_rate(m, snr, bits), ref, 1e-12) << "snr=" << snr;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMcs, PerMonotonicityTest, ::testing::Range(0, 16));

TEST(ErrorModel, HigherMcsNeedsMoreSnr) {
  const ErrorModel em({}, 0.9);
  const int bits = 1540 * 8;
  // SNR where PER crosses 0.5 should increase with MCS 0..7.
  auto snr_at_half = [&](int mcs_index) {
    for (double snr = -10.0; snr <= 50.0; snr += 0.1) {
      if (em.packet_error_rate(mcs(mcs_index), snr, bits) < 0.5) return snr;
    }
    return 50.0;
  };
  double prev = snr_at_half(0);
  for (int i = 1; i < 8; ++i) {
    const double cur = snr_at_half(i);
    EXPECT_GE(cur, prev - 0.2) << "mcs" << i;
    prev = cur;
  }
}

TEST(ErrorModel, StbcBeatsSdmInCorrelatedChannel) {
  // MCS1 (single-stream QPSK 1/2 + STBC) vs MCS8 (two-stream BPSK 1/2):
  // same PHY rate; in a rank-poor aerial channel STBC must win.
  const ErrorModel em({}, 0.9);
  const int bits = 1540 * 8;
  for (double snr = 5.0; snr <= 25.0; snr += 5.0) {
    EXPECT_LE(em.packet_error_rate(mcs(1), snr, bits),
              em.packet_error_rate(mcs(8), snr, bits))
        << snr;
  }
}

TEST(ErrorModel, SdmPenaltyShrinksWithScattering) {
  const ErrorModel corr({}, 0.95);
  const ErrorModel rich({}, 0.1);
  const int bits = 1540 * 8;
  EXPECT_GT(corr.packet_error_rate(mcs(8), 18.0, bits),
            rich.packet_error_rate(mcs(8), 18.0, bits));
  // Single-stream rates are unaffected by correlation.
  EXPECT_DOUBLE_EQ(corr.packet_error_rate(mcs(3), 18.0, bits),
                   rich.packet_error_rate(mcs(3), 18.0, bits));
}

TEST(ErrorModel, LongerPacketsFailMore) {
  const ErrorModel em({}, 0.9);
  EXPECT_GT(em.packet_error_rate(mcs(3), 14.0, 12000 * 8),
            em.packet_error_rate(mcs(3), 14.0, 100 * 8));
}

TEST(ErrorModel, SpatialCorrelationClamped) {
  ErrorModel em({}, 5.0);
  EXPECT_DOUBLE_EQ(em.spatial_correlation(), 1.0);
  em.set_spatial_correlation(-2.0);
  EXPECT_DOUBLE_EQ(em.spatial_correlation(), 0.0);
}

TEST(ErrorModel, EffectiveSnrReflectsGains) {
  const ErrorModel em({}, 1.0);
  // Single stream: + coding gain + STBC gain.
  EXPECT_GT(em.effective_snr_db(mcs(0), 10.0), 10.0);
  // SDM at full correlation: heavy penalty.
  EXPECT_LT(em.effective_snr_db(mcs(8), 10.0), 10.0);
}

}  // namespace
}  // namespace skyferry::phy
