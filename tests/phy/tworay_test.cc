#include "phy/tworay.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "phy/pathloss.h"

namespace skyferry::phy {
namespace {

TEST(TwoRay, BreakpointFormula) {
  TwoRayGround tr;
  // 4*pi*h1*h2/lambda at 5.2 GHz (lambda ~ 5.77 cm).
  EXPECT_NEAR(tr.breakpoint_distance_m(10.0, 10.0), 4.0 * M_PI * 100.0 / 0.05765, 30.0);
}

TEST(TwoRay, QuadAltitudeBreakpointInsideMeasuredRange) {
  // At the quads' 10 m altitude the breakpoint (~21.8 km!? no — with
  // h1=h2=10 m it's ~21.8 km/1000... compute: 4*pi*100/0.0577 ~ 21.8 km)
  // — the paper's quad range sits in the oscillatory near region, while
  // an effective reflection-affected decay shows up through the ripple.
  TwoRayGround tr;
  const double bp_quad = tr.breakpoint_distance_m(10.0, 10.0);
  const double bp_air = tr.breakpoint_distance_m(90.0, 90.0);
  EXPECT_GT(bp_air, bp_quad);  // higher platforms: reflection matters later
}

TEST(TwoRay, FarFieldFollowsFourthPowerLaw) {
  TwoRayGround tr({5.2e9, 1.0});
  const double h = 2.0;  // low antennas so the far field is reachable
  const double bp = tr.breakpoint_distance_m(h, h);
  const double l1 = tr.path_loss_db(4.0 * bp, h, h);
  const double l2 = tr.path_loss_db(8.0 * bp, h, h);
  // d^4: 12 dB per distance doubling.
  EXPECT_NEAR(l2 - l1, 12.0, 1.0);
}

TEST(TwoRay, NearFieldOscillatesAroundFreeSpace) {
  TwoRayGround tr;
  const double h = 10.0;
  // Constructive and destructive interference: gain relative to free
  // space should both exceed and undercut 0 dB somewhere near in.
  bool above = false, below = false;
  for (double d = 20.0; d <= 200.0; d += 1.0) {
    const double rel = -tr.path_loss_db(d, h, h) + free_space_path_loss_db(d, 5.2e9);
    if (rel > 1.0) above = true;
    if (rel < -1.0) below = true;
  }
  EXPECT_TRUE(above);
  EXPECT_TRUE(below);
}

TEST(TwoRay, LossGrowsWithDistanceOnAverage) {
  TwoRayGround tr;
  // Average loss over windows must increase with distance.
  auto avg_loss = [&](double lo, double hi) {
    double sum = 0.0;
    int n = 0;
    for (double d = lo; d < hi; d += 2.0) {
      sum += tr.path_loss_db(d, 10.0, 10.0);
      ++n;
    }
    return sum / n;
  };
  EXPECT_LT(avg_loss(20.0, 60.0), avg_loss(200.0, 240.0));
}

TEST(TwoRay, HigherAltitudeLessGroundEffect) {
  // At the airplanes' altitude the two-ray loss stays closer to free
  // space over the measured range than at the quads' altitude.
  TwoRayGround tr;
  double worst_air = 0.0, worst_quad = 0.0;
  for (double d = 20.0; d <= 120.0; d += 2.0) {
    const double fs = free_space_path_loss_db(d, 5.2e9);
    worst_air = std::max(worst_air, tr.path_loss_db(d, 90.0, 90.0) - fs);
    worst_quad = std::max(worst_quad, tr.path_loss_db(d, 10.0, 10.0) - fs);
  }
  EXPECT_LE(worst_air, worst_quad + 1e-9);
}

}  // namespace
}  // namespace skyferry::phy
