#include "policy/compiler.h"

#include <gtest/gtest.h>

#include "check/expect.h"
#include "core/delay.h"
#include "core/throughput_model.h"
#include "core/utility.h"
#include "uav/failure.h"

namespace skyferry::policy {
namespace {

// Small but non-trivial compile domain centered on the airplane
// scenario. The mdata axis mirrors the production default's per-cell
// spacing (the d* surface is most curved along data size), so the
// interpolation-accuracy contract below matches the production gate.
CompilerConfig small_config() {
  CompilerConfig cfg;
  cfg.d0 = {100.0, 400.0, 7};
  cfg.speed = {3.0, 20.0, 8};
  cfg.mdata = {5e6, 6e7, 12, true};
  cfg.rho = {1e-4, 5e-3, 9, true};
  cfg.threads = 2;
  return cfg;
}

TEST(Compiler, KnotsAreExactOptimizerOutputs) {
  const CompilerConfig cfg = small_config();
  const PolicyTable table = Compiler(cfg).compile();
  const core::PaperLogThroughput model(cfg.model.a, cfg.model.b, cfg.model.name,
                                       cfg.model.scale, cfg.model.min_distance_m);
  // Spot-check a spread of knots: each must be the exact optimize()
  // answer at that grid point, not an approximation of it.
  const int checks[][4] = {{0, 0, 0, 0}, {6, 4, 4, 8}, {3, 2, 2, 4}, {1, 3, 0, 7}, {5, 0, 4, 2}};
  for (const auto& c : checks) {
    const double d0 = table.axes()[0].knot(c[0]);
    const double v = table.axes()[1].knot(c[1]);
    const double mdata = table.axes()[2].knot(c[2]);
    const double rho = table.axes()[3].knot(c[3]);
    const uav::FailureModel failure(rho);
    const core::DeliveryParams params{d0, v, mdata, cfg.min_distance_m};
    const core::CommDelayModel delay(model, params);
    const core::UtilityFunction u(delay, failure);
    const core::OptimizeResult r = core::optimize(u, cfg.optimize);
    const std::size_t flat = table.index(c[0], c[1], c[2], c[3]);
    EXPECT_EQ(table.d_opt_at(flat), r.d_opt_m) << d0 << " " << v << " " << mdata << " " << rho;
    EXPECT_EQ(table.utility_at(flat), r.utility);
  }
}

TEST(Compiler, DeterministicAcrossThreadCounts) {
  CompilerConfig cfg = small_config();
  cfg.d0.n = 3;
  cfg.rho.n = 5;
  cfg.threads = 1;
  const PolicyTable serial = Compiler(cfg).compile();
  cfg.threads = 4;
  const PolicyTable parallel = Compiler(cfg).compile();
  ASSERT_EQ(serial.knots(), parallel.knots());
  for (std::size_t k = 0; k < serial.knots(); ++k) {
    EXPECT_EQ(serial.d_opt_at(k), parallel.d_opt_at(k)) << k;
    EXPECT_EQ(serial.utility_at(k), parallel.utility_at(k)) << k;
  }
  EXPECT_EQ(serial.checksum(), parallel.checksum());
}

// The machine-checked accuracy contract (ISSUE acceptance), an
// either-or guarantee over a random sample of the compiled domain:
// every served decision is within 35 m of the exact d* OR sits on the
// utility plateau (regret <= ValidationReport::kPlateauRegret, where
// the argmax itself is ill-conditioned — far-apart distances earn
// near-equal utility), and the relative utility regret — the primary,
// second-order contract — never exceeds 2% anywhere. Boundary
// classification agrees with the exact solver away from knife edges.
// Expressed through check::Expect so each bound is a pinned,
// reportable claim, not a bare assert.
TEST(Compiler, ValidationBoundsInterpolationError) {
  const PolicyTable table = Compiler(small_config()).compile();
  const ValidationReport rep = Compiler::validate(table, 300, /*seed=*/7);
  ASSERT_EQ(rep.samples, 300);

  const check::CheckResult d_err =
      check::Expect("policy_table_max_d_err_m", 0.0, check::Tolerance::absolute(35.0))
          .check(rep.max_d_err_m);
  EXPECT_TRUE(d_err.ok) << d_err.message;

  // Served utility regret is second-order: the service re-evaluates U
  // exactly at every candidate, and U is stationary at the optimum.
  const check::CheckResult u_err =
      check::Expect("policy_table_max_utility_rel_err", 0.0, check::Tolerance::absolute(0.02))
          .check(rep.max_utility_rel_err);
  EXPECT_TRUE(u_err.ok) << u_err.message;

  const check::CheckResult agree =
      check::Expect("policy_table_boundary_mismatches", 0.0, check::Tolerance::exact())
          .check(rep.boundary_mismatches);
  EXPECT_TRUE(agree.ok) << agree.message;
}

}  // namespace
}  // namespace skyferry::policy
