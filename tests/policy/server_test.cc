#include "policy/server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/throughput_model.h"

namespace skyferry::policy {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(LineServer, AnswersQueriesAndEchoesTheExactDecision) {
  const auto model = core::PaperLogThroughput::airplane();
  const DecisionService service(model);
  ServerOptions opt;
  opt.banner = false;
  const LineServer server(service, opt);

  std::istringstream in("300 10 28e6 2e-3\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 1u);

  Query q;
  q.d0_m = 300.0;
  q.speed_mps = 10.0;
  q.mdata_bytes = 28e6;
  q.rho_per_m = 2e-3;
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], format_decision(service.decide_one(q)));
  EXPECT_EQ(lines[0].rfind("ok ", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find(" exact"), std::string::npos);
}

TEST(LineServer, OptionalMinDistanceOverridesTheTemplate) {
  const auto model = core::PaperLogThroughput::airplane();
  const DecisionService service(model);
  ServerOptions opt;
  opt.banner = false;
  const LineServer server(service, opt);
  std::istringstream in("300 10 28e6 2e-3 40\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 1u);
  Query q;
  q.d0_m = 300.0;
  q.speed_mps = 10.0;
  q.mdata_bytes = 28e6;
  q.rho_per_m = 2e-3;
  q.min_distance_m = 40.0;
  EXPECT_EQ(lines_of(out.str())[0], format_decision(service.decide_one(q)));
}

TEST(LineServer, BatchFramingFlushesOnEndInArrivalOrder) {
  const auto model = core::PaperLogThroughput::airplane();
  const DecisionService service(model);
  ServerOptions opt;
  opt.banner = false;
  const LineServer server(service, opt);

  std::istringstream in(
      "begin\n"
      "300 10 28e6 1e-3\n"
      "300 10 28e6 5e-3\n"
      "end\n"
      "quit\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 2u);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  Query q;
  q.d0_m = 300.0;
  q.speed_mps = 10.0;
  q.mdata_bytes = 28e6;
  q.rho_per_m = 1e-3;
  EXPECT_EQ(lines[0], format_decision(service.decide_one(q)));
  q.rho_per_m = 5e-3;
  EXPECT_EQ(lines[1], format_decision(service.decide_one(q)));
}

TEST(LineServer, ProtocolErrorsAreReportedNotFatal) {
  const auto model = core::PaperLogThroughput::airplane();
  const DecisionService service(model);
  ServerOptions opt;
  opt.banner = false;
  const LineServer server(service, opt);

  std::istringstream in(
      "not a query\n"
      "300 10 28e6 2e-3 40 extra\n"
      "end\n"
      "begin\n"
      "begin\n"
      "end\n"
      "# a comment\n"
      "\n"
      "300 10 28e6 2e-3\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 1u);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0].rfind("err ", 0), 0u) << lines[0];       // unparsable
  EXPECT_NE(lines[1].find("trailing garbage"), std::string::npos);
  EXPECT_EQ(lines[2], "err no open batch");
  EXPECT_EQ(lines[3], "err already batching");
  // lines[4] is the good query's "ok ..." (the empty batch flushed
  // nothing), served after every error.
  EXPECT_EQ(lines[4].rfind("ok ", 0), 0u) << lines[4];
}

TEST(LineServer, StatsAndQuitAndEofInsideBatch) {
  const auto model = core::PaperLogThroughput::airplane();
  const DecisionService service(model);
  ServerOptions opt;
  opt.banner = false;
  const LineServer server(service, opt);

  std::istringstream in(
      "300 10 28e6 2e-3\n"
      "stats\n"
      "begin\n"
      "300 10 28e6 1e-3\n");  // EOF with an open batch
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 1u);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "stats table=0 exact=1");
  EXPECT_NE(lines[2].find("eof inside open batch (1 queries dropped)"), std::string::npos);
}

TEST(LineServer, BannerAdvertisesTableState) {
  const auto model = core::PaperLogThroughput::airplane();
  const DecisionService service(model);
  const LineServer server(service);  // banner on by default
  std::istringstream in("quit\n");
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 0u);
  EXPECT_NE(out.str().find("# skyferry_decide ready (table=no)"), std::string::npos);
}

}  // namespace
}  // namespace skyferry::policy
