#include "policy/service.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/expect.h"
#include "core/delay.h"
#include "core/joint_optimizer.h"
#include "core/planner.h"
#include "core/scenario.h"
#include "core/throughput_model.h"
#include "core/utility.h"
#include "policy/compiler.h"
#include "policy/mission_objective.h"
#include "sim/rng.h"
#include "uav/failure.h"

namespace skyferry::policy {
namespace {

Query airplane_query(double rho = 2e-3) {
  const auto scen = core::Scenario::airplane();
  Query q;
  q.d0_m = scen.d0_m;
  q.speed_mps = scen.delivery_params().speed_mps;
  q.mdata_bytes = scen.mdata_bytes;
  q.min_distance_m = scen.delivery_params().min_distance_m;
  q.rho_per_m = rho;
  return q;
}

CompilerConfig small_config() {
  CompilerConfig cfg;
  cfg.d0 = {100.0, 400.0, 16};
  cfg.speed = {3.0, 20.0, 8};
  // The d* surface is most curved along data size (it moves the
  // interior/transmit-now tie), so the test grid mirrors the production
  // default's per-cell mdata spacing to hit the same accuracy contract.
  cfg.mdata = {5e6, 6e7, 12, true};
  cfg.rho = {1e-4, 5e-3, 9, true};
  cfg.threads = 2;
  return cfg;
}

TEST(DecisionService, ExactBackendBitIdenticalToOptimize) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const DecisionService service(model);
  for (double rho : {1.11e-4, 1e-3, 2e-3, 5e-3, 1e-2}) {
    const Decision d = service.decide_one(airplane_query(rho));
    const uav::FailureModel failure(rho);
    const core::CommDelayModel delay(model, scen.delivery_params());
    const core::UtilityFunction u(delay, failure);
    const core::OptimizeResult r = core::optimize(u);
    EXPECT_EQ(d.d_opt_m, r.d_opt_m) << rho;
    EXPECT_EQ(d.utility, r.utility) << rho;
    EXPECT_EQ(d.cdelay_s, r.cdelay_s) << rho;
    EXPECT_EQ(d.discount, r.discount) << rho;
    EXPECT_EQ(d.boundary, r.boundary) << rho;
    EXPECT_EQ(d.evaluations, r.evaluations) << rho;
    EXPECT_EQ(d.backend, Backend::kExact);
    EXPECT_EQ(d.v_opt_mps, scen.delivery_params().speed_mps);
    EXPECT_EQ(d.rho_per_m, rho);
  }
}

TEST(DecisionService, JointQueryBitIdenticalToOptimizeJoint) {
  const auto scen = core::Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const DecisionService service(model);
  Query q = airplane_query();
  q.d0_m = scen.d0_m;
  q.mdata_bytes = scen.mdata_bytes;
  q.objective = Objective::kJointSpeed;
  q.platform = &scen.platform;
  const Decision d = service.decide_one(q);
  const core::JointOptimizeResult r =
      core::optimize_joint(model, scen.platform, scen.delivery_params());
  EXPECT_EQ(d.d_opt_m, r.d_opt_m);
  EXPECT_EQ(d.v_opt_mps, r.v_opt_mps);
  EXPECT_EQ(d.utility, r.utility);
  EXPECT_EQ(d.cdelay_s, r.cdelay_s);
  EXPECT_EQ(d.discount, r.discount);
  EXPECT_EQ(d.rho_per_m, r.rho_at_v);
  EXPECT_EQ(d.boundary, r.boundary);
  EXPECT_EQ(d.evaluations, r.evaluations);
}

TEST(DecisionService, MissionRealizedMatchesOptimizeObjective) {
  const auto scen = core::Scenario::quadrocopter();
  const auto model = scen.paper_throughput();
  const DecisionService service(model);
  Query q;
  q.d0_m = 90.0;
  q.speed_mps = scen.delivery_params().speed_mps;
  q.mdata_bytes = scen.mdata_bytes;
  q.min_distance_m = scen.delivery_params().min_distance_m;
  q.rho_per_m = scen.rho_per_m;
  q.objective = Objective::kMissionRealized;
  q.elapsed_s = 42.0;
  const Decision d = service.decide_one(q);

  const uav::FailureModel failure(q.rho_per_m);
  const core::DeliveryParams params{q.d0_m, q.speed_mps, q.mdata_bytes, q.min_distance_m};
  const core::CommDelayModel delay(model, params);
  const core::UtilityFunction u(delay, failure);
  const core::OptimizeResult r = core::optimize_objective(u, [&](double dist) {
    return expected_mission_utility(delay, q.rho_per_m, q.speed_mps, q.elapsed_s, dist);
  });
  EXPECT_EQ(d.d_opt_m, r.d_opt_m);
  EXPECT_EQ(d.utility, r.utility);
  EXPECT_EQ(d.boundary, r.boundary);
}

TEST(DecisionService, TableBackendServesCoveredQueriesAccurately) {
  const auto model = core::PaperLogThroughput::airplane();
  DecisionService with_table(model);
  with_table.install_table(Compiler(small_config()).compile());
  const DecisionService exact(model);

  sim::Rng rng(11);
  double max_d_err = 0.0;
  double max_regret = 0.0;
  int boundary_disagreements = 0;
  const int samples = 200;
  for (int s = 0; s < samples; ++s) {
    Query q;
    q.d0_m = rng.uniform(100.0, 400.0);
    q.speed_mps = rng.uniform(3.0, 20.0);
    q.mdata_bytes = std::pow(10.0, rng.uniform(std::log10(5e6), std::log10(6e7)));
    q.rho_per_m = std::pow(10.0, rng.uniform(std::log10(1e-4), std::log10(5e-3)));
    ASSERT_TRUE(with_table.table_eligible(q));
    const Decision t = with_table.decide_one(q);
    const Decision e = exact.decide_one(q);
    EXPECT_EQ(t.backend, Backend::kTable);
    EXPECT_EQ(e.backend, Backend::kExact);
    // Served decomposition is self-consistent: U evaluated exactly at
    // the served d*, so it can never exceed the exact optimum.
    EXPECT_LE(t.utility, e.utility + 1e-12);
    // The either-or contract (mirrors Compiler::validate): regret is
    // bounded everywhere; d* accuracy is only demanded off the utility
    // plateau, where the argmax is well-conditioned.
    const double regret = std::abs(t.utility / e.utility - 1.0);
    max_regret = std::max(max_regret, regret);
    const double d_err = std::abs(t.d_opt_m - e.d_opt_m);
    if (regret > ValidationReport::kPlateauRegret) max_d_err = std::max(max_d_err, d_err);
    // Count a boundary disagreement only when the modes are not tied
    // and the exact optimum is not itself within the table's error of
    // an interval end (knife edge).
    if (t.boundary != e.boundary && regret > ValidationReport::kPlateauRegret) {
      const double margin = std::min(e.d_opt_m - q.min_distance_m, q.d0_m - e.d_opt_m);
      if (margin > d_err + 1e-3 * (q.d0_m - q.min_distance_m)) ++boundary_disagreements;
    }
  }
  const check::CheckResult bound =
      check::Expect("service_table_max_d_err_m", 0.0, check::Tolerance::absolute(35.0))
          .check(max_d_err);
  EXPECT_TRUE(bound.ok) << bound.message;
  const check::CheckResult regret_bound =
      check::Expect("service_table_max_regret", 0.0, check::Tolerance::absolute(0.02))
          .check(max_regret);
  EXPECT_TRUE(regret_bound.ok) << regret_bound.message;
  EXPECT_EQ(boundary_disagreements, 0);

  const DecisionService::Counters c = with_table.counters();
  EXPECT_EQ(c.table, static_cast<std::uint64_t>(samples));
  EXPECT_EQ(c.exact, 0u);
}

TEST(DecisionService, UncoveredAndOverriddenQueriesFallBackToExact) {
  const auto model = core::PaperLogThroughput::airplane();
  DecisionService service(model);
  service.install_table(Compiler(small_config()).compile());

  Query outside = airplane_query(2e-3);
  outside.d0_m = 900.0;  // beyond the d0 axis
  EXPECT_FALSE(service.table_eligible(outside));
  EXPECT_EQ(service.decide_one(outside).backend, Backend::kExact);

  Query overridden = airplane_query(2e-3);
  const auto other = core::PaperLogThroughput::quadrocopter();
  overridden.model = &other;
  EXPECT_FALSE(service.table_eligible(overridden));
  EXPECT_EQ(service.decide_one(overridden).backend, Backend::kExact);

  Query weibull = airplane_query(2e-3);
  weibull.law = uav::FailureLaw::kWeibull;
  EXPECT_FALSE(service.table_eligible(weibull));

  Query other_floor = airplane_query(2e-3);
  other_floor.min_distance_m = 35.0;
  EXPECT_FALSE(service.table_eligible(other_floor));

  EXPECT_GT(service.counters().exact, 0u);
}

TEST(DecisionService, BatchDecideMatchesDecideOneAndValidatesSpans) {
  const auto model = core::PaperLogThroughput::airplane();
  const DecisionService service(model);
  std::vector<Query> queries;
  for (double rho : {1e-4, 1e-3, 5e-3}) queries.push_back(airplane_query(rho));
  std::vector<Decision> answers(queries.size());
  service.decide(queries, answers);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Decision one = service.decide_one(queries[i]);
    EXPECT_EQ(answers[i].d_opt_m, one.d_opt_m);
    EXPECT_EQ(answers[i].utility, one.utility);
  }
  std::vector<Decision> short_out(queries.size() - 1);
  EXPECT_THROW(service.decide(queries, short_out), std::invalid_argument);

  Query joint = airplane_query();
  joint.objective = Objective::kJointSpeed;  // no platform
  EXPECT_THROW((void)service.decide_one(joint), std::invalid_argument);
}

// N threads hammering decide() on ONE shared service with a table
// installed — the TSan tree runs this to prove the hot path is
// data-race-free (read-only table, relaxed counters).
TEST(DecisionService, ConcurrentDecideOnSharedTableIsRaceFree) {
  const auto model = core::PaperLogThroughput::airplane();
  DecisionService service(model);
  service.install_table(Compiler(small_config()).compile());

  std::vector<Query> queries(64);
  sim::Rng rng(23);
  for (auto& q : queries) {
    q.d0_m = rng.uniform(100.0, 400.0);
    q.speed_mps = rng.uniform(3.0, 20.0);
    q.mdata_bytes = rng.uniform(5e6, 6e7);
    q.rho_per_m = rng.uniform(1e-4, 5e-3);
  }
  std::vector<Decision> reference(queries.size());
  service.decide(queries, reference);

  constexpr int kThreads = 8;
  std::vector<std::vector<Decision>> results(kThreads,
                                             std::vector<Decision>(queries.size()));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &queries, &results, t] {
      service.decide(queries, results[static_cast<std::size_t>(t)]);
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& res : results) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(res[i].d_opt_m, reference[i].d_opt_m);
      EXPECT_EQ(res[i].utility, reference[i].utility);
      EXPECT_EQ(res[i].backend, Backend::kTable);
    }
  }
  const DecisionService::Counters c = service.counters();
  EXPECT_EQ(c.table, static_cast<std::uint64_t>((kThreads + 1) * queries.size()));
}

TEST(DecisionService, PlannerRoutedThroughServiceIsBitIdentical) {
  const auto scen = core::Scenario::airplane();
  const auto model = scen.paper_throughput();
  const uav::FailureModel failure(scen.rho_per_m);
  const core::DelayedGratificationPlanner solo(model, failure);
  const core::Decision unrouted = solo.decide(scen);

  // Routed through a table-free service: same exact backend, so the
  // decision must be bit-identical to the unrouted planner's.
  DecisionService service(model);
  core::DelayedGratificationPlanner routed(model, failure);
  routed.route_through(&service);
  const core::Decision via = routed.decide(scen);
  EXPECT_EQ(via.opt.d_opt_m, unrouted.opt.d_opt_m);
  EXPECT_EQ(via.opt.utility, unrouted.opt.utility);
  EXPECT_EQ(via.opt.boundary, unrouted.opt.boundary);
  EXPECT_EQ(via.delivery_probability, unrouted.delivery_probability);
  EXPECT_EQ(via.expected_delay_s, unrouted.expected_delay_s);
  EXPECT_EQ(service.counters().exact, 1u);

  // Routed through a table-backed service (the airplane baseline is
  // inside the compiled domain): the O(1) answer replaces the exact one
  // but stays within the table's accuracy contract.
  DecisionService tabled(model);
  tabled.install_table(Compiler(small_config()).compile());
  core::DelayedGratificationPlanner fleet(model, failure);
  fleet.route_through(&tabled);
  const core::Decision fast = fleet.decide(scen);
  EXPECT_EQ(tabled.counters().table, 1u);
  EXPECT_NEAR(fast.opt.d_opt_m, unrouted.opt.d_opt_m, 5.0);
}

}  // namespace
}  // namespace skyferry::policy
