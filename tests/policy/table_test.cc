#include "policy/table.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <string>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace skyferry::policy {
namespace {

// A tiny handmade 2x2x2x2 table with distinguishable knot values so the
// interpolation arithmetic is checkable by hand.
PolicyTable tiny_table() {
  std::array<Axis, 4> axes = {Axis{"d0_m", 100.0, 300.0, 2, false},
                              Axis{"speed_mps", 5.0, 15.0, 2, false},
                              Axis{"mdata_bytes", 1e6, 1e8, 2, true},
                              Axis{"rho_per_m", 1e-4, 1e-2, 2, true}};
  std::vector<double> d_opt(16), utility(16);
  for (std::size_t k = 0; k < 16; ++k) {
    d_opt[k] = 20.0 + 10.0 * static_cast<double>(k);
    utility[k] = 0.01 * static_cast<double>(k + 1);
  }
  return PolicyTable(axes, TableModelSpec{-5.56, 49.0, 1e6, 20.0, "paper-airplane"}, 20.0,
                     core::OptimizeOptions{}, d_opt, utility);
}

TEST(Axis, KnotEndpointsAreExact) {
  const Axis lin{"d0_m", 40.0, 600.0, 29, false};
  EXPECT_EQ(lin.knot(0), 40.0);
  EXPECT_EQ(lin.knot(28), 600.0);
  const Axis log{"rho_per_m", 1e-6, 5e-3, 17, true};
  EXPECT_DOUBLE_EQ(log.knot(0), 1e-6);
  EXPECT_DOUBLE_EQ(log.knot(16), 5e-3);
  for (int i = 1; i < 17; ++i) EXPECT_GT(log.knot(i), log.knot(i - 1));
}

TEST(Axis, LocateClampsAndIsInverseOfKnot) {
  const Axis ax{"speed_mps", 1.0, 30.0, 13, false};
  int i;
  double f;
  ax.locate(ax.knot(5), &i, &f);
  EXPECT_EQ(i, 5);
  EXPECT_NEAR(f, 0.0, 1e-12);
  ax.locate(-10.0, &i, &f);  // below range clamps to the first cell
  EXPECT_EQ(i, 0);
  EXPECT_EQ(f, 0.0);
  ax.locate(1e9, &i, &f);  // above range clamps to the last cell's top
  EXPECT_EQ(i, 11);
  EXPECT_EQ(f, 1.0);
}

TEST(PolicyTable, KnotLookupsReproduceStoredValuesExactly) {
  const PolicyTable t = tiny_table();
  for (int i0 = 0; i0 < 2; ++i0)
    for (int i1 = 0; i1 < 2; ++i1)
      for (int i2 = 0; i2 < 2; ++i2)
        for (int i3 = 0; i3 < 2; ++i3) {
          const std::size_t flat = t.index(i0, i1, i2, i3);
          const double d = t.lookup_d_opt(t.axes()[0].knot(i0), t.axes()[1].knot(i1),
                                          t.axes()[2].knot(i2), t.axes()[3].knot(i3));
          // Bit-exact: zero-weight corners are skipped in the blend.
          EXPECT_EQ(d, t.d_opt_at(flat)) << flat;
        }
}

TEST(PolicyTable, MidpointInterpolatesLinearly) {
  const PolicyTable t = tiny_table();
  // Halfway along the (linear) d0 axis only: average of the two knots.
  const double mid = t.lookup_d_opt(200.0, 5.0, 1e6, 1e-4);
  const double lo = t.d_opt_at(t.index(0, 0, 0, 0));
  const double hi = t.d_opt_at(t.index(1, 0, 0, 0));
  EXPECT_DOUBLE_EQ(mid, 0.5 * (lo + hi));
}

TEST(PolicyTable, CoversIsClosedOnTheBoundary) {
  const PolicyTable t = tiny_table();
  EXPECT_TRUE(t.covers(100.0, 5.0, 1e6, 1e-4));
  EXPECT_TRUE(t.covers(300.0, 15.0, 1e8, 1e-2));
  EXPECT_FALSE(t.covers(99.9, 5.0, 1e6, 1e-4));
  EXPECT_FALSE(t.covers(100.0, 15.1, 1e6, 1e-4));
  EXPECT_FALSE(t.covers(100.0, 5.0, 2e8, 1e-4));
  EXPECT_FALSE(t.covers(100.0, 5.0, 1e6, 2e-2));
}

TEST(PolicyTable, ConstructorRejectsBadShapes) {
  std::array<Axis, 4> axes = {Axis{"d0_m", 100.0, 300.0, 2, false},
                              Axis{"speed_mps", 5.0, 15.0, 2, false},
                              Axis{"mdata_bytes", 1e6, 1e8, 2, true},
                              Axis{"rho_per_m", 1e-4, 1e-2, 2, true}};
  const TableModelSpec model{-5.56, 49.0, 1e6, 20.0, "m"};
  // Wrong knot count.
  EXPECT_THROW(PolicyTable(axes, model, 20.0, {}, std::vector<double>(15, 50.0),
                           std::vector<double>(16, 0.1)),
               TableError);
  // Non-finite knot.
  std::vector<double> bad(16, 50.0);
  bad[7] = std::nan("");
  EXPECT_THROW(PolicyTable(axes, model, 20.0, {}, bad, std::vector<double>(16, 0.1)),
               TableError);
  // Wrong axis name (order is part of the format).
  auto renamed = axes;
  renamed[1].name = "velocity";
  EXPECT_THROW(PolicyTable(renamed, model, 20.0, {}, std::vector<double>(16, 50.0),
                           std::vector<double>(16, 0.1)),
               TableError);
  // Degenerate axis.
  auto degenerate = axes;
  degenerate[0].hi = degenerate[0].lo;
  EXPECT_THROW(PolicyTable(degenerate, model, 20.0, {}, std::vector<double>(16, 50.0),
                           std::vector<double>(16, 0.1)),
               TableError);
}

class TableFileTest : public ::testing::Test {
 protected:
  // Unique per test case AND per process: ctest runs each case as its
  // own concurrent process, so a shared fixed name would race.
  std::string path_ = ::testing::TempDir() + "/skyferry_policy_table_" +
                      ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
                      std::to_string(::getpid()) + ".json";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TableFileTest, SaveLoadRoundTripsBitIdentically) {
  const PolicyTable t = tiny_table();
  t.save_atomic(path_);
  const PolicyTable back = PolicyTable::load(path_);
  ASSERT_EQ(back.knots(), t.knots());
  for (std::size_t k = 0; k < t.knots(); ++k) {
    EXPECT_EQ(back.d_opt_at(k), t.d_opt_at(k)) << k;
    EXPECT_EQ(back.utility_at(k), t.utility_at(k)) << k;
  }
  for (int a = 0; a < 4; ++a) {
    EXPECT_EQ(back.axes()[a].name, t.axes()[a].name);
    EXPECT_EQ(back.axes()[a].lo, t.axes()[a].lo);
    EXPECT_EQ(back.axes()[a].hi, t.axes()[a].hi);
    EXPECT_EQ(back.axes()[a].n, t.axes()[a].n);
    EXPECT_EQ(back.axes()[a].log10_spaced, t.axes()[a].log10_spaced);
  }
  EXPECT_EQ(back.model().a, t.model().a);
  EXPECT_EQ(back.model().b, t.model().b);
  EXPECT_EQ(back.min_distance_m(), t.min_distance_m());
  EXPECT_EQ(back.checksum(), t.checksum());
}

TEST_F(TableFileTest, TruncatedFileIsRejected) {
  tiny_table().save_atomic(path_);
  std::ifstream in(path_, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  const std::string text = buf.str();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << text.substr(0, text.size() / 2);
  out.close();
  EXPECT_THROW(PolicyTable::load(path_), TableError);
}

TEST_F(TableFileTest, TamperedKnotFailsTheChecksum) {
  tiny_table().save_atomic(path_);
  std::ifstream in(path_, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  auto j = io::Json::parse(buf.str());
  ASSERT_TRUE(j.has_value());
  // Flip one d_opt knot; leave the recorded checksum alone.
  io::Json tampered = io::Json::object();
  for (const auto& [key, value] : j->members()) {
    if (key == "d_opt") {
      io::Json arr = io::Json::array();
      for (std::size_t i = 0; i < value.items().size(); ++i)
        arr.push_back(i == 0 ? io::Json(999.0) : value.items()[i]);
      tampered.set(key, std::move(arr));
    } else {
      tampered.set(key, value);
    }
  }
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << tampered.dump(1);
  out.close();
  try {
    (void)PolicyTable::load(path_);
    FAIL() << "tampered table loaded";
  } catch (const TableError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST_F(TableFileTest, VersionMismatchIsRejected) {
  tiny_table().save_atomic(path_);
  std::ifstream in(path_, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  auto j = io::Json::parse(buf.str());
  ASSERT_TRUE(j.has_value());
  io::Json bumped = *j;
  bumped.set("skyferry_policy_table", PolicyTable::kFormatVersion + 1);
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << bumped.dump(1);
  out.close();
  try {
    (void)PolicyTable::load(path_);
    FAIL() << "future-version table loaded";
  } catch (const TableError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST_F(TableFileTest, MissingFieldAndUnknownModelKindAreRejected) {
  tiny_table().save_atomic(path_);
  std::ifstream in(path_, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  auto j = io::Json::parse(buf.str());
  ASSERT_TRUE(j.has_value());

  io::Json no_axes = io::Json::object();
  for (const auto& [key, value] : j->members())
    if (key != "axes") no_axes.set(key, value);
  EXPECT_THROW((void)PolicyTable::from_json(no_axes), TableError);

  io::Json alien = *j;
  io::Json model = *j->find("model");
  model.set("kind", "neural-net");
  alien.set("model", std::move(model));
  EXPECT_THROW((void)PolicyTable::from_json(alien), TableError);
}

TEST_F(TableFileTest, LoadOfMissingPathThrows) {
  EXPECT_THROW(PolicyTable::load(::testing::TempDir() + "/no_such_table.json"), TableError);
}

}  // namespace
}  // namespace skyferry::policy
