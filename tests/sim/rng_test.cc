#include "sim/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace skyferry::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    rs.add(u);
  }
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntUnbiasedCoverage) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(rng.gaussian());
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.gaussian(10.0, 2.0));
  EXPECT_NEAR(rs.mean(), 10.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  stats::RunningStats rs;
  const double lambda = 0.25;
  for (int i = 0; i < 100000; ++i) rs.add(rng.exponential(lambda));
  EXPECT_NEAR(rs.mean(), 1.0 / lambda, 0.1);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, RicianUnitMeanPower) {
  // E[r^2] must be 1 for any K (normalized fading).
  for (double k : {0.0, 1.0, 5.0, 10.0}) {
    Rng rng(29);
    stats::RunningStats power;
    for (int i = 0; i < 100000; ++i) {
      const double r = rng.rician_envelope(k);
      power.add(r * r);
    }
    EXPECT_NEAR(power.mean(), 1.0, 0.02) << "K=" << k;
  }
}

TEST(Rng, RicianHighKConcentratesNearOne) {
  Rng rng(31);
  stats::RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.rician_envelope(100.0));
  // Strong LoS: envelope tightly around 1.
  EXPECT_NEAR(rs.mean(), 1.0, 0.01);
  EXPECT_LT(rs.stddev(), 0.1);
}

TEST(Rng, RicianK0IsRayleigh) {
  Rng rng(37);
  stats::RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(rng.rician_envelope(0.0));
  // Rayleigh with unit mean power: E[r] = sqrt(pi)/2 ~ 0.8862.
  EXPECT_NEAR(rs.mean(), std::sqrt(M_PI) / 2.0, 0.01);
}

TEST(Fork, DeterministicAndIndexSensitive) {
  EXPECT_EQ(fork(1, 2, 3), fork(1, 2, 3));
  EXPECT_NE(fork(1, 2, 3), fork(1, 2, 4));
  EXPECT_NE(fork(1, 2, 3), fork(1, 3, 3));
  EXPECT_NE(fork(1, 2, 3), fork(2, 2, 3));
  // Point and trial indices must not be interchangeable.
  EXPECT_NE(fork(1, 2, 3), fork(1, 3, 2));
}

TEST(Fork, AdjacentTrialStreamsDoNotOverlap) {
  // The engine's determinism guarantee leans on stream independence:
  // the first 1e4 draws of adjacent trial streams share no values (u64
  // collisions between independent streams are ~impossible at this n).
  constexpr int kDraws = 10000;
  std::set<std::uint64_t> seen;
  Rng a(fork(42, 0, 0)), b(fork(42, 0, 1)), c(fork(42, 1, 0));
  for (int i = 0; i < kDraws; ++i) seen.insert(a.next_u64());
  for (int i = 0; i < kDraws; ++i) EXPECT_EQ(seen.count(b.next_u64()), 0u) << "draw " << i;
  for (int i = 0; i < kDraws; ++i) EXPECT_EQ(seen.count(c.next_u64()), 0u) << "draw " << i;
}

TEST(Fork, TrialStreamsAreStatisticallyIndependent) {
  // Adjacent-seed streams must look uncorrelated, not just distinct:
  // the mean of XOR-popcount between paired draws sits at 32 +- noise.
  Rng a(fork(7, 0, 100)), b(fork(7, 0, 101));
  double popcount_sum = 0.0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i)
    popcount_sum += static_cast<double>(__builtin_popcountll(a.next_u64() ^ b.next_u64()));
  EXPECT_NEAR(popcount_sum / kDraws, 32.0, 0.5);
}

TEST(Binomial, DegenerateEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(10, 0.0), 0u);
    EXPECT_EQ(rng.binomial(10, -0.3), 0u);
    EXPECT_EQ(rng.binomial(10, 1.0), 10u);
    EXPECT_EQ(rng.binomial(10, 1.7), 10u);
  }
}

TEST(Binomial, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.binomial(14, 0.3), b.binomial(14, 0.3));
}

// Chi-square goodness-of-fit of the exact inversion sampler against the
// analytic Binomial(n, p) pmf, over the (n, p) grid the link simulator
// exercises (small aggregates, extreme and central success rates).
class BinomialGofTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BinomialGofTest, MatchesAnalyticPmf) {
  const auto [n, p] = GetParam();
  const int kDraws = 200000;
  Rng rng(static_cast<std::uint64_t>(n) * 1000003u + static_cast<std::uint64_t>(p * 1e6));

  std::vector<int> counts(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < kDraws; ++i) {
    const auto k = rng.binomial(static_cast<std::uint64_t>(n), p);
    ASSERT_LE(k, static_cast<std::uint64_t>(n));
    ++counts[static_cast<std::size_t>(k)];
  }

  // Analytic pmf via the same stable recurrence family the sampler uses.
  std::vector<double> pmf(static_cast<std::size_t>(n) + 1, 0.0);
  pmf[0] = std::pow(1.0 - p, n);
  for (int k = 0; k < n; ++k) {
    pmf[static_cast<std::size_t>(k) + 1] = pmf[static_cast<std::size_t>(k)] *
                                           (static_cast<double>(n - k) / (k + 1)) * (p / (1.0 - p));
  }

  // Pool bins with expected count < 5 into their neighbors (standard
  // chi-square validity rule), accumulating from both tails.
  double chi2 = 0.0;
  int dof = -1;  // one constraint: totals match
  double pooled_obs = 0.0, pooled_exp = 0.0;
  for (int k = 0; k <= n; ++k) {
    pooled_obs += counts[static_cast<std::size_t>(k)];
    pooled_exp += pmf[static_cast<std::size_t>(k)] * kDraws;
    if (pooled_exp >= 5.0) {
      chi2 += (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
      ++dof;
      pooled_obs = pooled_exp = 0.0;
    }
  }
  if (pooled_exp > 0.0) {
    // Trailing pool with small expectation: fold into the last bin.
    chi2 += (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
    ++dof;
  }
  dof = std::max(dof, 1);

  // Wilson-Hilferty 99.9% chi-square quantile approximation.
  const double z = 3.0902;  // N(0,1) 99.9% quantile
  const double h = 2.0 / (9.0 * dof);
  const double threshold = dof * std::pow(1.0 - h + z * std::sqrt(h), 3.0);
  EXPECT_LT(chi2, threshold) << "n=" << n << " p=" << p << " dof=" << dof;
}

INSTANTIATE_TEST_SUITE_P(GridNandP, BinomialGofTest,
                         ::testing::Combine(::testing::Values(1, 8, 64),
                                            ::testing::Values(0.01, 0.5, 0.99)));

TEST(Binomial, LargeNNormalFallbackMoments) {
  // n > 64 takes the normal-tail fallback: mean and variance must still
  // match np and np(1-p) closely, and samples must stay in range.
  Rng rng(1234);
  const std::uint64_t n = 1000;
  const double p = 0.2;
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) {
    const auto k = rng.binomial(n, p);
    ASSERT_LE(k, n);
    rs.add(static_cast<double>(k));
  }
  EXPECT_NEAR(rs.mean(), n * p, 0.5);                   // se ~ 0.028
  EXPECT_NEAR(rs.variance(), n * p * (1.0 - p), 4.0);   // ~2.5%
}

TEST(DeriveSeed, DistinctComponentsDistinctSeeds) {
  const auto a = derive_seed(42, "fading/link0");
  const auto b = derive_seed(42, "fading/link1");
  const auto c = derive_seed(43, "fading/link0");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(42, "fading/link0"));
}

}  // namespace
}  // namespace skyferry::sim
