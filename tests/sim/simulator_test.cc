#include "sim/simulator.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoForSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule(1.0, [&] { sim.schedule(2.0, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports failure
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelInvalidId) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(2.0, [&] { ++count; });
  sim.schedule(5.0, [&] { ++count; });
  sim.run_until(2.5);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  double t = -1.0;
  sim.schedule(-3.0, [&] { t = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StepSkipsCancelled) {
  Simulator sim;
  bool ran = false;
  const EventId a = sim.schedule(1.0, [&] { ran = true; });
  sim.cancel(a);
  int count = 0;
  sim.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());  // skips the cancelled one, runs the real one
  EXPECT_FALSE(ran);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  sim.schedule(9.0, [] {});
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SchedulePeriodic, RepeatsUntilFalse) {
  Simulator sim;
  int ticks = 0;
  schedule_periodic(sim, 1.0, [&] { return ++ticks < 5; });
  sim.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelAfterExecutionFailsAndKeepsPendingSane) {
  // Regression: cancelling an id that already executed used to record a
  // cancelled placeholder that never surfaced, making pending() =
  // queue_size - cancelled_count underflow to a huge size_t. Ids are now
  // generation-checked, so the stale cancel is a counted-for-nothing no-op.
  Simulator sim;
  int ran = 0;
  const EventId a = sim.schedule(1.0, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(sim.cancel(a));  // already executed
  EXPECT_EQ(sim.pending(), 0u);

  // Cancel-then-run-then-cancel: the second cancel must also fail, and
  // pending() must stay exact throughout.
  const EventId b = sim.schedule(1.0, [&] { ++ran; });
  const EventId c = sim.schedule(2.0, [&] { ++ran; });
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(b));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.cancel(b));
  EXPECT_FALSE(sim.cancel(c));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, StaleIdCannotCancelRecycledSlot) {
  // After an event executes (or is cancelled), its storage slot is
  // recycled for new events. The old id must not be able to cancel the
  // slot's next tenant.
  Simulator sim;
  const EventId old_id = sim.schedule(1.0, [] {});
  sim.run();
  bool ran = false;
  sim.schedule(1.0, [&] { ran = true; });  // reuses the freed slot
  EXPECT_FALSE(sim.cancel(old_id));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, PreResetIdsAreDeadAfterReset) {
  // reset() retires every slot generation: ids issued before the reset
  // can neither cancel nor corrupt pending() afterwards.
  Simulator sim;
  const EventId a = sim.schedule(5.0, [] {});
  sim.reset();
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.pending(), 0u);
  bool ran = false;
  sim.schedule(1.0, [&] { ran = true; });
  EXPECT_FALSE(sim.cancel(a));  // still dead, even with the slot re-let
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelStormKeepsAccountingExact) {
  // Interleaved schedule/cancel/execute churn: pending() must equal the
  // live count at every step and never wrap.
  Simulator sim;
  std::vector<EventId> ids;
  int ran = 0;
  for (int round = 0; round < 10; ++round) {
    ids.clear();
    for (int i = 0; i < 20; ++i) {
      ids.push_back(sim.schedule(1.0 + i, [&] { ++ran; }));
    }
    EXPECT_EQ(sim.pending(), 20u);
    for (int i = 0; i < 20; i += 2) EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
    for (int i = 0; i < 20; i += 2) EXPECT_FALSE(sim.cancel(ids[static_cast<std::size_t>(i)]));
    EXPECT_EQ(sim.pending(), 10u);
    sim.run();
    EXPECT_EQ(sim.pending(), 0u);
  }
  EXPECT_EQ(ran, 100);
}

TEST(Simulator, ReserveDoesNotDisturbSemantics) {
  Simulator sim;
  sim.reserve(64);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ManyEventsStressOrder) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    // Deterministic pseudo-shuffled times.
    const double t = static_cast<double>((i * 7919) % 10007) / 10.0;
    sim.schedule_at(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_executed(), 10000u);
}

TEST(Simulator, RejectsNonFiniteTimes) {
  // Regression: a NaN/Inf time (e.g. division by a zero throughput
  // sample) used to enqueue an event that could never surface and wedged
  // the queue. Such schedules are now counted and dropped.
  Simulator sim;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  bool fired = false;
  EXPECT_EQ(sim.schedule(nan, [&] { fired = true; }), 0u);
  EXPECT_EQ(sim.schedule(inf, [&] { fired = true; }), 0u);
  EXPECT_EQ(sim.schedule_at(nan, [&] { fired = true; }), 0u);
  EXPECT_EQ(sim.schedule_at(-inf, [&] { fired = true; }), 0u);
  EXPECT_EQ(sim.rejected_nonfinite(), 4u);
  EXPECT_EQ(sim.pending(), 0u);

  // A healthy event after the corrupt ones still runs to completion.
  sim.schedule(1.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_EQ(sim.events_executed(), 1u);

  // The invalid id 0 is not cancellable and reset clears the counter.
  EXPECT_FALSE(sim.cancel(0));
  sim.reset();
  EXPECT_EQ(sim.rejected_nonfinite(), 0u);
}

}  // namespace
}  // namespace skyferry::sim
