#include "stats/descriptive.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::stats {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats rs;
  rs.add(3.14);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.14);
  EXPECT_DOUBLE_EQ(rs.min(), 3.14);
  EXPECT_DOUBLE_EQ(rs.max(), 3.14);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0 + i * 0.01;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose precision here.
  RunningStats rs;
  const double base = 1e9;
  for (double x : {base + 4.0, base + 7.0, base + 13.0, base + 16.0}) rs.add(x);
  EXPECT_NEAR(rs.variance(), 30.0, 1e-6);
}

TEST(FreeFunctions, MeanVarStd) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Correlation, PerfectAndNone) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  for (auto& y : ys) y = -y;
  EXPECT_NEAR(correlation(xs, ys), -1.0, 1e-12);
  const std::vector<double> constant{3.0, 3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(correlation(xs, constant), 0.0);
}

}  // namespace
}  // namespace skyferry::stats
