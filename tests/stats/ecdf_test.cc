#include "stats/ecdf.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::stats {
namespace {

TEST(Ecdf, StepFunctionBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(99.0), 1.0);
}

TEST(Ecdf, EmptySample) {
  const std::vector<double> xs;
  const Ecdf f(xs);
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f(1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 0.0);
}

TEST(Ecdf, QuantileInverse) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 50.0);
}

TEST(Ecdf, KsDistanceIdenticalIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const Ecdf a(xs), b(xs);
  EXPECT_DOUBLE_EQ(a.ks_distance(b), 0.0);
}

TEST(Ecdf, KsDistanceDisjointIsOne) {
  const std::vector<double> lo{1.0, 2.0};
  const std::vector<double> hi{10.0, 20.0};
  EXPECT_DOUBLE_EQ(Ecdf(lo).ks_distance(Ecdf(hi)), 1.0);
}

TEST(Ecdf, KsDetectsShift) {
  sim::Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.gaussian(0.0, 1.0));
    b.push_back(rng.gaussian(0.5, 1.0));
  }
  const double d = Ecdf(a).ks_distance(Ecdf(b));
  EXPECT_GT(d, 0.1);
  EXPECT_LT(d, 0.35);
}

TEST(Bootstrap, MedianCiCoversTruth) {
  sim::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.gaussian(10.0, 2.0));
  const auto ci = bootstrap_median_ci(xs, 0.95, 500, 3);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
  EXPECT_NEAR(ci.point, 10.0, 0.4);
  EXPECT_LT(ci.hi - ci.lo, 1.0);
}

TEST(Bootstrap, MeanCiNarrowerWithMoreData) {
  sim::Rng rng(9);
  std::vector<double> small, large;
  for (int i = 0; i < 50; ++i) small.push_back(rng.gaussian(0.0, 1.0));
  for (int i = 0; i < 5000; ++i) large.push_back(rng.gaussian(0.0, 1.0));
  const auto ci_small = bootstrap_mean_ci(small, 0.95, 400, 1);
  const auto ci_large = bootstrap_mean_ci(large, 0.95, 400, 1);
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
}

TEST(Bootstrap, EmptySampleIsSafe) {
  const std::vector<double> xs;
  const auto ci = bootstrap_median_ci(xs);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
}

// ---- edge-case regressions (NaN rejection, boundary exactness) --------------

TEST(Ecdf, EmptySampleIsSafe) {
  const Ecdf f(std::vector<double>{});
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 0.0);
}

TEST(Ecdf, SingleElement) {
  const Ecdf f(std::vector<double>{4.2});
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f(4.1), 0.0);
  EXPECT_DOUBLE_EQ(f(4.2), 1.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 4.2);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 4.2);
}

TEST(Ecdf, QuantileExactAtBoundaries) {
  const Ecdf f(std::vector<double>{3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 3.0);
  // Out-of-range q clamps; NaN q is rejected.
  EXPECT_DOUBLE_EQ(f.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.quantile(2.0), 3.0);
  EXPECT_TRUE(std::isnan(f.quantile(std::nan(""))));
}

TEST(Ecdf, DropsNonFiniteSamples) {
  const double inf = std::numeric_limits<double>::infinity();
  const Ecdf f(std::vector<double>{2.0, std::nan(""), 1.0, inf, 3.0});
  EXPECT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f(3.0), 1.0);  // inf no longer holds F below 1
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 3.0);
}

TEST(Ecdf, KsDistanceIgnoresNonFinite) {
  const std::vector<double> clean{1.0, 2.0, 3.0, 4.0};
  std::vector<double> dirty = clean;
  dirty.push_back(std::nan(""));
  EXPECT_DOUBLE_EQ(Ecdf(clean).ks_distance(Ecdf(dirty)), 0.0);
}

TEST(Bootstrap, DeterministicForSeed) {
  const std::vector<double> xs{1.0, 5.0, 3.0, 8.0, 2.0, 9.0};
  const auto a = bootstrap_median_ci(xs, 0.9, 300, 42);
  const auto b = bootstrap_median_ci(xs, 0.9, 300, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace skyferry::stats
