#include "stats/histogram.h"

#include <vector>

#include <gtest/gtest.h>

namespace skyferry::stats {
namespace {

TEST(Histogram, BinsAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, CountsInRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);  // boundary goes to the upper bin
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, Density) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> xs{0.5, 0.6, 1.5, 2.5};
  h.add_all(xs);
  EXPECT_DOUBLE_EQ(h.density(0), 0.5);
  EXPECT_DOUBLE_EQ(h.density(1), 0.25);
  EXPECT_DOUBLE_EQ(h.density(3), 0.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, EmptyDensityIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.density(0), 0.0);
}

}  // namespace
}  // namespace skyferry::stats
