#include "stats/quantile.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace skyferry::stats {
namespace {

TEST(Quantile, EmptyReturnsZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 0.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 7.0);
}

TEST(Quantile, Type7Interpolation) {
  // NumPy default (linear): quantile([1,2,3,4], .5) == 2.5.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 3.25);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Quantile, OutOfRangeQClamped) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 3.0);
}

TEST(Boxplot, FiveNumberSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const BoxplotSummary b = boxplot(xs);
  EXPECT_EQ(b.n, 100u);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
  EXPECT_NEAR(b.median, 50.5, 1e-12);
  EXPECT_NEAR(b.q1, 25.75, 1e-12);
  EXPECT_NEAR(b.q3, 75.25, 1e-12);
  EXPECT_TRUE(b.outliers.empty());
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 100.0);
}

TEST(Boxplot, DetectsOutliers) {
  std::vector<double> xs{10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 100.0};
  const BoxplotSummary b = boxplot(xs);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 16.0);  // whisker stops at the fence
  EXPECT_DOUBLE_EQ(b.max, 100.0);
}

TEST(Boxplot, EmptyInput) {
  const std::vector<double> xs;
  const BoxplotSummary b = boxplot(xs);
  EXPECT_EQ(b.n, 0u);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(Boxplot, ConstantSample) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  const BoxplotSummary b = boxplot(xs);
  EXPECT_DOUBLE_EQ(b.iqr(), 0.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.whisker_low, 5.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 5.0);
  EXPECT_TRUE(b.outliers.empty());
}

// ---- edge-case regressions (NaN rejection, boundary exactness) --------------

TEST(Quantile, ExactAtBoundaries) {
  // q=0 and q=1 must be the exact min/max, never an interpolation.
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.5, 9.0, 2.6};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
  // Out-of-range q clamps to the same boundaries.
  EXPECT_DOUBLE_EQ(quantile(xs, -0.3), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.7), 9.0);
}

TEST(Quantile, NanQReturnsNan) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(quantile(xs, std::nan(""))));
  EXPECT_TRUE(std::isnan(quantile_sorted(xs, std::nan(""))));
}

TEST(Quantile, DropsNonFiniteSamples) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs{2.0, std::nan(""), 1.0, inf, 3.0, -inf};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
}

TEST(Quantile, AllNonFiniteBehavesLikeEmpty) {
  const std::vector<double> xs{std::nan(""), std::numeric_limits<double>::infinity()};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 0.0);
}

TEST(Boxplot, DropsNonFiniteSamples) {
  const std::vector<double> xs{10.0, std::nan(""), 11.0, 12.0,
                               std::numeric_limits<double>::infinity()};
  const BoxplotSummary b = boxplot(xs);
  EXPECT_EQ(b.n, 3u);
  EXPECT_DOUBLE_EQ(b.min, 10.0);
  EXPECT_DOUBLE_EQ(b.max, 12.0);
  EXPECT_DOUBLE_EQ(b.median, 11.0);
  EXPECT_TRUE(b.outliers.empty());
}

}  // namespace
}  // namespace skyferry::stats
