#include "stats/regression.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace skyferry::stats {
namespace {

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x - 2.0);
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -2.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(f(10.0), 28.0, 1e-12);
}

TEST(LinearFit, ConstantXGivesMeanY) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(LinearFit, MismatchedSizesReturnsEmpty) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.r_squared, 0.0);
}

TEST(LinearFit, NoisyDataReasonableR2) {
  sim::Rng rng(123);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(2.0 * x + 1.0 + rng.gaussian(0.0, 0.5));
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 0.1);
  EXPECT_NEAR(f.intercept, 1.0, 0.3);
  EXPECT_GT(f.r_squared, 0.95);
}

TEST(Log2Fit, RecoversPaperAirplaneModel) {
  // Sample the paper's airplane fit s(d) = -5.56*log2(d) + 49 and make
  // sure the fitting pipeline recovers the published coefficients.
  std::vector<double> ds, ss;
  for (double d = 20.0; d <= 320.0; d += 20.0) {
    ds.push_back(d);
    ss.push_back(-5.56 * std::log2(d) + 49.0);
  }
  const Log2Fit f = log2_fit(ds, ss);
  EXPECT_NEAR(f.a, -5.56, 1e-10);
  EXPECT_NEAR(f.b, 49.0, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(f(100.0), -5.56 * std::log2(100.0) + 49.0, 1e-9);
}

TEST(Log2Fit, NoisyRecovery) {
  sim::Rng rng(77);
  std::vector<double> ds, ss;
  for (double d = 20.0; d <= 120.0; d += 5.0) {
    ds.push_back(d);
    ss.push_back(-10.5 * std::log2(d) + 73.0 + rng.gaussian(0.0, 1.0));
  }
  const Log2Fit f = log2_fit(ds, ss);
  EXPECT_NEAR(f.a, -10.5, 1.0);
  EXPECT_NEAR(f.b, 73.0, 6.0);
  EXPECT_GT(f.r_squared, 0.9);
}

TEST(RSquared, PerfectAndPoor) {
  const std::vector<double> obs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
  const std::vector<double> anti{3.0, 2.0, 1.0};
  EXPECT_LT(r_squared(obs, anti), 0.0);  // worse than the mean predictor
}

TEST(RSquared, SizeMismatch) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_DOUBLE_EQ(r_squared(a, b), 0.0);
}

}  // namespace
}  // namespace skyferry::stats
