// Minimal property-based testing support for the gtest suites: a seeded
// per-case generator plus a FOR_ALL macro that runs a property over many
// random cases and, on failure, reports the case index and the per-case
// seed so the exact counterexample can be replayed (no shrinking — the
// replay seed regenerates the same draws deterministically).
//
//   TEST(Dubins, NeverShorterThanEuclid) {
//     FOR_ALL(200, 0x5EEDULL, g) {
//       const double x = g.uniform(-500.0, 500.0);
//       ...
//       EXPECT_GE(path, euclid) << "x=" << x;   // failure carries g's trace
//     }
//   }
//
// FOR_ALL stops at the first failing case (one counterexample, not a
// wall of repeats) and wraps the body in a gtest ScopedTrace naming the
// case, so any EXPECT/ASSERT inside reports which case broke.
#pragma once

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace skyferry::proptest {

/// splitmix64 step — tiny, seedable, and plenty for test-case generation.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Iterates `trials` independently-seeded cases. Each case reseeds from
/// (seed, case index), so a failing case replays from its reported seed
/// regardless of how many draws earlier cases made.
class Case {
 public:
  Case(std::uint64_t seed, int trials) noexcept : seed_(seed), trials_(trials) {}

  /// Advance to the next case; false when done or after any failure.
  bool next_case() {
    if (::testing::Test::HasFailure()) return false;  // first counterexample wins
    if (index_ >= trials_) return false;
    ++index_;
    state_ = seed_ + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index_);
    return true;
  }

  // ---- draws ---------------------------------------------------------------
  [[nodiscard]] std::uint64_t next_u64() noexcept { return splitmix64(state_); }
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;  // [0,1)
    return lo + u * (hi - lo);
  }
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
  }
  /// True with probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform(0.0, 1.0) < p; }

  // ---- reporting -----------------------------------------------------------
  [[nodiscard]] int index() const noexcept { return index_; }
  [[nodiscard]] std::string context() const {
    return "FOR_ALL case " + std::to_string(index_) + "/" + std::to_string(trials_) +
           " (base seed 0x" + hex(seed_) + ", case seed 0x" +
           hex(seed_ + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index_)) + ")";
  }

 private:
  [[nodiscard]] static std::string hex(std::uint64_t v) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string s;
    do {
      s.insert(s.begin(), kDigits[v & 0xF]);
      v >>= 4;
    } while (v != 0);
    return s;
  }

  std::uint64_t seed_;
  int trials_;
  int index_{0};
  std::uint64_t state_{0};
};

}  // namespace skyferry::proptest

/// Run the following block once per random case, with `gen` (a
/// proptest::Case) in scope. Failures inside the block are annotated
/// with the case index and replay seed, and stop the iteration.
#define FOR_ALL(trials, seed, gen)                                               \
  for (::skyferry::proptest::Case gen((seed), (trials)); gen.next_case();)       \
    if (const ::testing::ScopedTrace skyferry_proptest_trace{__FILE__, __LINE__, \
                                                             gen.context()};     \
        true)
