#include "uav/autopilot.h"

#include <gtest/gtest.h>

#include "geo/geodesy.h"

namespace skyferry::uav {
namespace {

/// Fly the autopilot for `duration` seconds, returning the final state.
KinematicState fly(Autopilot& ap, const PlatformSpec& spec, KinematicState s, double duration,
                   double dt = 0.05) {
  const KinematicLimits lim = KinematicLimits::for_platform(spec);
  for (double t = 0.0; t < duration; t += dt) {
    s = step(s, ap.update(s, t, dt), lim, dt);
  }
  return s;
}

TEST(Autopilot, QuadReachesWaypointAndHovers) {
  const PlatformSpec spec = PlatformSpec::arducopter();
  Autopilot ap(spec);
  ap.add_waypoint({{50.0, 0.0, 10.0}, 0.0, 3.0, -1.0});  // hold forever
  KinematicState s;
  s = fly(ap, spec, s, 60.0);
  EXPECT_NEAR(geo::distance(s.pos, {50.0, 0.0, 10.0}), 0.0, 4.0);
  EXPECT_LT(s.vel.norm(), 0.5);  // hovering
  EXPECT_TRUE(ap.is_holding());
}

TEST(Autopilot, AirplaneLoitersOnCircle) {
  const PlatformSpec spec = PlatformSpec::swinglet();
  Autopilot ap(spec);
  ap.add_waypoint({{200.0, 0.0, 80.0}, 0.0, 5.0, -1.0});
  KinematicState s;
  s.vel = {10.0, 0.0, 0.0};
  s = fly(ap, spec, s, 120.0);
  EXPECT_TRUE(ap.is_holding());
  // Still flying (cannot hover)...
  EXPECT_GT(s.vel.norm(), spec.min_speed_mps - 0.5);
  // ...on a circle near the minimum turn radius around the waypoint.
  const double rho = geo::ground_distance(s.pos, {200.0, 0.0, 80.0});
  EXPECT_NEAR(rho, spec.min_turn_radius_m, 12.0);
}

TEST(Autopilot, SequencesWaypoints) {
  const PlatformSpec spec = PlatformSpec::arducopter();
  Autopilot ap(spec);
  ap.add_waypoint({{30.0, 0.0, 10.0}, 0.0, 3.0, 1.0});
  ap.add_waypoint({{30.0, 30.0, 10.0}, 0.0, 3.0, -1.0});
  KinematicState s;
  s = fly(ap, spec, s, 120.0);
  EXPECT_NEAR(geo::distance(s.pos, {30.0, 30.0, 10.0}), 0.0, 4.0);
  EXPECT_EQ(ap.waypoints_left(), 0u);
}

TEST(Autopilot, SetPlanReplacesQueue) {
  const PlatformSpec spec = PlatformSpec::arducopter();
  Autopilot ap(spec);
  ap.add_waypoint({{100.0, 0.0, 10.0}, 0.0, 3.0, -1.0});
  std::deque<Waypoint> plan;
  plan.push_back({{0.0, 40.0, 10.0}, 0.0, 3.0, -1.0});
  ap.set_plan(plan);
  KinematicState s;
  s = fly(ap, spec, s, 60.0);
  EXPECT_NEAR(geo::distance(s.pos, {0.0, 40.0, 10.0}), 0.0, 4.0);
}

TEST(Autopilot, HoldTimerExpires) {
  const PlatformSpec spec = PlatformSpec::arducopter();
  Autopilot ap(spec);
  ap.add_waypoint({{10.0, 0.0, 5.0}, 0.0, 3.0, 2.0});
  KinematicState s;
  s = fly(ap, spec, s, 60.0);
  // After arriving and holding 2 s with no further waypoints: idle.
  EXPECT_EQ(ap.phase(), AutopilotPhase::kIdle);
}

TEST(Autopilot, IdleQuadStays) {
  const PlatformSpec spec = PlatformSpec::arducopter();
  Autopilot ap(spec);
  KinematicState s;
  s.pos = {5.0, 5.0, 5.0};
  const KinematicState end = fly(ap, spec, s, 10.0);
  EXPECT_NEAR(geo::distance(end.pos, s.pos), 0.0, 0.1);
}

TEST(Autopilot, IdleAirplaneKeepsFlying) {
  const PlatformSpec spec = PlatformSpec::swinglet();
  Autopilot ap(spec);
  KinematicState s;
  s.vel = {10.0, 0.0, 0.0};
  const KinematicState end = fly(ap, spec, s, 10.0);
  EXPECT_GT(geo::distance(end.pos, s.pos), 50.0);
}

TEST(Autopilot, ShuttlePatternCoversDistanceRange) {
  // Mimic the paper's Fig. 4(a): two waypoints, fly back and forth.
  const PlatformSpec spec = PlatformSpec::swinglet();
  Autopilot ap(spec);
  for (int i = 0; i < 3; ++i) {
    ap.add_waypoint({{0.0, 0.0, 80.0}, 0.0, 25.0, 0.0});
    ap.add_waypoint({{400.0, 0.0, 80.0}, 0.0, 25.0, 0.0});
  }
  KinematicState s;
  s.pos = {200.0, 50.0, 80.0};
  s.vel = {10.0, 0.0, 0.0};
  const KinematicLimits lim = KinematicLimits::for_platform(spec);
  double min_x = 1e9, max_x = -1e9;
  for (double t = 0.0; t < 300.0; t += 0.05) {
    s = step(s, ap.update(s, t, 0.05), lim, 0.05);
    min_x = std::min(min_x, s.pos.x);
    max_x = std::max(max_x, s.pos.x);
  }
  EXPECT_LT(min_x, 80.0);
  EXPECT_GT(max_x, 320.0);
}

}  // namespace
}  // namespace skyferry::uav
