#include "uav/battery.h"

#include <gtest/gtest.h>

namespace skyferry::uav {
namespace {

TEST(Battery, StartsFull) {
  Battery b(PlatformSpec::arducopter());
  EXPECT_DOUBLE_EQ(b.soc(), 1.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DrainsToAutonomyAtCruise) {
  const PlatformSpec spec = PlatformSpec::swinglet();
  Battery b(spec);
  // Fly at cruise for the rated autonomy: battery should be ~empty
  // (drain factor at cruise for fixed-wing is 1.0 by construction).
  b.drain(spec.battery_autonomy_s, spec.cruise_speed_mps);
  EXPECT_NEAR(b.soc(), 0.0, 1e-9);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, NeverNegative) {
  Battery b(PlatformSpec::arducopter());
  b.drain(1e9, 10.0);
  EXPECT_DOUBLE_EQ(b.soc(), 0.0);
}

TEST(Battery, FasterDrainsFaster) {
  const PlatformSpec spec = PlatformSpec::arducopter();
  Battery slow(spec), fast(spec);
  slow.drain(300.0, spec.cruise_speed_mps);
  fast.drain(300.0, spec.max_speed_mps);
  EXPECT_LT(fast.soc(), slow.soc());
}

TEST(Battery, HoverStillDrainsQuad) {
  Battery b(PlatformSpec::arducopter());
  b.drain(600.0, 0.0);
  EXPECT_LT(b.soc(), 1.0);
  EXPECT_NEAR(b.drain_factor(0.0), 0.8, 1e-9);
}

TEST(Battery, RemainingEnduranceAndRange) {
  const PlatformSpec spec = PlatformSpec::swinglet();
  Battery b(spec);
  b.drain(spec.battery_autonomy_s / 2.0, spec.cruise_speed_mps);
  EXPECT_NEAR(b.remaining_endurance_s(), spec.battery_autonomy_s / 2.0, 1.0);
  EXPECT_NEAR(b.remaining_range_m(), spec.range_m() / 2.0, 10.0);
}

TEST(Battery, DrainFactorAtCruiseIsOne) {
  for (const auto& spec : {PlatformSpec::swinglet(), PlatformSpec::arducopter()}) {
    Battery b(spec);
    EXPECT_NEAR(b.drain_factor(spec.cruise_speed_mps), 1.0, 1e-9) << spec.name;
  }
}

}  // namespace
}  // namespace skyferry::uav
