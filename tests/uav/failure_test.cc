#include "uav/failure.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace skyferry::uav {
namespace {

TEST(FailureModel, PaperBaselineValues) {
  EXPECT_DOUBLE_EQ(FailureModel::paper_airplane().rho(), 1.11e-4);
  EXPECT_DOUBLE_EQ(FailureModel::paper_quadrocopter().rho(), 2.46e-4);
}

TEST(FailureModel, FromBatteryIsInverseRange) {
  const auto air = FailureModel::from_battery(PlatformSpec::swinglet());
  EXPECT_NEAR(air.rho(), 1.0 / 18000.0, 1e-12);
  const auto quad = FailureModel::from_battery(PlatformSpec::arducopter());
  EXPECT_NEAR(quad.rho(), 1.0 / 5400.0, 1e-12);
}

TEST(FailureModel, ExponentialSurvival) {
  const FailureModel m(0.001);
  EXPECT_DOUBLE_EQ(m.survival(0.0), 1.0);
  EXPECT_NEAR(m.survival(1000.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(m.survival(2000.0), std::exp(-2.0), 1e-12);
}

TEST(FailureModel, DiscountMatchesPaperForm) {
  // delta(d) = exp(-rho*(d0-d)).
  const FailureModel m(2.46e-4);
  const double d0 = 100.0;
  for (double d : {20.0, 50.0, 80.0, 100.0}) {
    EXPECT_NEAR(m.discount(d0, d), std::exp(-2.46e-4 * (d0 - d)), 1e-12);
  }
  // At d = d0 no movement is needed: no discount.
  EXPECT_DOUBLE_EQ(m.discount(d0, d0), 1.0);
}

TEST(FailureModel, SurvivalMonotoneDecreasing) {
  for (auto law : {FailureLaw::kExponential, FailureLaw::kLinear, FailureLaw::kWeibull}) {
    const FailureModel m(0.002, law);
    double prev = 1.1;
    for (double d = 0.0; d <= 600.0; d += 50.0) {
      const double s = m.survival(d);
      EXPECT_LE(s, prev + 1e-12);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      prev = s;
    }
  }
}

TEST(FailureModel, ZeroRhoNeverFails) {
  const FailureModel m(0.0);
  EXPECT_DOUBLE_EQ(m.survival(1e9), 1.0);
}

TEST(FailureModel, LinearHitsZero) {
  const FailureModel m(0.001, FailureLaw::kLinear);
  EXPECT_DOUBLE_EQ(m.survival(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(m.survival(5000.0), 0.0);
  EXPECT_NEAR(m.survival(500.0), 0.5, 1e-12);
}

TEST(FailureModel, SampledFailureDistanceMeanMatches) {
  // All three laws are parameterized so the mean distance-to-failure is
  // 1/rho.
  for (auto law : {FailureLaw::kExponential, FailureLaw::kLinear, FailureLaw::kWeibull}) {
    const FailureModel m(0.01, law);
    sim::Rng rng(42);
    stats::RunningStats rs;
    for (int i = 0; i < 50000; ++i) rs.add(m.sample_failure_distance(rng));
    const double expected_mean = (law == FailureLaw::kLinear) ? 50.0 : 100.0;
    // Linear law: uniform on [0, 1/rho] has mean 1/(2 rho).
    EXPECT_NEAR(rs.mean(), expected_mean, expected_mean * 0.05)
        << static_cast<int>(law);
  }
}

TEST(FailureModel, SampleInverseCdfRoundTripsAgainstSurvival) {
  // sample_failure_distance is the inverse CDF applied to a uniform draw,
  // so the empirical P(D > x) must reproduce survival(x) for every law —
  // including the kLinear and kWeibull variants.
  for (auto law : {FailureLaw::kExponential, FailureLaw::kLinear, FailureLaw::kWeibull}) {
    const FailureModel m(0.004, law);
    sim::Rng rng(1234);
    const int n = 40000;
    std::vector<double> samples;
    samples.reserve(n);
    for (int i = 0; i < n; ++i) samples.push_back(m.sample_failure_distance(rng));
    for (double x : {25.0, 100.0, 250.0, 500.0}) {
      int beyond = 0;
      for (double d : samples) beyond += (d > x) ? 1 : 0;
      EXPECT_NEAR(static_cast<double>(beyond) / n, m.survival(x), 0.01)
          << "law " << static_cast<int>(law) << " at x=" << x;
    }
  }
}

TEST(FailureModel, SurvivalOfSampledDistanceIsUniform) {
  // S(D) ~ Uniform(0,1) when D is drawn from the law itself — a direct
  // inverse-CDF consistency check that needs no binning.
  for (auto law : {FailureLaw::kExponential, FailureLaw::kWeibull}) {
    const FailureModel m(0.002, law);
    sim::Rng rng(77);
    stats::RunningStats rs;
    for (int i = 0; i < 20000; ++i) rs.add(m.survival(m.sample_failure_distance(rng)));
    EXPECT_NEAR(rs.mean(), 0.5, 0.01) << static_cast<int>(law);
    EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.005) << static_cast<int>(law);
  }
}

TEST(FailureModel, LinearSamplesNeverExceedSupport) {
  const FailureModel m(0.001, FailureLaw::kLinear);
  sim::Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = m.sample_failure_distance(rng);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1000.0);  // support of the linear law is [0, 1/rho)
  }
}

TEST(FailureModel, FromBatteryIsExponentialLaw) {
  // from_battery derives rho = 1/range and always uses the paper's
  // exponential law, whatever the platform.
  for (const auto& spec : {PlatformSpec::swinglet(), PlatformSpec::arducopter()}) {
    const auto m = FailureModel::from_battery(spec);
    EXPECT_EQ(m.law(), FailureLaw::kExponential);
    EXPECT_NEAR(m.rho(), 1.0 / spec.range_m(), 1e-15);
    // survival over one full battery range = 1/e for the exponential law.
    EXPECT_NEAR(m.survival(spec.range_m()), std::exp(-1.0), 1e-12);
  }
}

TEST(FailureModel, WeibullShapeOneDegeneratesToExponential) {
  const FailureModel wei(0.003, FailureLaw::kWeibull, 1.0);
  const FailureModel exp_m(0.003, FailureLaw::kExponential);
  for (double d = 0.0; d <= 1000.0; d += 100.0) {
    EXPECT_NEAR(wei.survival(d), exp_m.survival(d), 1e-9) << d;
  }
}

TEST(FailureModel, WeibullSharperKnee) {
  // Weibull shape 2 has fewer early failures than exponential at the
  // same mean: survival at small d is higher.
  const FailureModel exp_m(0.001, FailureLaw::kExponential);
  const FailureModel wei_m(0.001, FailureLaw::kWeibull, 2.0);
  EXPECT_GT(wei_m.survival(100.0), exp_m.survival(100.0));
}

}  // namespace
}  // namespace skyferry::uav
