#include "uav/kinematics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skyferry::uav {
namespace {

TEST(KinematicLimits, PlatformEnvelopes) {
  const auto air = KinematicLimits::for_platform(PlatformSpec::swinglet());
  EXPECT_GT(air.min_speed_mps, 0.0);  // fixed-wing cannot stop
  EXPECT_NEAR(air.max_turn_rate_rad_s, 0.5, 0.01);  // v/r = 10/20

  const auto quad = KinematicLimits::for_platform(PlatformSpec::arducopter());
  EXPECT_DOUBLE_EQ(quad.min_speed_mps, 0.0);
  EXPECT_GT(quad.max_turn_rate_rad_s, air.max_turn_rate_rad_s);
}

TEST(Kinematics, ReachesCommandedVelocity) {
  KinematicState s;
  KinematicLimits lim;
  const VelocityCommand cmd{{3.0, 0.0, 0.0}};
  for (int i = 0; i < 100; ++i) s = step(s, cmd, lim, 0.1);
  EXPECT_NEAR(s.vel.x, 3.0, 1e-6);
  EXPECT_GT(s.pos.x, 0.0);
}

TEST(Kinematics, AccelerationIsBounded) {
  KinematicState s;
  KinematicLimits lim;
  lim.max_accel_mps2 = 2.0;
  const VelocityCommand cmd{{100.0, 0.0, 0.0}};
  const KinematicState next = step(s, cmd, lim, 0.1);
  EXPECT_LE(next.vel.norm(), 2.0 * 0.1 + 1e-9);
}

TEST(Kinematics, SpeedClampedToMax) {
  KinematicState s;
  KinematicLimits lim;
  lim.max_speed_mps = 5.0;
  lim.max_accel_mps2 = 1000.0;  // irrelevantly large
  const VelocityCommand cmd{{100.0, 0.0, 0.0}};
  const KinematicState next = step(s, cmd, lim, 1.0);
  EXPECT_LE(next.vel.norm(), 5.0 + 1e-9);
}

TEST(Kinematics, FixedWingCannotStop) {
  KinematicLimits lim = KinematicLimits::for_platform(PlatformSpec::swinglet());
  KinematicState s;
  s.vel = {10.0, 0.0, 0.0};
  const VelocityCommand stop{{0.0, 0.0, 0.0}};
  for (int i = 0; i < 200; ++i) s = step(s, stop, lim, 0.1);
  EXPECT_GE(s.vel.norm(), lim.min_speed_mps - 1e-6);
}

TEST(Kinematics, QuadCanStop) {
  KinematicLimits lim = KinematicLimits::for_platform(PlatformSpec::arducopter());
  KinematicState s;
  s.vel = {4.0, 0.0, 0.0};
  const VelocityCommand stop{{0.0, 0.0, 0.0}};
  for (int i = 0; i < 100; ++i) s = step(s, stop, lim, 0.1);
  EXPECT_NEAR(s.vel.norm(), 0.0, 1e-6);
}

TEST(Kinematics, TurnRateLimited) {
  KinematicLimits lim;
  lim.max_turn_rate_rad_s = 0.5;
  lim.max_accel_mps2 = 1000.0;
  KinematicState s;
  s.vel = {0.0, 10.0, 0.0};  // heading north
  // Command due south (180 deg turn).
  const VelocityCommand cmd{{0.0, -10.0, 0.0}};
  const KinematicState next = step(s, cmd, lim, 0.1);
  const double dh = std::abs(next.heading_rad() - s.heading_rad());
  EXPECT_LE(dh, 0.5 * 0.1 + 1e-6);
}

TEST(Kinematics, ClimbRateLimited) {
  KinematicLimits lim;
  lim.max_climb_rate_mps = 2.0;
  lim.max_accel_mps2 = 1000.0;
  KinematicState s;
  const VelocityCommand cmd{{0.0, 0.0, 50.0}};
  const KinematicState next = step(s, cmd, lim, 1.0);
  EXPECT_LE(next.vel.z, 2.0 + 1e-9);
}

TEST(Kinematics, PositionIntegratesVelocity) {
  KinematicState s;
  s.vel = {2.0, 3.0, 0.0};
  KinematicLimits lim;
  const KinematicState next = step(s, VelocityCommand{s.vel}, lim, 0.5);
  EXPECT_NEAR(next.pos.x, 1.0, 1e-9);
  EXPECT_NEAR(next.pos.y, 1.5, 1e-9);
}

TEST(Kinematics, HeadingConvention) {
  KinematicState s;
  s.vel = {1.0, 0.0, 0.0};  // east
  EXPECT_NEAR(s.heading_rad(), M_PI / 2.0, 1e-9);
  s.vel = {0.0, 1.0, 0.0};  // north
  EXPECT_NEAR(s.heading_rad(), 0.0, 1e-9);
}

}  // namespace
}  // namespace skyferry::uav
