#include "uav/platform.h"

#include <gtest/gtest.h>

namespace skyferry::uav {
namespace {

// Table 1 of the paper, verbatim.
TEST(Platform, SwingletMatchesTable1) {
  const PlatformSpec s = PlatformSpec::swinglet();
  EXPECT_EQ(s.kind, PlatformKind::kAirplane);
  EXPECT_FALSE(s.can_hover);
  EXPECT_DOUBLE_EQ(s.size_m, 0.80);
  EXPECT_DOUBLE_EQ(s.weight_kg, 0.5);
  EXPECT_DOUBLE_EQ(s.battery_autonomy_s, 1800.0);
  EXPECT_DOUBLE_EQ(s.cruise_speed_mps, 10.0);
  EXPECT_DOUBLE_EQ(s.max_safe_altitude_m, 300.0);
  EXPECT_DOUBLE_EQ(s.min_turn_radius_m, 20.0);
}

TEST(Platform, ArducopterMatchesTable1) {
  const PlatformSpec s = PlatformSpec::arducopter();
  EXPECT_EQ(s.kind, PlatformKind::kQuadrocopter);
  EXPECT_TRUE(s.can_hover);
  EXPECT_DOUBLE_EQ(s.size_m, 0.64);
  EXPECT_DOUBLE_EQ(s.weight_kg, 1.7);
  EXPECT_DOUBLE_EQ(s.battery_autonomy_s, 1200.0);
  EXPECT_DOUBLE_EQ(s.cruise_speed_mps, 4.5);
  EXPECT_DOUBLE_EQ(s.max_safe_altitude_m, 100.0);
  EXPECT_DOUBLE_EQ(s.min_turn_radius_m, 0.0);
}

TEST(Platform, QuadIsHeavierAirplaneIsFaster) {
  // The paper's qualitative comparison.
  const PlatformSpec air = PlatformSpec::swinglet();
  const PlatformSpec quad = PlatformSpec::arducopter();
  EXPECT_GT(quad.weight_kg, air.weight_kg);
  EXPECT_GT(air.cruise_speed_mps, quad.cruise_speed_mps);
  EXPECT_GT(air.max_safe_altitude_m, quad.max_safe_altitude_m);
  EXPECT_GT(air.battery_autonomy_s, quad.battery_autonomy_s);
}

TEST(Platform, RangeIsSpeedTimesEndurance) {
  const PlatformSpec air = PlatformSpec::swinglet();
  EXPECT_DOUBLE_EQ(air.range_m(), 18000.0);
  const PlatformSpec quad = PlatformSpec::arducopter();
  EXPECT_DOUBLE_EQ(quad.range_m(), 5400.0);
}

}  // namespace
}  // namespace skyferry::uav
