#include "uav/uav.h"

#include <gtest/gtest.h>

namespace skyferry::uav {
namespace {

UavConfig quad_at(const geo::Vec3& pos, const std::string& id = "q1") {
  UavConfig cfg;
  cfg.id = id;
  cfg.platform = PlatformSpec::arducopter();
  cfg.start_pos = pos;
  return cfg;
}

TEST(Uav, FliesToCommandedPosition) {
  Uav u(quad_at({0.0, 0.0, 10.0}), 1);
  u.goto_and_hold({40.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 1200; ++i) {
    u.tick(t, 0.05);
    t += 0.05;
  }
  // Arrival is declared within the default 5 m accept radius.
  EXPECT_NEAR(geo::distance(u.position(), {40.0, 0.0, 10.0}), 0.0, 5.5);
  EXPECT_TRUE(u.autopilot().is_holding());
}

TEST(Uav, OdometerAccumulates) {
  Uav u(quad_at({0.0, 0.0, 10.0}), 2);
  u.goto_and_hold({30.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    u.tick(t, 0.05);
    t += 0.05;
  }
  // Flies to within the 5 m accept radius of the 30 m target.
  EXPECT_GE(u.distance_flown_m(), 24.0);
  EXPECT_LT(u.distance_flown_m(), 60.0);
}

TEST(Uav, TraceIsRecorded) {
  UavConfig cfg = quad_at({0.0, 0.0, 10.0});
  cfg.trace_sample_period_s = 0.5;
  Uav u(cfg, 3);
  u.goto_and_hold({20.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    u.tick(t, 0.05);
    t += 0.05;
  }
  EXPECT_GT(u.trace().size(), 20u);
  EXPECT_NEAR(u.trace().duration(), 19.5, 1.0);
}

TEST(Uav, BatteryDrainsWhileFlying) {
  Uav u(quad_at({0.0, 0.0, 10.0}), 4);
  u.goto_and_hold({100.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    u.tick(t, 0.05);
    t += 0.05;
  }
  EXPECT_LT(u.battery().soc(), 1.0);
}

TEST(Uav, DepletedBatteryGroundsVehicle) {
  Uav u(quad_at({0.0, 0.0, 10.0}), 5);
  u.battery().drain(1e9, 10.0);  // force depletion
  ASSERT_TRUE(u.battery().depleted());
  u.goto_and_hold({100.0, 0.0, 10.0});
  const geo::Vec3 before = u.position();
  for (int i = 0; i < 100; ++i) u.tick(i * 0.05, 0.05);
  EXPECT_EQ(geo::distance(before, u.position()), 0.0);
}

TEST(Uav, GpsFixTracksPosition) {
  Uav u(quad_at({0.0, 0.0, 10.0}), 6);
  u.goto_and_hold({50.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 1500; ++i) {
    u.tick(t, 0.05);
    t += 0.05;
  }
  // The fix is noisy but must be within GPS-error range of the truth.
  EXPECT_LT(geo::distance(u.gps_fix(), u.position()), 15.0);
}

TEST(Uav, WindDriftsTheGroundTrack) {
  // Steady 2 m/s crosswind: a quad told to hover in place drifts unless
  // the autopilot keeps correcting; with correction it holds near the
  // waypoint but the odometer shows the extra work.
  UavConfig cfg = quad_at({0.0, 0.0, 10.0}, "windy");
  cfg.wind = [](double) { return geo::Vec3{2.0, 0.0, 0.0}; };
  Uav u(cfg, 31);
  u.goto_and_hold({0.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    u.tick(t, 0.05);
    t += 0.05;
  }
  // Station-keeping against the wind keeps it within the accept zone.
  EXPECT_LT(geo::distance(u.position(), {0.0, 0.0, 10.0}), 12.0);

  // Same vehicle with no position hold (idle) just drifts downwind.
  UavConfig cfg2 = quad_at({0.0, 0.0, 10.0}, "adrift");
  cfg2.wind = [](double) { return geo::Vec3{2.0, 0.0, 0.0}; };
  Uav drifter(cfg2, 32);
  t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    drifter.tick(t, 0.05);
    t += 0.05;
  }
  EXPECT_GT(drifter.position().x, 150.0);  // ~2 m/s * 100 s
}

TEST(Uav, HeadwindSlowsTheFerryLeg) {
  auto fly_time = [](const std::function<geo::Vec3(double)>& wind) {
    UavConfig cfg;
    cfg.id = "ferry";
    cfg.platform = PlatformSpec::arducopter();
    cfg.start_pos = {0.0, 0.0, 10.0};
    cfg.wind = wind;
    Uav u(cfg, 33);
    u.goto_and_hold({80.0, 0.0, 10.0});
    double t = 0.0;
    while (geo::distance(u.position(), {80.0, 0.0, 10.0}) > 4.0 && t < 120.0) {
      u.tick(t, 0.05);
      t += 0.05;
    }
    return t;
  };
  const double still = fly_time(nullptr);
  const double headwind = fly_time([](double) { return geo::Vec3{-2.0, 0.0, 0.0}; });
  EXPECT_GT(headwind, still * 1.2);
}

TEST(Uav, InFlightFailureGroundsVehicle) {
  // High failure rate: the drawn distance-to-failure is short, and the
  // vehicle goes down mid-leg.
  UavConfig cfg = quad_at({0.0, 0.0, 10.0}, "doomed");
  cfg.failure_rho_per_m = 0.05;  // mean 20 m to failure
  Uav u(cfg, 41);
  ASSERT_TRUE(std::isfinite(u.failure_distance_m()));
  u.goto_and_hold({500.0, 0.0, 10.0});
  double t = 0.0;
  for (int i = 0; i < 40000 && !u.failed(); ++i) {
    u.tick(t, 0.05);
    t += 0.05;
  }
  EXPECT_TRUE(u.failed());
  EXPECT_LT(u.position().x, 490.0);  // never arrived
  EXPECT_GE(u.distance_flown_m(), u.failure_distance_m() - 1.0);
  // Once down, it stays down.
  const geo::Vec3 crash_site = u.position();
  for (int i = 0; i < 100; ++i) u.tick(t + i * 0.05, 0.05);
  EXPECT_EQ(geo::distance(crash_site, u.position()), 0.0);
}

TEST(Uav, NoFailuresWhenRhoZero) {
  UavConfig cfg = quad_at({0.0, 0.0, 10.0}, "safe");
  Uav u(cfg, 42);
  EXPECT_TRUE(std::isinf(u.failure_distance_m()));
  EXPECT_FALSE(u.failed());
}

TEST(Uav, FailureDistanceIsSeedDeterministicAndExponential) {
  // Mean of drawn distances over many seeds ~ 1/rho.
  double sum = 0.0;
  const int n = 400;
  for (int k = 0; k < n; ++k) {
    UavConfig cfg = quad_at({0.0, 0.0, 10.0}, "u" + std::to_string(k));
    cfg.failure_rho_per_m = 1e-3;
    Uav u(cfg, 1000 + static_cast<std::uint64_t>(k));
    sum += u.failure_distance_m();
  }
  EXPECT_NEAR(sum / n, 1000.0, 150.0);
}

TEST(Uav, TwoUavsConvergeForRendezvous) {
  // The core maneuver of the paper: a ferry approaches a hovering peer.
  Uav ferry(quad_at({80.0, 0.0, 10.0}, "ferry"), 7);
  Uav hover(quad_at({0.0, 0.0, 10.0}, "hover"), 8);
  hover.goto_and_hold({0.0, 0.0, 10.0});
  ferry.goto_and_hold({20.0, 0.0, 10.0});  // stop 20 m short (min distance)
  double t = 0.0;
  for (int i = 0; i < 1500; ++i) {
    ferry.tick(t, 0.05);
    hover.tick(t, 0.05);
    t += 0.05;
  }
  EXPECT_NEAR(geo::distance(ferry.position(), hover.position()), 20.0, 5.0);
}

}  // namespace
}  // namespace skyferry::uav
