#include "uav/wind.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace skyferry::uav {
namespace {

TEST(WindModel, MeanConverges) {
  WindConfig cfg;
  cfg.mean_mps = {3.0, -1.0, 0.0};
  cfg.gust_sigma_mps = 2.0;
  WindModel wind(cfg, 1);
  stats::RunningStats wx, wy;
  for (double t = 0.0; t < 20000.0; t += 10.0) {
    const geo::Vec3 w = wind.sample(t);
    wx.add(w.x);
    wy.add(w.y);
  }
  EXPECT_NEAR(wx.mean(), 3.0, 0.3);
  EXPECT_NEAR(wy.mean(), -1.0, 0.3);
  EXPECT_NEAR(wx.stddev(), 2.0, 0.4);
}

TEST(WindModel, GustsAreTimeCorrelated) {
  WindConfig cfg;
  cfg.gust_tau_s = 10.0;
  WindModel wind(cfg, 2);
  const geo::Vec3 w0 = wind.sample(0.0);
  const geo::Vec3 w1 = wind.sample(0.1);  // << tau: nearly unchanged
  EXPECT_LT((w1 - w0).norm(), 0.8);
}

TEST(WindModel, DeterministicPerSeed) {
  WindConfig cfg;
  WindModel a(cfg, 7), b(cfg, 7);
  for (double t = 0.0; t < 10.0; t += 0.5) {
    EXPECT_EQ(a.sample(t).x, b.sample(t).x);
  }
}

TEST(GroundSpeed, StillAirIsAirspeed) {
  EXPECT_DOUBLE_EQ(ground_speed_along_track(10.0, {}, {1.0, 0.0, 0.0}), 10.0);
}

TEST(GroundSpeed, TailwindAddsHeadwindSubtracts) {
  const geo::Vec3 east{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(ground_speed_along_track(10.0, {4.0, 0.0, 0.0}, east), 14.0);
  EXPECT_DOUBLE_EQ(ground_speed_along_track(10.0, {-4.0, 0.0, 0.0}, east), 6.0);
}

TEST(GroundSpeed, CrosswindCostsViaCrabbing) {
  const geo::Vec3 east{1.0, 0.0, 0.0};
  const double v = ground_speed_along_track(10.0, {0.0, 6.0, 0.0}, east);
  EXPECT_NEAR(v, 8.0, 1e-9);  // sqrt(100-36)
}

TEST(GroundSpeed, OverpoweringWindStops) {
  const geo::Vec3 east{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(ground_speed_along_track(5.0, {0.0, 7.0, 0.0}, east), 0.0);
  EXPECT_DOUBLE_EQ(ground_speed_along_track(5.0, {-9.0, 0.0, 0.0}, east), 0.0);
}

TEST(WindAdjustedTship, MatchesSpeed) {
  const geo::Vec3 east{1.0, 0.0, 0.0};
  EXPECT_NEAR(wind_adjusted_tship_s(100.0, 10.0, {-5.0, 0.0, 0.0}, east), 20.0, 1e-9);
  EXPECT_TRUE(std::isinf(wind_adjusted_tship_s(100.0, 5.0, {-6.0, 0.0, 0.0}, east)));
}

TEST(WindAdjustedTship, PaperShippingSkew) {
  // The quad scenario ships 80 m at 4.5 m/s (17.8 s). A 2 m/s headwind
  // stretches that by ~44%; the planner's Tship model can absorb this
  // via wind_adjusted_tship_s.
  const geo::Vec3 track{1.0, 0.0, 0.0};
  const double still = wind_adjusted_tship_s(80.0, 4.5, {}, track);
  const double head = wind_adjusted_tship_s(80.0, 4.5, {-2.0, 0.0, 0.0}, track);
  EXPECT_NEAR(still, 17.78, 0.01);
  EXPECT_NEAR(head / still, 4.5 / 2.5, 1e-6);
}

}  // namespace
}  // namespace skyferry::uav
